//! Fault-injection edge cases at the boundaries of the recovery story.
//!
//! R1 sweeps crash points; these tests pin the two edges it skirts:
//! a transient read that fails on the *last* retry of
//! `READ_RETRY_BUDGET` (one short of the budget is absorbed; exactly
//! the budget surfaces as a typed error, never a panic), and a pack
//! dropping offline in the middle of a salvage walk. Both designs.

use multics::aim::Label;
use multics::hw::{DiskError, FaultPlan, PackId, Word};
use multics::kernel::{Acl, Kernel, KernelConfig, KernelError, UserId};
use multics::legacy::{
    AccessRight, Acl as LAcl, LegacyError, Supervisor, SupervisorConfig, UserId as LUserId,
};

const BUDGET: u64 = multics::kernel::page_frame::READ_RETRY_BUDGET as u64;

/// Boots a kernel with one file whose page 0 is flushed to disk;
/// returns the kernel, pid, segno, and the page's (pack, record).
fn kernel_with_cold_page() -> (
    Kernel,
    multics::kernel::ProcessId,
    u32,
    PackId,
    multics::hw::RecordNo,
) {
    let mut k = Kernel::boot(KernelConfig::default());
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(pid, root, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    k.write_word(pid, segno, 0, Word::new(0o1234)).unwrap();
    let uid = k.uid_of_token(tok).unwrap();
    let handle = k.segm.get(uid).unwrap().handle;
    k.pfm
        .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
        .unwrap();
    let home = k.dirm.home_of(uid).unwrap();
    let rec = k.drm.record_of(&k.machine, home, 0).unwrap().unwrap();
    (k, pid, segno, home.pack, rec)
}

#[test]
fn kernel_failures_up_to_the_penultimate_retry_are_absorbed() {
    let (mut k, pid, segno, pack, rec) = kernel_with_cold_page();
    // BUDGET - 1 consecutive transient failures: the final attempt of
    // the budget succeeds, so the caller never sees an error.
    let mut plan = FaultPlan::new();
    for kth in 1..BUDGET {
        plan = plan.transient_read(pack, rec, kth);
    }
    k.machine.install_fault_plan(plan);
    let before = k.pfm.stats.transient_retries;
    assert_eq!(k.read_word(pid, segno, 0).unwrap(), Word::new(0o1234));
    assert_eq!(
        k.pfm.stats.transient_retries,
        before + BUDGET - 1,
        "every absorbed failure is accounted"
    );
}

#[test]
fn kernel_failure_on_the_last_retry_exhausts_the_budget_as_typed_error() {
    let (mut k, pid, segno, pack, rec) = kernel_with_cold_page();
    // Exactly BUDGET consecutive failures: the last permitted attempt
    // fails too, and the exhaustion is a typed error — not a panic, not
    // a hang, not a corrupted frame.
    let mut plan = FaultPlan::new();
    for kth in 1..=BUDGET {
        plan = plan.transient_read(pack, rec, kth);
    }
    k.machine.install_fault_plan(plan);
    let err = k.read_word(pid, segno, 0).unwrap_err();
    assert!(
        matches!(err, KernelError::Disk(DiskError::TransientRead { .. })),
        "expected typed transient-read exhaustion, got {err:?}"
    );
    // The fault really was transient: with the plan's ordinals spent the
    // same reference succeeds and the data is intact.
    assert_eq!(k.read_word(pid, segno, 0).unwrap(), Word::new(0o1234));
    // And the file system took no damage on the way through.
    let report = k.salvage(false).unwrap();
    assert!(report.clean(), "problems: {:?}", report.problems);
}

#[test]
fn legacy_budget_has_the_same_last_retry_edge() {
    assert_eq!(
        multics::legacy::page_control::READ_RETRY_BUDGET,
        multics::kernel::page_frame::READ_RETRY_BUDGET,
        "both designs retry the same number of times"
    );
    let mut sup = Supervisor::boot(SupervisorConfig::default());
    let pid = sup.create_process(LUserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "f", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    let segno = sup.initiate(pid, "f").unwrap();
    sup.user_write(pid, segno, 0, Word::new(0o4321)).unwrap();
    let uid = sup.resolve(pid, "f", AccessRight::Read).unwrap().0;
    let astx = sup.ast.find(uid).unwrap();
    sup.flush_segment(astx).unwrap();
    let home = sup.ast.get(astx).unwrap().home;
    let rec = sup
        .machine
        .disks
        .pack(home.pack)
        .unwrap()
        .entry(home.toc)
        .unwrap()
        .file_map[0]
        .unwrap();

    // The full budget of failures: the retry loop absorbs them all and
    // the attempt after the last retry succeeds.
    let mut plan = FaultPlan::new();
    for kth in 1..=BUDGET {
        plan = plan.transient_read(home.pack, rec, kth);
    }
    sup.machine.install_fault_plan(plan);
    assert_eq!(sup.user_read(pid, segno, 0).unwrap(), Word::new(0o4321));

    // Page it back out and fail one past the budget: typed error. (The
    // 1974 loop counts *retries after the first attempt*, so it absorbs
    // BUDGET transient failures and errors on failure BUDGET + 1; the
    // kernel loop counts attempts and errors on failure BUDGET. The R1
    // crash matrix sweeps both boundaries; these tests pin each design's
    // own edge.)
    sup.flush_segment(astx).unwrap();
    let mut plan = FaultPlan::new();
    for kth in 1..=BUDGET + 1 {
        plan = plan.transient_read(home.pack, rec, kth);
    }
    sup.machine.install_fault_plan(plan);
    let err = sup.user_read(pid, segno, 0).unwrap_err();
    assert!(
        matches!(err, LegacyError::Disk(DiskError::TransientRead { .. })),
        "expected typed transient-read exhaustion, got {err:?}"
    );
    // Recovery after the transient clears.
    assert_eq!(sup.user_read(pid, segno, 0).unwrap(), Word::new(0o4321));
}

#[test]
fn kernel_pack_offline_mid_salvage_is_a_typed_error() {
    // A small table of contents on pack 0 forces later directories to
    // spill onto pack 1, so the salvage walk crosses pack boundaries.
    let mut k = Kernel::boot(KernelConfig {
        toc_slots_per_pack: 12,
        records_per_pack: 128,
        root_quota: 256,
        ..KernelConfig::default()
    });
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let mut victim_pack = None;
    let mut dir_uids = Vec::new();
    for i in 0..8 {
        let d = k
            .create_entry(
                pid,
                root,
                &format!("d{i}"),
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                true,
            )
            .unwrap();
        let f = k
            .create_entry(pid, d, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(7)).unwrap();
        let uid = k.uid_of_token(d).unwrap();
        dir_uids.push(uid);
        let home = k.dirm.home_of(uid).unwrap();
        if home.pack != PackId(0) {
            victim_pack = Some(home.pack);
            break;
        }
    }
    let victim = victim_pack.expect("some directory landed off pack 0");
    k.sync_to_disk().unwrap();
    // Push every directory's pages out of core so the walk must read the
    // platters, then drop the victim pack offline. The walk succeeds on
    // the online pack's reads and hits the offline one mid-walk.
    for uid in dir_uids {
        if let Some(seg) = k.segm.get(uid) {
            let handle = seg.handle;
            k.pfm
                .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
                .unwrap();
        }
    }
    k.machine.faults.set_offline(victim, true);
    let err = k.salvage(false).unwrap_err();
    assert!(
        matches!(err, KernelError::Disk(DiskError::PackOffline { pack }) if pack == victim),
        "expected typed pack-offline from the salvage walk, got {err:?}"
    );
    // The pack comes back: the salvager completes and finds the file
    // system it abandoned mid-walk fully consistent.
    k.machine.faults.set_offline(victim, false);
    let report = k.salvage(false).unwrap();
    assert!(report.clean(), "problems: {:?}", report.problems);
}

#[test]
fn legacy_pack_offline_surfaces_typed_error_and_recovers() {
    let mut sup = Supervisor::boot(SupervisorConfig::default());
    let pid = sup.create_process(LUserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "g", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    let segno = sup.initiate(pid, "g").unwrap();
    sup.user_write(pid, segno, 0, Word::new(0o77)).unwrap();
    let uid = sup.resolve(pid, "g", AccessRight::Read).unwrap().0;
    let astx = sup.ast.find(uid).unwrap();
    sup.flush_segment(astx).unwrap();
    let home = sup.ast.get(astx).unwrap().home;
    sup.machine.faults.set_offline(home.pack, true);
    let err = sup.user_read(pid, segno, 0).unwrap_err();
    assert!(
        matches!(err, LegacyError::Disk(DiskError::PackOffline { pack }) if pack == home.pack),
        "expected typed pack-offline, got {err:?}"
    );
    sup.machine.faults.set_offline(home.pack, false);
    assert_eq!(sup.user_read(pid, segno, 0).unwrap(), Word::new(0o77));
    let report = sup.salvage(false).unwrap();
    assert!(report.clean(), "problems: {:?}", report.problems);
}
