//! Integration tests: user programs executing on both supervisors.

use multics::aim::Label;
use multics::hw::interp::{assemble, Instr, Op};
use multics::hw::Word;
use multics::kernel::{Acl, Kernel, KernelConfig, KernelError, ProgramOutcome, UserId};

fn boot() -> (Kernel, multics::kernel::ProcessId) {
    let mut k = Kernel::boot(KernelConfig {
        frames: 96,
        records_per_pack: 512,
        toc_slots_per_pack: 64,
        pt_slots: 16,
        max_processes: 4,
        root_quota: 400,
        ..KernelConfig::default()
    });
    k.register_account("dev", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("dev", 1, Label::BOTTOM).unwrap();
    (k, pid)
}

fn make_seg(k: &mut Kernel, pid: multics::kernel::ProcessId, name: &str, acl: Acl) -> u32 {
    let root = k.root_token();
    let tok = k
        .create_entry(pid, root, name, acl, Label::BOTTOM, false)
        .unwrap();
    k.initiate(pid, tok).unwrap()
}

fn load(k: &mut Kernel, pid: multics::kernel::ProcessId, segno: u32, words: &[Word]) {
    for (i, w) in words.iter().enumerate() {
        k.write_word(pid, segno, i as u32, *w).unwrap();
    }
}

#[test]
fn a_program_grows_its_data_segment_through_quota_exceptions() {
    let (mut k, pid) = boot();
    let prog = make_seg(&mut k, pid, "prog", Acl::owner(UserId(1)));
    let data = make_seg(&mut k, pid, "data", Acl::owner(UserId(1)));
    // Store 42 at word 5*1024 (a never-before-used page), load it back.
    let code = assemble(&[
        Instr::imm(Op::Ldi, 42),
        Instr::mem(Op::Sta, data, 5 * 1024),
        Instr::imm(Op::Ldi, 0),
        Instr::mem(Op::Lda, data, 5 * 1024),
        Instr::bare(Op::Hlt),
    ]);
    load(&mut k, pid, prog, &code);
    let q_before = k.stats.quota_faults;
    let run = k.run_program(pid, prog, 0, 100).unwrap();
    assert_eq!(run.outcome, ProgramOutcome::Halted);
    assert_eq!(run.regs.a, Word::new(42));
    assert!(
        k.stats.quota_faults > q_before,
        "the store raised a quota exception"
    );
}

#[test]
fn a_program_cannot_write_a_read_only_segment() {
    let (mut k, pid) = boot();
    k.register_account("victim", UserId(2), 2, Label::BOTTOM);
    let victim = k.login_residue("victim", 2, Label::BOTTOM).unwrap();
    // Victim's file grants dev read-only.
    let root = k.root_token();
    let mut acl = Acl::owner(UserId(2));
    acl.grant(UserId(1), &[multics::kernel::AccessRight::Read]);
    let tok = k
        .create_entry(victim, root, "readonly", acl, Label::BOTTOM, false)
        .unwrap();
    let vseg = k.initiate(victim, tok).unwrap();
    k.write_word(victim, vseg, 0, Word::new(7)).unwrap();

    let target = k.initiate(pid, tok).unwrap();
    let prog = make_seg(&mut k, pid, "prog", Acl::owner(UserId(1)));
    let code = assemble(&[
        Instr::mem(Op::Lda, target, 0), // Read: allowed.
        Instr::imm(Op::Ldi, 99),
        Instr::mem(Op::Sta, target, 0), // Write: refused by hardware.
        Instr::bare(Op::Hlt),
    ]);
    load(&mut k, pid, prog, &code);
    let err = k.run_program(pid, prog, 0, 100).unwrap_err();
    assert_eq!(err, KernelError::NoAccess);
    // The read-only data survived.
    assert_eq!(k.read_word(victim, vseg, 0).unwrap(), Word::new(7));
}

#[test]
fn programs_survive_relocation_of_their_own_data_mid_run() {
    let mut k = Kernel::boot(KernelConfig {
        frames: 128,
        packs: 2,
        records_per_pack: 10,
        toc_slots_per_pack: 24,
        pt_slots: 16,
        max_processes: 4,
        root_quota: 400,
        ..KernelConfig::default()
    });
    k.machine.disks.attach(128, 32);
    k.register_account("dev", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("dev", 1, Label::BOTTOM).unwrap();
    let prog = make_seg(&mut k, pid, "prog", Acl::owner(UserId(1)));
    let data = make_seg(&mut k, pid, "data", Acl::owner(UserId(1)));
    // Fill 16 pages (the boot pack holds 10 records): the program's own
    // stores force a relocation while it runs.
    let code = assemble(&[
        Instr::imm(Op::Ldx, 0),         // 0
        Instr::bare(Op::Txa),           // 1: A = X     (loop head)
        Instr::mem(Op::Stax, data, 0),  // 2: data[X] = X (X is a multiple of 1024)
        Instr::imm(Op::Inx, 1024),      // 3
        Instr::imm(Op::Cpx, 16 * 1024), // 4
        Instr::mem(Op::Jne, prog, 1),   // 5
        Instr::bare(Op::Hlt),           // 6
    ]);
    load(&mut k, pid, prog, &code);
    let run = k.run_program(pid, prog, 0, 10_000).unwrap();
    assert_eq!(run.outcome, ProgramOutcome::Halted);
    assert!(
        k.segm.stats.relocations >= 1,
        "the data segment moved mid-run"
    );
    for p in 0..16u32 {
        assert_eq!(
            k.read_word(pid, data, p * 1024).unwrap(),
            Word::new(u64::from(p) * 1024),
            "page {p}"
        );
    }
}

#[test]
fn step_limit_reports_progress_without_losing_state() {
    let (mut k, pid) = boot();
    let prog = make_seg(&mut k, pid, "spin", Acl::owner(UserId(1)));
    // An infinite loop.
    let code = assemble(&[Instr::mem(Op::Jmp, prog, 0)]);
    load(&mut k, pid, prog, &code);
    let run = k.run_program(pid, prog, 0, 500).unwrap();
    assert_eq!(run.outcome, ProgramOutcome::StepLimit);
    assert_eq!(run.steps, 500);
}

#[test]
fn illegal_instructions_are_contained() {
    let (mut k, pid) = boot();
    let prog = make_seg(&mut k, pid, "bad", Acl::owner(UserId(1)));
    k.write_word(pid, prog, 0, Word::new(63 << 30)).unwrap();
    let run = k.run_program(pid, prog, 0, 10).unwrap();
    assert_eq!(run.outcome, ProgramOutcome::Illegal);
    assert_eq!(run.steps, 0);
}

#[test]
fn both_systems_run_the_same_binary_to_the_same_answer() {
    // The old supervisor executes the identical word image.
    use multics::legacy::{Acl as LAcl, Supervisor, SupervisorConfig, UserId as LUserId};
    // Fibonacci by the shift-register method:
    // a=0; b=1; repeat 18 { t=a+b; a=b; b=t }  with a,b,t in data[0..3].
    let shift = |prog_seg: u32, data: u32| {
        assemble(&[
            Instr::imm(Op::Ldi, 0),
            Instr::mem(Op::Sta, data, 0), // a = 0
            Instr::imm(Op::Ldi, 1),
            Instr::mem(Op::Sta, data, 1), // b = 1
            Instr::imm(Op::Ldx, 0),
            // loop @5:
            Instr::mem(Op::Lda, data, 0),
            Instr::mem(Op::Add, data, 1), // A = a + b
            Instr::mem(Op::Sta, data, 2), // t = A
            Instr::mem(Op::Lda, data, 1),
            Instr::mem(Op::Sta, data, 0), // a = b
            Instr::mem(Op::Lda, data, 2),
            Instr::mem(Op::Sta, data, 1), // b = t
            Instr::imm(Op::Inx, 1),
            Instr::imm(Op::Cpx, 18),
            Instr::mem(Op::Jne, prog_seg, 5),
            Instr::mem(Op::Lda, data, 1), // A = b = fib(19)
            Instr::bare(Op::Hlt),
        ])
    };

    let (mut k, pid) = boot();
    let kprog = make_seg(&mut k, pid, "prog", Acl::owner(UserId(1)));
    let kdata = make_seg(&mut k, pid, "data", Acl::owner(UserId(1)));
    load(&mut k, pid, kprog, &shift(kprog, kdata));
    let krun = k.run_program(pid, kprog, 0, 10_000).unwrap();

    let mut sup = Supervisor::boot(SupervisorConfig::default());
    let lpid = sup.create_process(LUserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "prog", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    sup.create_segment_in(sup.root(), "data", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    let lprog = sup.initiate(lpid, "prog").unwrap();
    let ldata = sup.initiate(lpid, "data").unwrap();
    for (i, w) in shift(lprog, ldata).iter().enumerate() {
        sup.user_write(lpid, lprog, i as u32, *w).unwrap();
    }
    let (_, lregs) = sup.run_program(lpid, lprog, 0, 10_000).unwrap();

    assert_eq!(krun.regs.a, lregs.a, "same binary, same answer");
    assert_eq!(krun.regs.a, Word::new(4181), "fib(19)");
}
