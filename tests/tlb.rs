//! The associative memory must be semantically invisible.
//!
//! The descriptor-walk translation cache (`mx_hw::tlb`) only changes
//! *cycle counts*, never core contents or fault behaviour. These tests
//! pin that claim two ways: parity runs (the same workload with the
//! cache on and off must end with byte-identical core and identical
//! fault tallies) and adversarial runs (bypassing a wired flush point
//! must produce observable staleness — proving each "setfaults" call in
//! the supervisors is load-bearing, not decorative).

use multics::aim::Label;
use multics::bench_harness::RefString;
use multics::hw::cpu::Ptw;
use multics::hw::{AbsAddr, Machine, Word, PAGE_WORDS};
use multics::kernel::{Kernel, KernelConfig, KernelError};
use multics::legacy::{Supervisor, SupervisorConfig};

fn tlb_off(machine: &mut Machine) {
    for cpu in &mut machine.cpus {
        cpu.features.associative_memory = false;
    }
    machine.tlb_clear();
}

fn core_image(machine: &Machine) -> Vec<Word> {
    (0..machine.mem.size_words() as u64)
        .map(|w| machine.mem.read(AbsAddr(w)))
        .collect()
}

fn cramped_legacy() -> (Supervisor, multics::legacy::ProcessId) {
    // 8 pageable frames: the reference string below must evict.
    let mut sup = Supervisor::boot(SupervisorConfig {
        frames: 8 + 9,
        ast_slots: 16,
        max_processes: 4,
        records_per_pack: 2048,
        toc_slots_per_pack: 64,
        root_quota_pages: 1200,
        ..SupervisorConfig::default()
    });
    let pid = sup
        .create_process(multics::legacy::UserId(1), Label::BOTTOM)
        .unwrap();
    (sup, pid)
}

fn cramped_kernel() -> (Kernel, multics::kernel::ProcessId) {
    let mut k = Kernel::boot(KernelConfig {
        frames: 8 + 13,
        pt_slots: 16,
        max_processes: 4,
        records_per_pack: 2048,
        toc_slots_per_pack: 64,
        root_quota: 1200,
        ..KernelConfig::default()
    });
    k.register_account("u", multics::kernel::UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    (k, pid)
}

fn legacy_data_segment(sup: &mut Supervisor, pid: multics::legacy::ProcessId) -> u32 {
    sup.create_segment_in(
        sup.root(),
        "data",
        multics::legacy::Acl::owner(multics::legacy::UserId(1)),
        Label::BOTTOM,
    )
    .unwrap();
    sup.initiate(pid, "data").unwrap()
}

fn kernel_data_segment(k: &mut Kernel, pid: multics::kernel::ProcessId, name: &str) -> u32 {
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            name,
            multics::kernel::Acl::owner(multics::kernel::UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    k.initiate(pid, tok).unwrap()
}

// ------------------------------------------------------------- parity --

/// Runs an eviction-pressure reference string on the old supervisor and
/// returns (core image, page faults, segment faults, read values).
fn legacy_run(tlb_on: bool) -> (Vec<Word>, u64, u64, Vec<Word>) {
    let (mut sup, pid) = cramped_legacy();
    let segno = legacy_data_segment(&mut sup, pid);
    if !tlb_on {
        tlb_off(&mut sup.machine);
    }
    let string = RefString::generate(7, 20, 400, 6);
    let mut reads = Vec::new();
    for (page, write) in &string.refs {
        let wordno = page * PAGE_WORDS as u32 + (page % 50);
        if *write {
            sup.user_write(pid, segno, wordno, Word::new(u64::from(*page) + 1))
                .unwrap();
        } else {
            reads.push(sup.user_read(pid, segno, wordno).unwrap());
        }
    }
    (
        core_image(&sup.machine),
        sup.stats.page_faults,
        sup.stats.segment_faults,
        reads,
    )
}

/// The kernel counterpart of [`legacy_run`].
fn kernel_run(tlb_on: bool) -> (Vec<Word>, u64, u64, Vec<Word>) {
    let (mut k, pid) = cramped_kernel();
    let segno = kernel_data_segment(&mut k, pid, "data");
    if !tlb_on {
        tlb_off(&mut k.machine);
    }
    let string = RefString::generate(7, 20, 400, 6);
    let mut reads = Vec::new();
    for (page, write) in &string.refs {
        let wordno = page * PAGE_WORDS as u32 + (page % 50);
        if *write {
            k.write_word(pid, segno, wordno, Word::new(u64::from(*page) + 1))
                .unwrap();
        } else {
            reads.push(k.read_word(pid, segno, wordno).unwrap());
        }
    }
    (
        core_image(&k.machine),
        k.stats.page_faults,
        k.stats.segment_faults,
        reads,
    )
}

#[test]
fn legacy_core_and_faults_are_identical_with_the_cache_on_and_off() {
    let (core_on, pf_on, sf_on, reads_on) = legacy_run(true);
    let (core_off, pf_off, sf_off, reads_off) = legacy_run(false);
    assert_eq!(reads_on, reads_off, "every read returns the same word");
    assert_eq!(
        (pf_on, sf_on),
        (pf_off, sf_off),
        "identical fault tallies with the cache on and off"
    );
    assert_eq!(core_on, core_off, "byte-identical core images");
}

#[test]
fn kernel_core_and_faults_are_identical_with_the_cache_on_and_off() {
    let (core_on, pf_on, sf_on, reads_on) = kernel_run(true);
    let (core_off, pf_off, sf_off, reads_off) = kernel_run(false);
    assert_eq!(reads_on, reads_off, "every read returns the same word");
    assert_eq!(
        (pf_on, sf_on),
        (pf_off, sf_off),
        "identical fault tallies with the cache on and off"
    );
    assert_eq!(core_on, core_off, "byte-identical core images");
}

// -------------------------------------------------------- adversarial --

#[test]
fn a_skipped_flush_surfaces_as_a_stale_translation() {
    // Rewrite a PTW *bypassing* the supervisor's set_ptw choke point:
    // the cache must go stale — which is exactly why every descriptor
    // mutation in both supervisors routes through a flushing helper.
    let (mut sup, pid) = cramped_legacy();
    let segno = legacy_data_segment(&mut sup, pid);
    sup.user_write(pid, segno, 0, Word::new(0o7777)).unwrap();
    assert_eq!(sup.user_read(pid, segno, 0).unwrap(), Word::new(0o7777));

    let uid = sup
        .resolve(pid, "data", multics::legacy::AccessRight::Read)
        .unwrap()
        .0;
    let astx = sup.ast.find(uid).unwrap();
    let pt_slot = sup.ast.get(astx).unwrap().pt_slot;
    let ptw_addr = sup.ast.pt_addr(pt_slot);
    // Point page 0 at the scratch frame (frame 0), planting a sentinel
    // there, with a raw write that no flush sees.
    sup.machine.mem.write(AbsAddr(0), Word::new(0o1234));
    let mut ptw = Ptw::decode(sup.machine.mem.read(ptw_addr));
    ptw.frame = multics::hw::FrameNo(0);
    sup.machine.mem.write(ptw_addr, ptw.encode());

    let stale = sup.user_read(pid, segno, 0).unwrap();
    assert_eq!(
        stale,
        Word::new(0o7777),
        "bypassing the choke point leaves the cache stale (the walk would see 0o1234)"
    );
    // Selective invalidation of that one PTW restores the truth.
    sup.machine.tlb_invalidate_ptw(ptw_addr);
    assert_eq!(sup.user_read(pid, segno, 0).unwrap(), Word::new(0o1234));
}

#[test]
fn eviction_invalidates_and_the_page_comes_back_correct() {
    let (mut sup, pid) = cramped_legacy();
    let segno = legacy_data_segment(&mut sup, pid);
    // 16 pages through 8 pageable frames: every page is evicted at
    // least once, each eviction flushing its cached translation.
    for page in 0u32..16 {
        sup.user_write(
            pid,
            segno,
            page * PAGE_WORDS as u32,
            Word::new(u64::from(page) + 100),
        )
        .unwrap();
    }
    for page in 0u32..16 {
        // Twice in a row: the first read re-walks (its translation was
        // flushed by the eviction), the second hits the fresh entry.
        for _ in 0..2 {
            assert_eq!(
                sup.user_read(pid, segno, page * PAGE_WORDS as u32).unwrap(),
                Word::new(u64::from(page) + 100),
                "page {page} paged back intact"
            );
        }
    }
    let stats = sup.machine.tlb_stats();
    assert!(stats.hits > 0, "the workload exercised the cache");
    assert!(
        stats.invalidations > 0,
        "evictions flushed cached translations"
    );
}

#[test]
fn deactivation_flushes_and_a_refault_recovers_the_segment() {
    let (mut sup, pid) = cramped_legacy();
    let segno = legacy_data_segment(&mut sup, pid);
    sup.user_write(pid, segno, 0, Word::new(31)).unwrap();
    let uid = sup
        .resolve(pid, "data", multics::legacy::AccessRight::Read)
        .unwrap()
        .0;
    let before = sup.machine.tlb_stats().invalidations;
    sup.deactivate_segment(uid).unwrap();
    assert!(
        sup.machine.tlb_stats().invalidations > before,
        "deactivation flushed the segment's translations"
    );
    assert_eq!(
        sup.user_read(pid, segno, 0).unwrap(),
        Word::new(31),
        "segment fault + reactivation recovers the contents"
    );
}

#[test]
fn a_recycled_process_slot_cannot_inherit_translations() {
    // Process A's translations are keyed by its descriptor-segment
    // base; a process created in the recycled slot shares that base, so
    // zeroing the dseg must flush or A's address space leaks into B.
    let (mut sup, a) = cramped_legacy();
    let segno = legacy_data_segment(&mut sup, a);
    sup.user_write(a, segno, 0, Word::new(0o4242)).unwrap();
    assert_eq!(sup.user_read(a, segno, 0).unwrap(), Word::new(0o4242));
    sup.destroy_process(a).unwrap();
    let b = sup
        .create_process(multics::legacy::UserId(2), Label::BOTTOM)
        .unwrap();
    assert_eq!(b, a, "slot recycled, same descriptor-segment frame");
    // B never initiated anything: the reference must fault, not answer
    // with A's cached frame.
    assert!(
        sup.user_read(b, segno, 0).is_err(),
        "a stale translation would have leaked process A's data"
    );
}

#[test]
fn purifier_write_back_flushes_so_rewrites_stay_dirty() {
    // The purifier clears the modified bit when it cleans a page; if
    // that did not flush the cache, a later write would hit an entry
    // still marked modified, skip setting the bit in core, and the next
    // eviction would discard the new data.
    let (mut k, pid) = cramped_kernel();
    let segno = kernel_data_segment(&mut k, pid, "data");
    k.write_word(pid, segno, 0, Word::new(1)).unwrap();
    k.run_purifier(8).unwrap();
    k.write_word(pid, segno, 0, Word::new(2)).unwrap();
    // Evict page 0 by touching more pages than the pageable pool holds.
    for page in 1u32..=16 {
        k.write_word(pid, segno, page * PAGE_WORDS as u32, Word::new(9))
            .unwrap();
    }
    assert_eq!(
        k.read_word(pid, segno, 0).unwrap(),
        Word::new(2),
        "the rewrite survived eviction: the cleaned page was re-dirtied in core"
    );
}

#[test]
fn quota_exhaustion_faults_even_with_a_warm_cache() {
    let (mut k, pid) = cramped_kernel();
    let root = k.root_token();
    let dir = k
        .create_entry(
            pid,
            root,
            "q",
            multics::kernel::Acl::owner(multics::kernel::UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();
    k.set_quota(pid, dir, 2).unwrap();
    let tok = k
        .create_entry(
            pid,
            dir,
            "fill",
            multics::kernel::Acl::owner(multics::kernel::UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    k.write_word(pid, segno, 0, Word::new(1)).unwrap();
    k.write_word(pid, segno, PAGE_WORDS as u32, Word::new(2))
        .unwrap();
    // Warm the cache on the resident pages.
    for _ in 0..32 {
        k.read_word(pid, segno, 0).unwrap();
        k.read_word(pid, segno, PAGE_WORDS as u32).unwrap();
    }
    assert!(
        k.machine.tlb_stats().hits > 0,
        "the warm loop really hit the cache"
    );
    // Growth past the limit must still trap: cached translations never
    // cover quota-trapped pages.
    assert!(matches!(
        k.write_word(pid, segno, 2 * PAGE_WORDS as u32, Word::new(3))
            .unwrap_err(),
        KernelError::QuotaExceeded { limit: 2, .. }
    ));
}
