//! Upward-signal and relocation torture tests.
//!
//! Small packs plus sustained growth force repeated whole-segment
//! relocations; each one must complete the quota and page work below,
//! signal upward, get its directory entry rewritten, and lose nothing.

use multics::aim::Label;
use multics::hw::SplitMix64;
use multics::hw::Word;
use multics::kernel::{Acl, Kernel, KernelConfig, KernelError, UserId};

fn boot_tight() -> (Kernel, multics::kernel::ProcessId) {
    let mut k = Kernel::boot(KernelConfig {
        frames: 128,
        packs: 2,
        records_per_pack: 10,
        toc_slots_per_pack: 24,
        pt_slots: 24,
        max_processes: 4,
        root_quota: 500,
        ..KernelConfig::default()
    });
    // Two roomier packs so the mover always has a target.
    k.machine.disks.attach(64, 32);
    k.machine.disks.attach(64, 32);
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    (k, pid)
}

#[test]
fn growth_across_full_packs_is_transparent() {
    let (mut k, pid) = boot_tight();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "grower",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    // 30 pages cannot fit on the 10-record boot pack: relocation must
    // happen, invisibly.
    for p in 0..30u32 {
        k.write_word(pid, segno, p * 1024, Word::new(u64::from(p) + 7))
            .unwrap();
    }
    assert!(
        k.segm.stats.relocations >= 1,
        "the pack filled and the segment moved"
    );
    assert_eq!(
        k.segm.stats.upward_signals, k.stats.trampolines,
        "every signal consumed"
    );
    assert_eq!(k.segm.stats.upward_signals, k.dirm.stats.moves_recorded);
    for p in 0..30u32 {
        assert_eq!(
            k.read_word(pid, segno, p * 1024).unwrap(),
            Word::new(u64::from(p) + 7)
        );
    }
    // The directory entry and the KST agree about the new home.
    let uid = k.uid_of_token(tok).unwrap();
    let home = k.dirm.home_of(uid).unwrap();
    assert_eq!(k.segm.get(uid).unwrap().home, home);
}

#[test]
fn several_segments_compete_for_packs() {
    let (mut k, pid) = boot_tight();
    let root = k.root_token();
    let mut rng = SplitMix64::new(99);
    let mut tokens = Vec::new();
    let mut segnos = Vec::new();
    for i in 0..4 {
        let tok = k
            .create_entry(
                pid,
                root,
                &format!("seg{i}"),
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        segnos.push(k.initiate(pid, tok).unwrap());
        tokens.push(tok);
    }
    let mut model = std::collections::HashMap::new();
    for step in 0..120u64 {
        let s = rng.range_usize(0, 4);
        let page = rng.range_u32(0, 20);
        let value = step + 1;
        match k.write_word(pid, segnos[s], page * 1024, Word::new(value)) {
            Ok(()) => {
                model.insert((s, page), value);
            }
            Err(KernelError::AllPacksFull) => break, // Storage exhausted: fine.
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    for ((s, page), value) in model {
        assert_eq!(
            k.read_word(pid, segnos[s], page * 1024).unwrap(),
            Word::new(value),
            "segment {s} page {page}"
        );
    }
    assert!(
        k.segm.stats.relocations >= 1,
        "competition forced at least one move"
    );
}

#[test]
fn directory_growth_can_itself_move_the_directory() {
    // Entries are 20 words; enough creations grow the directory segment
    // across pages; on a tiny pack the *directory* relocates, and its
    // children remain reachable.
    let (mut k, pid) = boot_tight();
    let root = k.root_token();
    let dir = k
        .create_entry(
            pid,
            root,
            "crowded",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();
    let n = 80u32; // 80 entries ≈ 1600 words: the directory crosses a page.
    for i in 0..n {
        k.create_entry(
            pid,
            dir,
            &format!("e{i}"),
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    }
    let names = k.list_dir(pid, dir).unwrap();
    assert_eq!(names.len(), n as usize);
    for i in [0u32, 41, 79] {
        let t = k.dir_search(pid, dir, &format!("e{i}")).unwrap();
        assert!(k.initiate(pid, t).is_ok(), "entry e{i} reachable");
    }
}

#[test]
fn quota_failures_during_storms_roll_back_cleanly() {
    let mut k = Kernel::boot(KernelConfig {
        frames: 96,
        records_per_pack: 256,
        toc_slots_per_pack: 64,
        pt_slots: 16,
        max_processes: 4,
        root_quota: 1000,
        ..KernelConfig::default()
    });
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let dir = k
        .create_entry(
            pid,
            root,
            "capped",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();
    k.set_quota(pid, dir, 4).unwrap();
    let tok = k
        .create_entry(pid, dir, "s", Acl::owner(UserId(1)), Label::BOTTOM, false)
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    let mut ok = 0;
    let mut refused = 0;
    for p in 0..10u32 {
        match k.write_word(pid, segno, p * 1024, Word::new(1)) {
            Ok(()) => ok += 1,
            Err(KernelError::QuotaExceeded { limit: 4, used: 4 }) => refused += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(ok, 4);
    assert_eq!(refused, 6);
    let quid = k.uid_of_token(dir).unwrap();
    assert_eq!(
        k.qcm.cell_state(quid),
        Some((4, 4)),
        "failed charges rolled back exactly"
    );
    // Earlier pages still intact after the refusals.
    for p in 0..4u32 {
        assert_eq!(k.read_word(pid, segno, p * 1024).unwrap(), Word::new(1));
    }
}

#[test]
fn legacy_relocation_agrees_on_data_preservation() {
    use multics::legacy::{Acl as LAcl, Supervisor, SupervisorConfig, UserId as LUserId};
    let mut sup = Supervisor::boot(SupervisorConfig {
        packs: 2,
        records_per_pack: 10,
        toc_slots_per_pack: 24,
        root_quota_pages: 500,
        ..SupervisorConfig::default()
    });
    // A big spare pack, as in the kernel test.
    sup.machine.disks.attach(64, 32);
    let pid = sup.create_process(LUserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "grower", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    let segno = sup.initiate(pid, "grower").unwrap();
    for p in 0..30u32 {
        sup.user_write(pid, segno, p * 1024, Word::new(u64::from(p) + 7))
            .unwrap();
    }
    assert!(sup.stats.relocations >= 1);
    for p in 0..30u32 {
        assert_eq!(
            sup.user_read(pid, segno, p * 1024).unwrap(),
            Word::new(u64::from(p) + 7)
        );
    }
}
