//! The missing-page race window, on both hardware bases.
//!
//! "The hardware imposes a short time window between a missing page
//! exception and the setting of the lock by page control and some other
//! process may alter the address translation tables between the
//! exception and capturing the lock."
//!
//! These tests drive the window explicitly with the machine's two
//! processors: CPU 0 takes the fault; before its handler runs, CPU 1
//! interferes. On the 1974 base the handler must *interpretively
//! retranslate* and discover the page already present; on the proposed
//! base the hardware lock bit closes the window — the second processor
//! takes a locked-descriptor exception and waits on the page eventcount.

use multics::aim::Label;
use multics::hw::cpu::Ptw;
use multics::hw::{AccessMode, Fault, VirtAddr, Word};
use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
use multics::legacy::{Acl as LAcl, Supervisor, SupervisorConfig, UserId as LUserId};

#[test]
fn legacy_retranslation_detects_a_raced_service() {
    let mut sup = Supervisor::boot(SupervisorConfig::default());
    let pid = sup.create_process(LUserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "hot", LAcl::owner(LUserId(1)), Label::BOTTOM)
        .unwrap();
    let segno = sup.initiate(pid, "hot").unwrap();
    sup.user_write(pid, segno, 0, Word::new(9)).unwrap();
    // Page out.
    let uid = sup
        .resolve(pid, "hot", multics::legacy::AccessRight::Read)
        .unwrap()
        .0;
    let astx = sup.ast.find(uid).unwrap();
    sup.flush_segment(astx).unwrap();

    // CPU 0 takes the missing-page fault (the reference traps)...
    let va = VirtAddr::new(segno, 0);
    let fault = {
        let multics::hw::Machine {
            mem,
            clock,
            cpus,
            cost,
            ..
        } = &mut sup.machine;
        let cost = *cost;
        cpus[0].read(mem, clock, &cost, va).unwrap_err()
    };
    let Fault::MissingPage {
        descriptor,
        locked_by_hw,
        ..
    } = fault
    else {
        panic!("expected a missing page, got {fault}");
    };
    assert!(!locked_by_hw, "1974 hardware has no lock bit");

    // ...and inside the window, "another processor" services the page
    // (the supervisor path, standing in for CPU 1's handler).
    sup.service_page(astx, 0, Label::BOTTOM).unwrap();

    // Now CPU 0's handler runs: the interpretive retranslation finds the
    // descriptor present and backs out.
    let resolved_before = sup.stats.retranslations_resolved;
    sup.handle_page_fault_for_test(pid, va, descriptor).unwrap();
    assert_eq!(
        sup.stats.retranslations_resolved,
        resolved_before + 1,
        "the retranslation discovered the race"
    );
    // The reference now completes normally.
    assert_eq!(sup.user_read(pid, segno, 0).unwrap(), Word::new(9));
}

#[test]
fn kernel_lock_bit_closes_the_window() {
    let mut k = Kernel::boot(KernelConfig::default());
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "hot",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    k.write_word(pid, segno, 0, Word::new(9)).unwrap();
    let uid = k.uid_of_token(tok).unwrap();
    let handle = k.segm.get(uid).unwrap().handle;
    k.pfm
        .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
        .unwrap();

    // Both processors share the process's address space for the test.
    let frame = k.upm.dseg_frame(pid).unwrap();
    for cpu in &mut k.machine.cpus {
        cpu.dbr_user = Some(multics::hw::cpu::DescBase {
            base: frame.base(),
            len: multics::kernel::known_segment::MAX_SEGNO,
        });
    }
    let va = VirtAddr::new(segno, 0);

    // CPU 0 faults; the hardware sets the lock bit atomically.
    let fault = {
        let multics::hw::Machine {
            mem,
            clock,
            cpus,
            cost,
            ..
        } = &mut k.machine;
        let cost = *cost;
        cpus[0].read(mem, clock, &cost, va).unwrap_err()
    };
    let Fault::MissingPage {
        descriptor,
        locked_by_hw,
        ..
    } = fault
    else {
        panic!("expected a missing page, got {fault}");
    };
    assert!(
        locked_by_hw,
        "the proposed hardware locked the descriptor in the fault"
    );
    assert!(Ptw::decode(k.machine.mem.read(descriptor)).locked);

    // CPU 1 touches the same page inside the window: no duplicate fault,
    // no retranslation — a locked-descriptor exception, and the locked
    // descriptor's address lands in the per-processor register.
    let fault2 = {
        let multics::hw::Machine {
            mem,
            clock,
            cpus,
            cost,
            ..
        } = &mut k.machine;
        let cost = *cost;
        cpus[1].read(mem, clock, &cost, va).unwrap_err()
    };
    assert!(matches!(fault2, Fault::LockedDescriptor { .. }));
    assert_eq!(k.machine.cpus[1].locked_descriptor_reg, Some(descriptor));

    // CPU 0's handler services the page, unlocks, and notifies the page
    // eventcount (waking anyone parked on it).
    let ec_before = k.vpm.read_eventcount(k.pfm.page_event);
    let (h, p) = k.pfm.identify(descriptor).unwrap();
    k.pfm
        .service_missing(&mut k.machine, &mut k.drm, &mut k.qcm, &mut k.vpm, h, p)
        .unwrap();
    assert!(
        !Ptw::decode(k.machine.mem.read(descriptor)).locked,
        "unlocked after service"
    );
    assert_eq!(
        k.vpm.read_eventcount(k.pfm.page_event),
        ec_before + 1,
        "waiters notified"
    );

    // Both processors' re-references now succeed — CPU 1 without ever
    // having entered the page-service path.
    for cpuno in [0u32, 1] {
        let got = {
            let multics::hw::Machine {
                mem,
                clock,
                cpus,
                cost,
                ..
            } = &mut k.machine;
            let cost = *cost;
            cpus[cpuno as usize].read(mem, clock, &cost, va).unwrap()
        };
        assert_eq!(got, Word::new(9));
    }
}

#[test]
fn wakeup_waiting_switch_prevents_a_lost_notification() {
    // The third piece of the proposed hardware: a notification arriving
    // between the locked-descriptor exception and the wait primitive
    // sets the switch, and the wait must then not block.
    let mut k = Kernel::boot(KernelConfig::default());
    // Simulate: CPU 0 takes the locked-descriptor exception...
    k.machine.cpus[0].locked_descriptor_reg = Some(multics::hw::AbsAddr(12345));
    // ...the notification arrives *now*, before the wait...
    k.machine.cpus[0].wakeup_waiting = true;
    // ...so the wait primitive consumes the switch and does not park.
    assert!(k.machine.cpus[0].take_wakeup_waiting());
    assert!(
        !k.machine.cpus[0].take_wakeup_waiting(),
        "the switch is take-once"
    );
}

#[test]
fn dual_dbr_isolates_system_translation_from_user_spaces() {
    // System segment numbers translate through the per-processor system
    // space regardless of which user address space is loaded — so kernel
    // modules using them cannot depend on user address-space machinery.
    let mut k = Kernel::boot(KernelConfig::default());
    k.register_account("a", UserId(1), 1, Label::BOTTOM);
    k.register_account("b", UserId(2), 2, Label::BOTTOM);
    let pa = k.login_residue("a", 1, Label::BOTTOM).unwrap();
    let pb = k.login_residue("b", 2, Label::BOTTOM).unwrap();

    // Write a word into the kernel communication segment (system segno 0)
    // through CPU 0 while process A's space is loaded.
    let fa = k.upm.dseg_frame(pa).unwrap();
    k.machine.cpus[0].dbr_user = Some(multics::hw::cpu::DescBase {
        base: fa.base(),
        len: 1024,
    });
    let sys_va = VirtAddr::new(0, 7);
    {
        let multics::hw::Machine {
            mem,
            clock,
            cpus,
            cost,
            ..
        } = &mut k.machine;
        let cost = *cost;
        cpus[0]
            .write(mem, clock, &cost, sys_va, Word::new(0o31415))
            .unwrap();
    }
    // Switch to process B's space: the system word is still there at the
    // same system segment number.
    let fb = k.upm.dseg_frame(pb).unwrap();
    k.machine.cpus[0].dbr_user = Some(multics::hw::cpu::DescBase {
        base: fb.base(),
        len: 1024,
    });
    let got = {
        let multics::hw::Machine {
            mem,
            clock,
            cpus,
            cost,
            ..
        } = &mut k.machine;
        let cost = *cost;
        cpus[0]
            .translate(mem, clock, &cost, sys_va, AccessMode::Read)
            .map(|abs| mem.read(abs))
    };
    assert_eq!(got.unwrap(), Word::new(0o31415));
}
