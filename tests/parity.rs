//! Semantic parity between the two implementations.
//!
//! The restructuring was meant to keep user-visible semantics (with the
//! two deliberate exceptions the paper discusses: quota-directory
//! designation and the naming interface). These tests run the same
//! logical operations on both systems and require the same outcomes.

use multics::aim::Label;
use multics::hw::Word;
use multics::kernel::{Kernel, KernelConfig, KernelError};
use multics::legacy::{LegacyError, Supervisor, SupervisorConfig};
use multics::user::NameSpace;

struct Pair {
    sup: Supervisor,
    lpid: multics::legacy::ProcessId,
    k: Kernel,
    kpid: multics::kernel::ProcessId,
}

fn boot_pair() -> Pair {
    let mut sup = Supervisor::boot(SupervisorConfig::default());
    let lpid = sup
        .create_process(multics::legacy::UserId(1), Label::BOTTOM)
        .unwrap();
    let mut k = Kernel::boot(KernelConfig::default());
    k.register_account("u", multics::kernel::UserId(1), 1, Label::BOTTOM);
    let kpid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    Pair { sup, lpid, k, kpid }
}

impl Pair {
    fn mkdir(&mut self, path: &str) {
        let (parent, name) = split(path);
        let puid = self.legacy_resolve_dir(parent);
        self.sup
            .create_directory_in(
                puid,
                name,
                multics::legacy::Acl::owner(multics::legacy::UserId(1)),
                Label::BOTTOM,
            )
            .unwrap();
        let ptok = self.kernel_resolve(parent);
        self.k
            .create_entry(
                self.kpid,
                ptok,
                name,
                multics::kernel::Acl::owner(multics::kernel::UserId(1)),
                Label::BOTTOM,
                true,
            )
            .unwrap();
    }

    fn mkseg(&mut self, path: &str) {
        let (parent, name) = split(path);
        let puid = self.legacy_resolve_dir(parent);
        self.sup
            .create_segment_in(
                puid,
                name,
                multics::legacy::Acl::owner(multics::legacy::UserId(1)),
                Label::BOTTOM,
            )
            .unwrap();
        let ptok = self.kernel_resolve(parent);
        self.k
            .create_entry(
                self.kpid,
                ptok,
                name,
                multics::kernel::Acl::owner(multics::kernel::UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
    }

    fn legacy_resolve_dir(&mut self, path: &str) -> multics::legacy::SegUid {
        if path.is_empty() {
            return self.sup.root();
        }
        self.sup
            .resolve(self.lpid, path, multics::legacy::AccessRight::Read)
            .unwrap()
            .0
    }

    fn kernel_resolve(&mut self, path: &str) -> multics::kernel::ObjToken {
        let mut ns = NameSpace::new(&mut self.k, self.kpid);
        ns.resolve(&mut self.k, path).unwrap()
    }

    /// Writes then reads a word through each system's user path.
    fn rw_both(&mut self, path: &str, wordno: u32, value: u64) -> (Word, Word) {
        let segno = self.sup.initiate(self.lpid, path).unwrap();
        self.sup
            .user_write(self.lpid, segno, wordno, Word::new(value))
            .unwrap();
        let lw = self.sup.user_read(self.lpid, segno, wordno).unwrap();

        let tok = self.kernel_resolve(path);
        let ksegno = self.k.initiate(self.kpid, tok).unwrap();
        self.k
            .write_word(self.kpid, ksegno, wordno, Word::new(value))
            .unwrap();
        let kw = self.k.read_word(self.kpid, ksegno, wordno).unwrap();
        (lw, kw)
    }
}

fn split(path: &str) -> (&str, &str) {
    match path.rfind('>') {
        Some(0) => ("", &path[1..]),
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    }
}

#[test]
fn file_contents_agree_across_systems() {
    let mut p = boot_pair();
    p.mkdir(">a");
    p.mkdir(">a>b");
    p.mkseg(">a>b>data");
    for (wordno, value) in [(0u32, 7u64), (1024, 8), (5000, 9)] {
        let (l, k) = p.rw_both(">a>b>data", wordno, value);
        assert_eq!(l, k, "word {wordno}");
        assert_eq!(l, Word::new(value));
    }
}

#[test]
fn sparse_files_charge_the_same_record_counts() {
    let mut p = boot_pair();
    p.mkseg(">sparse");
    // Write two far-apart words: both systems should charge 2 records
    // once the dust settles (zero pages revert on flush).
    let lsegno = p.sup.initiate(p.lpid, "sparse").unwrap();
    p.sup.user_write(p.lpid, lsegno, 0, Word::new(1)).unwrap();
    p.sup
        .user_write(p.lpid, lsegno, 9 * 1024, Word::new(2))
        .unwrap();
    let luid = p
        .sup
        .resolve(p.lpid, "sparse", multics::legacy::AccessRight::Read)
        .unwrap()
        .0;
    let lastx = p.sup.ast.find(luid).unwrap();
    p.sup.flush_segment(lastx).unwrap();
    let lrecords = {
        let home = p.sup.ast.get(lastx).unwrap().home;
        p.sup
            .machine
            .disks
            .pack(home.pack)
            .unwrap()
            .entry(home.toc)
            .unwrap()
            .records_used()
    };

    let tok = p.kernel_resolve(">sparse");
    let ksegno = p.k.initiate(p.kpid, tok).unwrap();
    p.k.write_word(p.kpid, ksegno, 0, Word::new(1)).unwrap();
    p.k.write_word(p.kpid, ksegno, 9 * 1024, Word::new(2))
        .unwrap();
    let uid = p.k.uid_of_token(tok).unwrap();
    let handle = p.k.segm.get(uid).unwrap().handle;
    p.k.pfm
        .flush(&mut p.k.machine, &mut p.k.drm, &mut p.k.qcm, handle)
        .unwrap();
    let (_, krecords) = p.k.segment_meta(p.kpid, ksegno).unwrap();

    assert_eq!(lrecords, 2, "old system: 10 logical pages, 2 stored");
    assert_eq!(krecords, 2, "new system agrees");
}

#[test]
fn forbidden_and_missing_names_answer_identically_on_both() {
    let mut p = boot_pair();
    p.mkdir(">vault");
    // A second user with no rights anywhere.
    let intruder_l = p
        .sup
        .create_process(multics::legacy::UserId(9), Label::BOTTOM)
        .unwrap();
    p.k.register_account("intruder", multics::kernel::UserId(9), 9, Label::BOTTOM);
    let intruder_k = p.k.login_residue("intruder", 9, Label::BOTTOM).unwrap();

    // Old system: resolve answers NoAccess for both cases.
    let e1 = p
        .sup
        .resolve(intruder_l, "vault", multics::legacy::AccessRight::Read)
        .unwrap_err();
    let e2 = p
        .sup
        .resolve(intruder_l, "ghost-dir", multics::legacy::AccessRight::Read)
        .unwrap_err();
    assert_eq!(e1, LegacyError::NoAccess);
    assert_eq!(e1, e2);

    // New system: initiate answers NoAccess for both (resolution itself
    // returns identifiers, real or mythical).
    let mut ns = NameSpace::new(&mut p.k, intruder_k);
    let real = ns.resolve(&mut p.k, ">vault").unwrap();
    let e3 = p.k.initiate(intruder_k, real).unwrap_err();
    // Search inside the unreadable vault for a ghost: a mythical token.
    let ghost = ns.resolve(&mut p.k, ">vault>ghost").unwrap();
    let e4 = p.k.initiate(intruder_k, ghost).unwrap_err();
    assert_eq!(e3, KernelError::NoAccess);
    assert_eq!(e3, e4);
}

#[test]
fn quota_limits_enforce_identically_where_semantics_overlap() {
    // Where the two semantics coincide (designate an *empty* directory,
    // then fill it), the enforced limits agree.
    let mut p = boot_pair();
    p.mkdir(">q");
    p.sup.set_quota_directory(p.lpid, "q", 2).unwrap();
    let qtok = p.kernel_resolve(">q");
    p.k.set_quota(p.kpid, qtok, 2).unwrap();
    p.mkseg(">q>fill");

    let lsegno = p.sup.initiate(p.lpid, "q>fill").unwrap();
    p.sup.user_write(p.lpid, lsegno, 0, Word::new(1)).unwrap();
    p.sup
        .user_write(p.lpid, lsegno, 1024, Word::new(2))
        .unwrap();
    let le = p
        .sup
        .user_write(p.lpid, lsegno, 2048, Word::new(3))
        .unwrap_err();
    assert!(matches!(le, LegacyError::QuotaExceeded { limit: 2, .. }));

    let ftok = p.kernel_resolve(">q>fill");
    let ksegno = p.k.initiate(p.kpid, ftok).unwrap();
    p.k.write_word(p.kpid, ksegno, 0, Word::new(1)).unwrap();
    p.k.write_word(p.kpid, ksegno, 1024, Word::new(2)).unwrap();
    let ke =
        p.k.write_word(p.kpid, ksegno, 2048, Word::new(3))
            .unwrap_err();
    assert!(matches!(
        ke,
        KernelError::QuotaExceeded { limit: 2, used: 2 }
    ));
}

#[test]
fn the_semantics_change_quota_designation_differs_deliberately() {
    // The one place the systems answer differently, by design: the old
    // system designates a *populated* directory (with an expensive
    // sweep); the new one refuses.
    let mut p = boot_pair();
    p.mkdir(">busy");
    p.mkseg(">busy>child");
    assert!(
        p.sup.set_quota_directory(p.lpid, "busy", 50).is_ok(),
        "old: dynamic designation"
    );
    let tok = p.kernel_resolve(">busy");
    assert_eq!(
        p.k.set_quota(p.kpid, tok, 50).unwrap_err(),
        KernelError::QuotaDesignation("directory has children"),
        "new: childless-only"
    );
}
