//! Chaos composition (C1) at the integration level: the long load
//! stream cut by mid-sync power failures must come back — on both
//! designs, label for label — after every crash/salvage/re-admit
//! boundary. These run the same harness `repro --only c1` uses, at a
//! population small enough for the test suite but large enough to keep
//! the admission queue deep across every crash.
//!
//! The N=64 repro run surfaced a real recovery bug these sizes also
//! cover: deleting a file that survived a crash (and so has no AST
//! entry on the old supervisor) uncharged the quota cell *above* its
//! governing quota directory, leaving the directory's own cell reading
//! high until growth under it spuriously faulted on quota. The
//! cross-design parity assertions here pin the fix.

use mx_load::{run_kernel_c1, run_legacy_c1, C1Policy, C1SelfCheck, C1Spec};

const SEED: u64 = 0x0C1_1977;
const PLAN: u64 = 0xFA17_0C1A;

fn spec(sessions: usize, policy: C1Policy) -> C1Spec {
    C1Spec::new(sessions, SEED, PLAN, 3, policy)
}

#[test]
fn both_designs_survive_three_crashes_with_full_parity() {
    let k = run_kernel_c1(&spec(24, C1Policy::Fifo));
    let l = run_legacy_c1(&spec(24, C1Policy::Fifo));
    assert_eq!(k.violations, Vec::<String>::new());
    assert_eq!(l.violations, Vec::<String>::new());
    assert_eq!(k.epochs.iter().filter(|e| e.crashed).count(), 3);
    assert_eq!(l.epochs.iter().filter(|e| e.crashed).count(), 3);
    assert_eq!(k.parity, l.parity, "label-by-label across all crashes");
    assert_eq!(k.epoch_bounds, l.epoch_bounds);
}

#[test]
fn admission_order_is_fifo_across_every_crash_boundary() {
    // Every crash hits with a deep queue; recovery must re-admit the
    // parked population in the exact order it arrived. The admitted
    // order is complete (everyone beyond the initial slots queued) and
    // strictly increasing (the scripts storm in index order).
    let k = run_kernel_c1(&spec(24, C1Policy::Fifo));
    let l = run_legacy_c1(&spec(24, C1Policy::Fifo));
    assert!(
        k.epochs
            .iter()
            .filter(|e| e.crashed)
            .all(|e| e.queued_at_crash > 0),
        "every crash must land on a non-empty admission queue: {:?}",
        k.epochs
            .iter()
            .map(|e| e.queued_at_crash)
            .collect::<Vec<_>>()
    );
    assert_eq!(k.admitted_order, l.admitted_order);
    assert!(
        k.admitted_order.windows(2).all(|w| w[0] < w[1]),
        "admissions out of arrival order: {:?}",
        k.admitted_order
    );
}

#[test]
fn adversarial_schedules_change_nothing_user_visible() {
    let base = run_kernel_c1(&spec(16, C1Policy::Fifo));
    for policy in [C1Policy::Random(0x5C4E_D011), C1Policy::Pct(0x5C4E_D011)] {
        let k = run_kernel_c1(&spec(16, policy));
        assert_eq!(k.violations, Vec::<String>::new(), "{policy:?}");
        assert_eq!(k.parity, base.parity, "{policy:?} changed the stream");
        assert_eq!(k.admitted_order, base.admitted_order, "{policy:?} fairness");
    }
}

#[test]
fn reruns_are_byte_identical_and_cheats_are_caught() {
    let honest = spec(16, C1Policy::Fifo);
    let a = run_kernel_c1(&honest);
    let b = run_kernel_c1(&honest);
    assert_eq!(a.transcript(), b.transcript());

    let mut cheat = honest;
    cheat.self_check = C1SelfCheck::DropQueuedLogin;
    let broken = run_kernel_c1(&cheat);
    assert!(
        !broken.violations.is_empty(),
        "the dropped login went unnoticed"
    );
    for v in &broken.violations {
        assert!(
            v.contains("seed=") && v.contains("plan=") && v.contains("schedule="),
            "violation lacks a replayable repro string: {v}"
        );
    }
    assert_eq!(
        broken.violations,
        run_kernel_c1(&cheat).violations,
        "the repro triple must replay to the identical violations"
    );
}
