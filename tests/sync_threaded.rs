//! Hammering the threaded Reed–Kanodia substrate with real threads.
//!
//! The simulator form of the eventcount protocol is explored exhaustively
//! by `mx-explore`; these tests drive the library form
//! (`mx_sync::threaded`) equally hard with genuine OS concurrency:
//! ticket total-order at scale, no lost wakeup under racing
//! `advance`/`await_value`, and bounded-timeout liveness.

use multics::sync::threaded::EventcountMutex;
use multics::sync::{EventCount, Sequencer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A generous bound for waits that must complete: long enough for any
/// CI machine, short enough that a lost wakeup fails fast instead of
/// hanging the suite.
const LIVENESS: Duration = Duration::from_secs(10);

#[test]
fn tickets_are_a_total_order_at_scale() {
    let seq = Arc::new(Sequencer::new());
    let threads = 16;
    let per_thread = 2_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let seq = Arc::clone(&seq);
            thread::spawn(move || (0..per_thread).map(|_| seq.ticket()).collect::<Vec<u64>>())
        })
        .collect();
    let batches: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Within each thread the tickets are strictly increasing (a thread
    // never sees time go backwards)...
    for batch in &batches {
        assert!(batch.windows(2).all(|w| w[0] < w[1]));
    }
    // ...and globally they are exactly 0..n: no duplicate, no gap.
    let mut all: Vec<u64> = batches.into_iter().flatten().collect();
    all.sort_unstable();
    let expect: Vec<u64> = (0..threads as u64 * per_thread).collect();
    assert_eq!(all, expect);
}

#[test]
fn no_lost_wakeup_under_racing_advance_and_await() {
    // Waiters pile onto thresholds while producers advance concurrently:
    // the protocol guarantees every waiter whose threshold is eventually
    // reached gets out. A single lost wakeup strands a thread and the
    // bounded await below reports it as a failure, not a hang.
    let ec = Arc::new(EventCount::new());
    let producers = 4;
    let advances_each = 500u64;
    let total = producers as u64 * advances_each;
    let waiters = 32;

    let waiter_handles: Vec<_> = (0..waiters)
        .map(|i| {
            let ec = Arc::clone(&ec);
            // Thresholds spread over the whole range, including the
            // final value (the hardest: only the very last advance may
            // satisfy it).
            let threshold = (i as u64 * total) / waiters as u64 + 1;
            thread::spawn(move || ec.await_value_timeout(threshold, LIVENESS))
        })
        .collect();
    let producer_handles: Vec<_> = (0..producers)
        .map(|_| {
            let ec = Arc::clone(&ec);
            thread::spawn(move || {
                for _ in 0..advances_each {
                    ec.advance();
                }
            })
        })
        .collect();
    for h in producer_handles {
        h.join().unwrap();
    }
    for (i, h) in waiter_handles.into_iter().enumerate() {
        let got = h.join().unwrap();
        assert!(
            got.is_some_and(|v| v >= 1),
            "waiter {i} timed out: a wakeup was lost"
        );
    }
    assert_eq!(ec.read(), total, "advances are never lost either");
}

#[test]
fn await_observes_a_value_at_least_its_threshold() {
    // Monotonicity end-to-end: whatever a woken waiter reads is >= its
    // threshold, and a reader can only under-estimate.
    let ec = Arc::new(EventCount::new());
    let handles: Vec<_> = (1..=8u64)
        .map(|threshold| {
            let ec = Arc::clone(&ec);
            thread::spawn(move || (threshold, ec.await_value(threshold)))
        })
        .collect();
    let producer = {
        let ec = Arc::clone(&ec);
        thread::spawn(move || {
            for _ in 0..8 {
                ec.advance();
            }
        })
    };
    producer.join().unwrap();
    for h in handles {
        let (threshold, observed) = h.join().unwrap();
        assert!(observed >= threshold);
        assert!(observed <= 8);
    }
}

#[test]
fn bounded_timeout_is_live_in_both_directions() {
    let ec = Arc::new(EventCount::new());
    // Direction 1: no advance ever arrives — the wait must return None
    // instead of blocking forever.
    assert_eq!(ec.await_value_timeout(1, Duration::from_millis(50)), None);
    // Direction 2: the advance arrives late but within the bound — the
    // wait must return Some even though it already slept once.
    let waiter = {
        let ec = Arc::clone(&ec);
        thread::spawn(move || ec.await_value_timeout(1, LIVENESS))
    };
    thread::sleep(Duration::from_millis(20));
    ec.advance();
    assert_eq!(waiter.join().unwrap(), Some(1));
}

#[test]
fn eventcount_mutex_is_fair_and_exact_under_contention() {
    // The Reed–Kanodia mutual-exclusion pattern (ticket + await):
    // many threads increment; the count is exact and entry follows
    // strict ticket order.
    let m = Arc::new(EventcountMutex::new(0u64));
    let entries = Arc::new(AtomicU64::new(0));
    let threads = 8;
    let per_thread = 500u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let m = Arc::clone(&m);
            let entries = Arc::clone(&entries);
            thread::spawn(move || {
                for _ in 0..per_thread {
                    m.with(|v| {
                        // Entry order is the ticket order: the shared
                        // counter ticks once per critical region with no
                        // tearing possible.
                        *v += 1;
                        entries.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = threads as u64 * per_thread;
    assert_eq!(m.with(|v| *v), total);
    assert_eq!(entries.load(Ordering::SeqCst), total);
}

#[test]
fn producer_needs_no_waiter_identities_at_scale() {
    // Broadcast is receiver-blind: a swarm of anonymous waiters, one
    // producer holding no handles to any of them.
    let ec = Arc::new(EventCount::new());
    let waiters: Vec<_> = (0..24)
        .map(|_| {
            let ec = Arc::clone(&ec);
            thread::spawn(move || ec.await_value_timeout(30, LIVENESS))
        })
        .collect();
    let producer = {
        let ec = Arc::clone(&ec);
        thread::spawn(move || {
            for _ in 0..30 {
                ec.advance();
                std::hint::spin_loop();
            }
        })
    };
    producer.join().unwrap();
    for h in waiters {
        assert_eq!(h.join().unwrap(), Some(30));
    }
}
