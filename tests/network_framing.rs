//! Wire-level framing edges, three networks, both designs.
//!
//! The paper's network case study: two multiplexed streams are attached
//! to Multics, and "if a third network were to be connected … yet a
//! third handler be added" to the old kernel, whose network code "would
//! grow linearly with the number of networks attached". This file
//! connects that third network — a terminal concentrator with a
//! deliberately quirky frame (length byte *first*, an ignored flags
//! byte, then a two-byte channel) — to both designs, and drives every
//! framing through its edges: empty and partial frames, frames whose
//! length field lies, frames bigger than the kernel's wired buffer, and
//! the empty-channel/unknown-channel distinction. The two designs must
//! agree byte for byte and count for count; what differs is only *what
//! grew*: a few words of data in the new kernel's demultiplexer, a
//! whole handler in the old one.

use multics::kernel::demux::{FramingSpec, StreamId};
use multics::kernel::{Kernel, KernelConfig, KernelError};
use multics::legacy::network::{NetworkId, NetworkKind, MAX_FRAME};
use multics::legacy::{LegacyError, Supervisor};

/// The three framings, paired across designs.
const FRAMINGS: [(FramingSpec, NetworkKind); 3] = [
    (FramingSpec::ARPANET, NetworkKind::Arpanet),
    (FramingSpec::FRONT_END, NetworkKind::FrontEnd),
    (FramingSpec::THIRD_NET, NetworkKind::ThirdNet),
];

fn rigs() -> (Kernel, Supervisor) {
    (
        Kernel::boot(KernelConfig::default()),
        Supervisor::boot_default(),
    )
}

/// Feeds one frame to the same framing on both designs; both must
/// return the same verdict.
fn feed(
    k: &mut Kernel,
    s: &mut Supervisor,
    stream: StreamId,
    net: NetworkId,
    frame: &[u8],
) -> Result<(), ()> {
    let kr = k.demux_receive(stream, frame);
    let lr = s.network_receive(net, frame);
    assert_eq!(
        kr.is_ok(),
        lr.is_ok(),
        "designs disagree on frame {frame:?}"
    );
    kr.map_err(|_| ())
}

#[test]
fn third_net_terminal_demultiplexes_identically_on_both_designs() {
    let (mut k, mut s) = rigs();
    let stream = k.demux_attach(FramingSpec::THIRD_NET);
    let net = s.attach_network(NetworkKind::ThirdNet);
    // len=2, flags=0xFF (ignored), channel=0x0009, payload "hi" + noise.
    feed(
        &mut k,
        &mut s,
        stream,
        net,
        &[2, 0xFF, 0, 9, b'h', b'i', b'Z'],
    )
    .unwrap();
    // Different flags byte, same channel: payload appends.
    feed(&mut k, &mut s, stream, net, &[1, 0x00, 0, 9, b'!']).unwrap();
    // Another channel through the same concentrator.
    feed(&mut k, &mut s, stream, net, &[1, 0x20, 0x01, 0x02, b'x']).unwrap();
    assert_eq!(k.demux_read_resident(stream, 9).unwrap(), b"hi!");
    assert_eq!(s.network_read_channel(net, 9).unwrap(), b"hi!");
    assert_eq!(k.demux_read_resident(stream, 0x0102).unwrap(), b"x");
    assert_eq!(s.network_read_channel(net, 0x0102).unwrap(), b"x");
    assert_eq!(k.demux.frame_counts(stream).unwrap(), (3, 0));
    assert_eq!(s.network_frame_counts(net).unwrap(), (3, 0));
}

#[test]
fn a_zero_length_frame_is_accepted_and_reads_back_empty() {
    let (mut k, mut s) = rigs();
    let stream = k.demux_attach(FramingSpec::THIRD_NET);
    let net = s.attach_network(NetworkKind::ThirdNet);
    // len=0: a valid keep-alive; it opens the channel with no bytes.
    feed(&mut k, &mut s, stream, net, &[0, 0, 0, 5]).unwrap();
    assert_eq!(k.demux.frame_counts(stream).unwrap(), (1, 0));
    assert_eq!(s.network_frame_counts(net).unwrap(), (1, 0));
    assert_eq!(k.demux_read_resident(stream, 5).unwrap(), b"");
    assert_eq!(s.network_read_channel(net, 5).unwrap(), b"");
    // …and an unknown channel is a typed error, not an empty read.
    assert_eq!(
        k.demux_read_resident(stream, 6).unwrap_err(),
        KernelError::NoSuchChannel
    );
    assert_eq!(
        s.network_read_channel(net, 6).unwrap_err(),
        LegacyError::NoSuchChannel
    );
}

#[test]
fn partial_frames_are_counted_identically_never_fatal() {
    for (spec, kind) in FRAMINGS {
        let (mut k, mut s) = rigs();
        let stream = k.demux_attach(spec);
        let net = s.attach_network(kind);
        // The empty frame, a one-byte stub, a header with no room for
        // its channel, and a length field that promises more payload
        // than arrived. None may error; all malformed ones must count.
        for frame in [
            &[][..],
            &[1][..],
            &[7, 0][..],
            &[9, 200, 0, 1][..],
            &[200, 0, 0, 1][..],
        ] {
            feed(&mut k, &mut s, stream, net, frame).unwrap();
        }
        let kc = k.demux.frame_counts(stream).unwrap();
        let lc = s.network_frame_counts(net).unwrap();
        assert_eq!(kc, lc, "count mismatch for {kind:?}");
        assert_eq!(kc.0 + kc.1, 5, "every frame accounted for {kind:?}");
        assert!(kc.1 >= 3, "{kind:?} must reject the truncated frames");
    }
}

#[test]
fn oversized_frames_are_typed_errors_on_both_designs() {
    for (spec, kind) in FRAMINGS {
        let (mut k, mut s) = rigs();
        let stream = k.demux_attach(spec);
        let net = s.attach_network(kind);
        let big = vec![0u8; MAX_FRAME + 1];
        assert_eq!(
            k.demux_receive(stream, &big).unwrap_err(),
            KernelError::FrameTooBig {
                len: MAX_FRAME + 1,
                max: MAX_FRAME
            },
            "{kind:?}"
        );
        assert_eq!(
            s.network_receive(net, &big).unwrap_err(),
            LegacyError::FrameTooBig {
                len: MAX_FRAME + 1,
                max: MAX_FRAME
            },
            "{kind:?}"
        );
        // A refused frame is not counted — it never reached the parse.
        assert_eq!(k.demux.frame_counts(stream).unwrap(), (0, 0));
        assert_eq!(s.network_frame_counts(net).unwrap(), (0, 0));
        // Exactly the buffer size is fine.
        let exact = vec![1u8; MAX_FRAME];
        feed(&mut k, &mut s, stream, net, &exact).unwrap();
        assert_eq!(
            k.demux.frame_counts(stream).unwrap(),
            s.network_frame_counts(net).unwrap()
        );
    }
}

/// The same mixed traffic through all three framings on both designs:
/// identical accept/reject counts and identical channel bytes. The old
/// design paid for this with a third in-kernel handler; the new one
/// with a [`FramingSpec`] constant.
#[test]
fn legacy_and_kernel_demultiplexers_agree_across_all_framings() {
    let traffic: &[&[u8]] = &[
        &[0, 0, 7, b'a'],
        &[2, 1, 0, 7, b'b', b'c'],
        &[7, 2, b'd', b'e', b'f'],
        &[1],
        &[3, 9, 1, 4, b'g', b'h', b'i', b'j'],
        &[0, 0, 7],
        &[255, 255],
    ];
    let (mut k, mut s) = rigs();
    for (spec, kind) in FRAMINGS {
        let stream = k.demux_attach(spec);
        let net = s.attach_network(kind);
        for frame in traffic {
            feed(&mut k, &mut s, stream, net, frame).unwrap();
        }
        assert_eq!(
            k.demux.frame_counts(stream).unwrap(),
            s.network_frame_counts(net).unwrap(),
            "{kind:?} counts"
        );
        for ch in 0..1024u16 {
            let kb = k.demux_read_resident(stream, ch).ok();
            let lb = s.network_read_channel(net, ch).ok();
            assert_eq!(kb, lb, "{kind:?} channel {ch}");
        }
    }
    assert_eq!(
        s.network_count(),
        3,
        "three handlers now live in the old kernel"
    );
    assert_eq!(k.demux.stream_count(), 3, "three specs, one generic parser");
}
