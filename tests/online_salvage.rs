//! Online salvage (S1) at the integration level: after every mid-sync
//! power failure the population is re-admitted immediately and the
//! stream runs WHILE the salvager claims the hierarchy one directory at
//! a time. References into not-yet-salvaged directories surface typed
//! `SalvageBusy` and are retried on a bounded budget — never a hang,
//! never a panic — and the per-directory-release oracle battery (meter
//! and record conservation on the serving half, per-directory repair
//! idempotence) runs at every release.
//!
//! The strongest oracle here is outcome equivalence: the user-visible
//! label stream must be identical to C1's stop-the-world recovery,
//! label for label, on both designs — concurrency with the repair must
//! buy availability without changing a single outcome.

use mx_load::shard::{run_sharded, ShardSpec};
use mx_load::{
    run_kernel_c1, run_kernel_s1, run_legacy_c1, run_legacy_s1, C1Policy, C1Spec, S1SelfCheck,
    S1Spec,
};

const SEED: u64 = 0x0C1_1977;
const PLAN: u64 = 0xFA17_0C1A;

fn spec(sessions: usize, policy: C1Policy) -> S1Spec {
    S1Spec::new(sessions, SEED, PLAN, 3, policy)
}

fn c1_spec(sessions: usize, policy: C1Policy) -> C1Spec {
    C1Spec::new(sessions, SEED, PLAN, 3, policy)
}

#[test]
fn both_designs_serve_the_population_during_salvage() {
    let k = run_kernel_s1(&spec(24, C1Policy::Fifo));
    let l = run_legacy_s1(&spec(24, C1Policy::Fifo));
    assert_eq!(k.violations, Vec::<String>::new());
    assert_eq!(l.violations, Vec::<String>::new());
    assert_eq!(k.epochs.iter().filter(|e| e.crashed).count(), 3);
    assert_eq!(l.epochs.iter().filter(|e| e.crashed).count(), 3);
    assert_eq!(k.parity, l.parity, "label-by-label under online salvage");
    assert_eq!(k.epoch_bounds, l.epoch_bounds);
    // The tentpole fact: ops completed while the salvager still held
    // part of the hierarchy, on both designs, after every crash.
    for run in [&k, &l] {
        let crashed: Vec<_> = run.epochs.iter().filter(|e| e.crashed).collect();
        assert!(
            crashed.iter().all(|e| e.dirs_released > 0),
            "{}: every recovery must release directories incrementally: {:?}",
            run.design,
            crashed.iter().map(|e| e.dirs_released).collect::<Vec<_>>()
        );
        assert!(
            crashed.iter().any(|e| e.overlap_ops > 0),
            "{}: no op ever overlapped a live salvage — the window never opened",
            run.design
        );
    }
}

#[test]
fn online_outcome_equals_stop_the_world_outcome() {
    // Same seeds, same crash plan: C1 repairs everything before
    // re-admitting anyone; S1 re-admits first and repairs underneath.
    // The user-visible stream must not be able to tell the difference.
    let kc = run_kernel_c1(&c1_spec(24, C1Policy::Fifo));
    let ks = run_kernel_s1(&spec(24, C1Policy::Fifo));
    assert_eq!(
        ks.parity, kc.parity,
        "kernel: online salvage changed an outcome"
    );
    assert_eq!(ks.admitted_order, kc.admitted_order);
    let lc = run_legacy_c1(&c1_spec(24, C1Policy::Fifo));
    let ls = run_legacy_s1(&spec(24, C1Policy::Fifo));
    assert_eq!(
        ls.parity, lc.parity,
        "legacy: online salvage changed an outcome"
    );
    assert_eq!(ls.admitted_order, lc.admitted_order);
}

#[test]
fn queued_logins_survive_and_readmit_fifo_under_online_salvage() {
    let k = run_kernel_s1(&spec(24, C1Policy::Fifo));
    let l = run_legacy_s1(&spec(24, C1Policy::Fifo));
    assert!(
        k.epochs
            .iter()
            .filter(|e| e.crashed)
            .all(|e| e.queued_at_crash > 0),
        "every crash must land on a non-empty admission queue: {:?}",
        k.epochs
            .iter()
            .map(|e| e.queued_at_crash)
            .collect::<Vec<_>>()
    );
    assert_eq!(k.admitted_order, l.admitted_order);
    assert!(
        k.admitted_order.windows(2).all(|w| w[0] < w[1]),
        "admissions out of arrival order: {:?}",
        k.admitted_order
    );
}

#[test]
fn blocked_references_retry_bounded_and_never_leak_busy_labels() {
    // A session blocked at a quarantined directory retries on the
    // bounded budget; the budget is generous enough that an honest
    // salvager always finishes first, so the sentinel label a true
    // exhaustion would emit must never reach the stream.
    for policy in [C1Policy::Fifo, C1Policy::Random(0x51AB)] {
        let k = run_kernel_s1(&spec(16, policy));
        assert_eq!(k.violations, Vec::<String>::new(), "{policy:?}");
        assert!(
            k.parity.iter().all(|lbl| lbl != "busy"),
            "{policy:?}: a retry budget was exhausted mid-stream"
        );
    }
    let l = run_legacy_s1(&spec(16, C1Policy::Fifo));
    assert!(l.parity.iter().all(|lbl| lbl != "busy"));
}

#[test]
fn adversarial_schedules_race_salvager_claims_without_divergence() {
    // Seeded-random and PCT schedules reorder the kernel's internal
    // choice points, racing session faults and quota walks against the
    // salvager's claim/release sequence. No interleaving may change a
    // label, lose a login, or slip past the per-release battery.
    let base = run_kernel_s1(&spec(16, C1Policy::Fifo));
    assert_eq!(base.violations, Vec::<String>::new());
    for policy in [C1Policy::Random(0x5C4E_D011), C1Policy::Pct(0x5C4E_D011)] {
        let k = run_kernel_s1(&spec(16, policy));
        assert_eq!(k.violations, Vec::<String>::new(), "{policy:?}");
        assert_eq!(k.parity, base.parity, "{policy:?} changed the stream");
        assert_eq!(k.admitted_order, base.admitted_order, "{policy:?} fairness");
    }
}

#[test]
fn reruns_are_byte_identical_and_the_planted_cheat_is_caught() {
    let honest = spec(16, C1Policy::Fifo);
    let a = run_kernel_s1(&honest);
    let b = run_kernel_s1(&honest);
    assert_eq!(a.transcript(), b.transcript());

    // A salvager that releases a directory before repairing its torn
    // quota cell must be caught AT THE RELEASE by the per-release
    // battery — on both designs — and the printed repro string must
    // replay to the identical violations.
    let mut cheat = honest;
    cheat.self_check = S1SelfCheck::ReleaseBeforeCellRepair;
    for (design, broken, replay) in [
        ("kernel", run_kernel_s1(&cheat), run_kernel_s1(&cheat)),
        ("legacy", run_legacy_s1(&cheat), run_legacy_s1(&cheat)),
    ] {
        assert!(
            !broken.violations.is_empty(),
            "{design}: the early release went unnoticed"
        );
        assert!(
            broken
                .violations
                .iter()
                .any(|v| v.contains("recheck") || v.contains("release")),
            "{design}: violations must point at the release-time check: {:?}",
            broken.violations
        );
        for v in &broken.violations {
            assert!(
                v.contains("seed=") && v.contains("plan=") && v.contains("schedule="),
                "{design}: violation lacks a replayable repro string: {v}"
            );
        }
        assert_eq!(
            broken.violations, replay.violations,
            "{design}: the repro triple must replay identically"
        );
    }
}

#[test]
fn threaded_stress_online_salvage_races_the_sharded_engine() {
    // Real OS concurrency: four threads replay the same online-salvage
    // composition while the sharded load engine hammers its own machine
    // pairs. Every S1 replica must produce the byte-identical
    // transcript, and the sharded run's full oracle battery must hold —
    // nothing in the salvage machinery may depend on ambient state.
    let s1 = spec(12, C1Policy::Fifo);
    std::thread::scope(|scope| {
        let replicas: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    if i % 2 == 0 {
                        run_kernel_s1(&s1).transcript()
                    } else {
                        run_legacy_s1(&s1).transcript()
                    }
                })
            })
            .collect();
        let sharded = scope.spawn(|| {
            run_sharded(
                &ShardSpec {
                    sessions: 192,
                    seed: 1977,
                    shard_users: 48,
                },
                4,
            )
        });
        let transcripts: Vec<String> = replicas.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(transcripts[0], transcripts[2], "kernel replicas diverged");
        assert_eq!(transcripts[1], transcripts[3], "legacy replicas diverged");
        let run = sharded.join().unwrap();
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.n_shards, 4);
    });
}
