//! End-to-end scenarios across the whole Kernel/Multics stack.

use multics::aim::{CompartmentSet, Label, Level};
use multics::hw::Word;
use multics::kernel::{AccessRight, Acl, Kernel, KernelConfig, KernelError, UserId};
use multics::user::{publish_library, AnsweringService, NameSpace, UserLinker};

fn boot() -> Kernel {
    Kernel::boot(KernelConfig {
        frames: 192,
        records_per_pack: 512,
        toc_slots_per_pack: 128,
        pt_slots: 32,
        max_processes: 8,
        root_quota: 400,
        ..KernelConfig::default()
    })
}

#[test]
fn a_full_timesharing_session() {
    let mut k = boot();
    let mut svc = AnsweringService::new();
    svc.register(&mut k, "saltzer", UserId(1), "cactus", Label::BOTTOM);
    svc.register(&mut k, "clark", UserId(2), "arpa", Label::BOTTOM);

    // Two users log in.
    let saltzer = svc
        .login(&mut k, "saltzer", "cactus", Label::BOTTOM)
        .unwrap();
    let clark = svc.login(&mut k, "clark", "arpa", Label::BOTTOM).unwrap();

    // Saltzer builds a project tree and a shared library.
    let root = k.root_token();
    let proj = k
        .create_entry(
            saltzer,
            root,
            "project",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();
    let mut shared = Acl::owner(UserId(1));
    shared.grant(UserId(2), &[AccessRight::Read, AccessRight::Execute]);
    k.create_entry(saltzer, proj, "libshared", shared, Label::BOTTOM, false)
        .unwrap();
    let mut ns_s = NameSpace::new(&mut k, saltzer);
    let lib_segno = ns_s.initiate(&mut k, ">project>libshared").unwrap();
    publish_library(
        &mut k,
        saltzer,
        lib_segno,
        &[("compute", 64), ("report", 128)],
    )
    .unwrap();

    // Clark links against it from his own process, through directories
    // he cannot read.
    let mut ns_c = NameSpace::new(&mut k, clark);
    let mut linker = UserLinker::new(clark);
    let link = linker
        .link(&mut k, &mut ns_c, ">project>libshared", "compute")
        .unwrap();
    assert_eq!(link.offset, 64);

    // Both processes get scheduled on the fixed virtual processors.
    for _ in 0..8 {
        k.schedule();
    }

    // Sessions end; the accounts are billed.
    let c1 = svc.logout(&mut k, saltzer).unwrap();
    let c2 = svc.logout(&mut k, clark).unwrap();
    assert!(c1 > 0 && c2 > 0);
    assert_eq!(svc.active_sessions(), 0);
    assert_eq!(k.upm.live(), 0);
}

#[test]
fn quota_directory_lifecycle_with_the_childless_rule() {
    let mut k = boot();
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let dir = k
        .create_entry(
            pid,
            root,
            "limited",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();

    // Designation works while childless.
    k.set_quota(pid, dir, 3).unwrap();
    // The inverse is refused once a child exists.
    let seg = k
        .create_entry(
            pid,
            dir,
            "data",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    assert_eq!(
        k.clear_quota(pid, dir).unwrap_err(),
        KernelError::QuotaDesignation("directory has children")
    );
    // And re-designation of a populated directory would be refused too.
    let dir2 = k
        .create_entry(
            pid,
            root,
            "other",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            true,
        )
        .unwrap();
    k.create_entry(pid, dir2, "x", Acl::owner(UserId(1)), Label::BOTTOM, false)
        .unwrap();
    assert_eq!(
        k.set_quota(pid, dir2, 10).unwrap_err(),
        KernelError::QuotaDesignation("directory has children")
    );

    // Enforcement: the segment under `limited` may use at most 3 pages.
    let segno = k.initiate(pid, seg).unwrap();
    k.write_word(pid, segno, 0, Word::new(1)).unwrap();
    k.write_word(pid, segno, 1024, Word::new(2)).unwrap();
    k.write_word(pid, segno, 2048, Word::new(3)).unwrap();
    let err = k.write_word(pid, segno, 3072, Word::new(4)).unwrap_err();
    assert!(matches!(
        err,
        KernelError::QuotaExceeded { limit: 3, used: 3 }
    ));

    // Deleting the child frees the charge; then the designation can go.
    k.delete_entry(pid, dir, "data").unwrap();
    k.clear_quota(pid, dir).unwrap();
}

#[test]
fn aim_compartments_isolate_even_at_equal_levels() {
    let mut k = boot();
    let crypto = Label::new(Level(1), CompartmentSet::empty().with(0));
    let nuclear = Label::new(Level(1), CompartmentSet::empty().with(1));
    k.register_account("c", UserId(1), 1, crypto);
    k.register_account("n", UserId(2), 2, nuclear);
    let pc = k.login_residue("c", 1, crypto).unwrap();
    let pn = k.login_residue("n", 2, nuclear).unwrap();
    let root = k.root_token();
    // A crypto-compartment file that the ACL would happily share.
    let mut acl = Acl::owner(UserId(1));
    acl.grant(UserId(2), &[AccessRight::Read]);
    let tok = k
        .create_entry(pc, root, "cipher", acl, crypto, false)
        .unwrap();
    assert!(k.initiate(pc, tok).is_ok());
    assert_eq!(
        k.initiate(pn, tok).unwrap_err(),
        KernelError::NoAccess,
        "incomparable compartments: ACL grants, AIM forbids, answer is uniform"
    );
}

#[test]
fn memory_pressure_never_loses_data() {
    let mut k = Kernel::boot(KernelConfig {
        frames: 48, // Tiny pageable pool.
        pt_slots: 8,
        max_processes: 3,
        records_per_pack: 512,
        toc_slots_per_pack: 64,
        root_quota: 300,
        ..KernelConfig::default()
    });
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "big",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    let pages = 60u32;
    for p in 0..pages {
        k.write_word(
            pid,
            segno,
            p * 1024 + (p % 7),
            Word::new(u64::from(p) * 3 + 1),
        )
        .unwrap();
        if p % 8 == 7 {
            k.run_purifier(8).unwrap();
        }
    }
    assert!(
        k.pfm.stats.evictions > 0,
        "the pool really was under pressure"
    );
    for p in 0..pages {
        assert_eq!(
            k.read_word(pid, segno, p * 1024 + (p % 7)).unwrap(),
            Word::new(u64::from(p) * 3 + 1),
            "page {p} lost"
        );
    }
}

#[test]
fn terminate_disconnects_and_renders_segno_unusable() {
    let mut k = boot();
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "tmp",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    k.write_word(pid, segno, 0, Word::new(9)).unwrap();
    k.terminate(pid, segno).unwrap();
    assert_eq!(
        k.read_word(pid, segno, 0).unwrap_err(),
        KernelError::NoAccess
    );
    // Re-initiation works and finds the data.
    let segno2 = k.initiate(pid, tok).unwrap();
    assert_eq!(k.read_word(pid, segno2, 0).unwrap(), Word::new(9));
}

#[test]
fn deactivation_needs_no_hierarchy_order_in_the_new_design() {
    let mut k = boot();
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let d1 = k
        .create_entry(pid, root, "d1", Acl::owner(UserId(1)), Label::BOTTOM, true)
        .unwrap();
    let d2 = k
        .create_entry(pid, d1, "d2", Acl::owner(UserId(1)), Label::BOTTOM, true)
        .unwrap();
    let f = k
        .create_entry(pid, d2, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
        .unwrap();
    let segno = k.initiate(pid, f).unwrap();
    k.write_word(pid, segno, 0, Word::new(5)).unwrap();
    // Deactivate the *middle* directory while its inferior's segment is
    // still active — impossible in the old design, routine in the new.
    let d2_uid = k.uid_of_token(d2).unwrap();
    let f_uid = k.uid_of_token(f).unwrap();
    assert!(k.segm.get(f_uid).is_some());
    k.segm
        .deactivate(&mut k.machine, &mut k.drm, &mut k.qcm, &mut k.pfm, d2_uid)
        .unwrap();
    assert!(k.segm.get(f_uid).is_some(), "the inferior stays active");
    assert_eq!(k.read_word(pid, segno, 0).unwrap(), Word::new(5));
}

#[test]
fn every_mandatory_decision_lands_in_the_audit_log() {
    let mut k = boot();
    let secret = Label::new(Level(2), CompartmentSet::empty());
    k.register_account("low", UserId(1), 1, Label::BOTTOM);
    k.register_account("high", UserId(2), 2, secret);
    let low = k.login_residue("low", 1, Label::BOTTOM).unwrap();
    let high = k.login_residue("high", 2, secret).unwrap();
    let root = k.root_token();
    let mut acl = Acl::owner(UserId(2));
    acl.grant(UserId(1), &[AccessRight::Read]);
    let tok = k
        .create_entry(high, root, "classified", acl, secret, false)
        .unwrap();
    let grants_before = k.monitor.audit().grants();
    let denials_before = k.monitor.audit().denials();
    assert!(k.initiate(high, tok).is_ok(), "owner at level");
    assert_eq!(
        k.initiate(low, tok).unwrap_err(),
        KernelError::NoAccess,
        "read up denied"
    );
    assert!(
        k.monitor.audit().grants() > grants_before,
        "the grant was recorded for the auditor"
    );
    assert!(
        k.monitor.audit().denials() > denials_before,
        "the denial was recorded for the auditor"
    );
}

#[test]
fn the_event_queue_reaches_user_level_scheduling() {
    let mut k = boot();
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "faulty",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    k.write_word(pid, segno, 0, Word::new(1)).unwrap();
    // Flush, then fault the page back in: the service posts an event.
    let uid = k.uid_of_token(tok).unwrap();
    let handle = k.segm.get(uid).unwrap().handle;
    k.pfm
        .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
        .unwrap();
    let ec_before = k.vpm.read_eventcount(k.upm.queue_event);
    k.read_word(pid, segno, 0).unwrap();
    assert!(
        k.vpm.read_eventcount(k.upm.queue_event) > ec_before,
        "the queue eventcount advanced"
    );
    // The scheduler drains it on its next pass.
    k.schedule();
}
