//! The schedule explorer as a regression suite.
//!
//! `tests/races.rs` drives the missing-page race window through exactly
//! one interleaving per design. These tests re-run the explorer's
//! concurrency scenarios — the same protocol surfaces — under many
//! seeded-random schedules, pin the DFS enumerator's exact schedule
//! count on the small handoff scenario, and prove the injected-violation
//! path end to end. The pinned adversarial schedules double as the
//! satellite-6 record: the bounded-preemption DFS over the current
//! `EventTable`/`VirtualProcessorManager` finds **no** lost-wakeup or
//! wakeup-order bug (the one it did flush out — a VP parked on several
//! eventcounts being enqueued once per registration — is fixed in
//! `vproc::make_runnable` and pinned by `double_registration_is_enqueued_
//! exactly_once` in `mx-kernel`).

use multics::explore::{
    explore_dfs, explore_pct, explore_random, replay, run_kernel, run_legacy, PctPolicy,
    ReplayPolicy, ScenarioKind, SeededRandomPolicy,
};
use multics::sync::FifoPolicy;

/// K seeds per scenario for the random sweeps (kept modest: the full
/// 500+-schedule sweep is X1's job; this is the regression gate).
const K: usize = 12;

#[test]
fn race_scenarios_hold_under_seeded_random_schedules() {
    for kind in [
        ScenarioKind::Signals,
        ScenarioKind::Quota,
        ScenarioKind::Purifier,
        ScenarioKind::Tlb,
    ] {
        for seed in [1u64, 7, 23] {
            let exp = explore_random(kind, seed, K);
            assert_eq!(exp.schedules, K);
            assert!(
                exp.violations.is_empty(),
                "{kind:?} seed {seed}: {:?}",
                exp.violations.first().map(|r| (&r.schedule, &r.violations))
            );
            assert!(
                exp.distinct_parities.len() <= 1,
                "{kind:?} seed {seed}: user-visible results moved with the schedule"
            );
        }
    }
}

#[test]
fn race_scenarios_hold_under_pct_priority_fuzzing() {
    for kind in [ScenarioKind::Signals, ScenarioKind::Quota] {
        let exp = explore_pct(kind, 5, K);
        assert!(exp.violations.is_empty(), "{:?}", exp.violations);
        assert!(exp.distinct_parities.len() <= 1);
    }
}

#[test]
fn dfs_schedule_count_is_pinned_on_the_handoff_scenario() {
    // The enumerator itself is regression-tested by its exact tree:
    // the handoff scenario (2 advances; waiters at thresholds 1, 1, 2)
    // has precisely these many interleavings at each preemption bound.
    let cases = [
        (0usize, 1usize), // FIFO only
        (1, 5),           // one deviation anywhere
        (2, 13),
        (3, 21),
        (usize::MAX, 24), // the full tree
    ];
    for (bound, expect) in cases {
        let exp = explore_dfs(ScenarioKind::Handoff, 0, bound, 10_000);
        assert!(!exp.truncated);
        assert_eq!(
            exp.schedules, expect,
            "bound {bound}: the enumeration tree changed shape"
        );
        assert!(exp.violations.is_empty(), "{:?}", exp.violations);
    }
    // And the outcome space is pinned too: 12 distinct interleaving
    // results, every one passing every oracle — the adversarial
    // schedules found no lost-wakeup or wakeup-order bug.
    let full = explore_dfs(ScenarioKind::Handoff, 0, usize::MAX, 10_000);
    assert_eq!(full.distinct_outcomes, 12);
}

#[test]
fn exhaustive_dfs_catches_the_injected_lost_wakeup_everywhere() {
    // Under the deliberately broken advance, *every* schedule strands a
    // waiter — the oracle battery must flag all of them, not just FIFO.
    let exp = explore_dfs(ScenarioKind::HandoffLossy, 0, usize::MAX, 10_000);
    assert!(!exp.truncated);
    assert_eq!(
        exp.violations.len(),
        exp.schedules,
        "some broken schedule slipped past the oracles"
    );
}

#[test]
fn a_violation_replays_from_its_seed_and_schedule_string_alone() {
    let bad = run_kernel(
        ScenarioKind::HandoffLossy,
        3,
        Box::new(SeededRandomPolicy::new(17)),
    );
    assert!(!bad.violations.is_empty());
    // Reproduce from nothing but the printed triple.
    let (kind_str, seed, schedule) = (bad.kind.name(), bad.seed, bad.schedule.clone());
    let again = replay(ScenarioKind::parse(kind_str).unwrap(), seed, &schedule);
    assert_eq!(again.schedule, bad.schedule);
    assert_eq!(again.outcome, bad.outcome);
    assert_eq!(again.violations, bad.violations);
}

#[test]
fn replay_policy_reproduces_any_random_kernel_schedule() {
    for seed in 0..4u64 {
        let original = run_kernel(
            ScenarioKind::Signals,
            seed,
            Box::new(SeededRandomPolicy::new(seed.wrapping_mul(77) + 5)),
        );
        let replayed = run_kernel(
            ScenarioKind::Signals,
            seed,
            Box::new(ReplayPolicy::new(
                multics::explore::parse_schedule(&original.schedule).unwrap(),
            )),
        );
        assert_eq!(replayed.schedule, original.schedule);
        assert_eq!(replayed.fingerprint, original.fingerprint);
    }
}

#[test]
fn both_designs_agree_on_user_visible_results_for_every_policy() {
    for kind in [ScenarioKind::Signals, ScenarioKind::Quota] {
        let seed = 11;
        let baseline = run_legacy(kind, seed);
        assert!(baseline.violations.is_empty(), "{:?}", baseline.violations);
        let policies: Vec<Box<dyn multics::sync::SchedulePolicy>> = vec![
            Box::new(FifoPolicy),
            Box::new(SeededRandomPolicy::new(41)),
            Box::new(PctPolicy::new(42)),
        ];
        for policy in policies {
            let run = run_kernel(kind, seed, policy);
            assert!(run.violations.is_empty(), "{:?}", run.violations);
            assert_eq!(
                run.parity, baseline.parity,
                "{kind:?}: designs diverged on user-visible results"
            );
        }
    }
}

/// X1 composed with L1: the smallest load-harness population driven
/// under the explorer's adversarial schedule policies. The scenario
/// suites above exercise hand-built protocol surfaces; this one runs
/// the full session stack — answering service, linker, name space,
/// file growth, logout — under 64 seeded-random and 64 PCT schedules,
/// asserting the whole oracle battery and that every schedule produces
/// the same user-visible outcomes the 1974 supervisor does.
#[test]
fn load_harness_holds_under_adversarial_schedules() {
    use multics::load::{run_legacy_load, LoadRun, LoadSpec};

    const SCHEDULES: u64 = 64;
    // The explorer's seed-derivation convention (lib.rs policy_seed).
    fn policy_seed(base: u64, i: u64) -> u64 {
        base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i)
    }

    let spec = LoadSpec::new(4, 17); // the smallest L1 point
    let baseline = run_legacy_load(&spec);
    assert!(baseline.violations.is_empty(), "{:?}", baseline.violations);

    for i in 0..SCHEDULES {
        for pct in [false, true] {
            let policy: Box<dyn multics::sync::SchedulePolicy> = if pct {
                Box::new(PctPolicy::new(policy_seed(29, i)))
            } else {
                Box::new(SeededRandomPolicy::new(policy_seed(13, i)))
            };
            let run = multics::load::run_kernel_load(&spec, Some(policy));
            assert!(
                run.violations.is_empty(),
                "schedule {i} (pct={pct}): {:?}",
                run.violations
            );
            let problems = LoadRun::check_pair(&run, &baseline);
            assert!(
                problems.is_empty(),
                "schedule {i} (pct={pct}): {problems:?}"
            );
            assert_eq!(run.sessions, 4);
        }
    }
}

/// X1 composed with F1: the inter-machine wire as a schedule surface.
///
/// Delivery order across the fleet's directed links is a
/// `ChoicePoint::Wire` on the fleet policy, so the explorer's
/// adversaries apply to it directly. Under seeded-random and PCT
/// delivery schedules at M=2, every run must pass the whole fleet
/// battery (per-machine oracles, fleet-wide record conservation, FIFO
/// admission, single-machine label parity) AND produce the *same*
/// label stream the FIFO wire does: delivery order is the wire's
/// business, never the user's.
#[test]
fn fleet_wire_holds_under_adversarial_delivery_schedules() {
    use multics::load::{run_kernel_fleet, run_kernel_load, FleetSpec};

    const SCHEDULES: u64 = 24;
    fn policy_seed(base: u64, i: u64) -> u64 {
        base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i)
    }

    let spec = FleetSpec::new(2, 8, 17);
    let single = run_kernel_load(&spec.base(), None);
    let fifo = run_kernel_fleet(&spec, None);
    assert_eq!(fifo.check_against(&single), Vec::<String>::new());
    assert!(fifo.frames_delivered > 0, "the wire must carry traffic");

    for i in 0..SCHEDULES {
        for pct in [false, true] {
            let policy: Box<dyn multics::sync::SchedulePolicy> = if pct {
                Box::new(PctPolicy::new(policy_seed(31, i)))
            } else {
                Box::new(SeededRandomPolicy::new(policy_seed(19, i)))
            };
            let run = run_kernel_fleet(&spec, Some(policy));
            assert_eq!(
                run.check_against(&single),
                Vec::<String>::new(),
                "wire schedule {i} (pct={pct})"
            );
            assert_eq!(
                run.parity, fifo.parity,
                "wire schedule {i} (pct={pct}): delivery order leaked into the user stream"
            );
        }
    }
}
