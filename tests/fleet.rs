//! Differential fuzz: the fleet as a user-invisible implementation
//! detail.
//!
//! A fleet of M machines behind one answering service must be
//! *indistinguishable from one machine* for every seed: the merged
//! label stream byte-identical to the single-machine load run, the
//! admission queue first-come-first-served at the same peak pressure,
//! every per-machine oracle battery clean, and every record allocated
//! anywhere in the fleet referenced by exactly one file map somewhere
//! in the fleet. This file sweeps 32 seeds across fleets of 1, 2, and
//! 4 machines on both designs, then pins the specific mechanisms: a
//! session homed away from its files (every touch remote), and a
//! member machine whose packs fill so its files migrate to the store
//! over the wire mid-stream.

use multics::load::{
    run_kernel_fleet, run_kernel_load, run_legacy_fleet, run_legacy_load, FleetSpec,
};

/// Seeds per machine count. 32 seeds x 3 fleet sizes x 2 designs keeps
/// home assignments, remote traffic, and gossip interleavings varied
/// while staying inside the default `cargo test` budget.
const SEEDS: u64 = 32;
const SESSIONS: usize = 6;

#[test]
fn differential_fuzz_three_fleet_sizes() {
    let mut remote = 0u64;
    let mut frames = 0u64;
    for seed in 0..SEEDS {
        let base = FleetSpec::new(1, SESSIONS, seed).base();
        let k_single = run_kernel_load(&base, None);
        let l_single = run_legacy_load(&base);
        for machines in [1usize, 2, 4] {
            let spec = FleetSpec::new(machines, SESSIONS, seed);
            let k = run_kernel_fleet(&spec, None);
            assert_eq!(
                k.check_against(&k_single),
                Vec::<String>::new(),
                "kernel fleet M={machines} seed={seed}"
            );
            let l = run_legacy_fleet(&spec, None);
            assert_eq!(
                l.check_against(&l_single),
                Vec::<String>::new(),
                "legacy fleet M={machines} seed={seed}"
            );
            assert_eq!(
                k.parity, l.parity,
                "cross-design parity M={machines} seed={seed}"
            );
            if machines == 1 {
                assert_eq!(k.frames_sent, 0, "one machine never touches the wire");
            }
            remote += k.remote_ops + l.remote_ops;
            frames += k.frames_delivered;
            assert_eq!(k.frames_dropped, 0, "honest runs drop nothing");
        }
    }
    assert!(
        remote > 0 && frames > 0,
        "the sweep must actually exercise the wire"
    );
}

/// The merged fleet stream is byte-identical to the L1 single-machine
/// stream at a population large enough to queue logins and abandon
/// sessions, label by label, for every machine count.
#[test]
fn merged_labels_match_the_single_machine_stream() {
    let seed = 1977;
    let sessions = 20;
    let single = run_kernel_load(&FleetSpec::new(1, sessions, seed).base(), None);
    for machines in [2usize, 4] {
        let fleet = run_kernel_fleet(&FleetSpec::new(machines, sessions, seed), None);
        assert_eq!(
            fleet.parity, single.parity,
            "label stream diverged at M={machines}"
        );
        assert!(fleet.remote_ops > 0, "M={machines} must serve remote work");
    }
}

/// Remote service is not a separate code path the user can see: a
/// session whose home holds none of its files gets every link, every
/// resolve, every grow and read served over the wire, and its labels
/// still match the local run's.
#[test]
fn remote_sessions_match_local_sessions() {
    let spec = FleetSpec::new(4, 10, 23);
    let single = run_kernel_load(&spec.base(), None);
    let fleet = run_kernel_fleet(&spec, None);
    assert_eq!(fleet.check_against(&single), Vec::<String>::new());
    assert!(
        fleet.remote_ops as usize > spec.sessions,
        "with 4 machines most file traffic crosses the wire: {} remote ops",
        fleet.remote_ops
    );
    let legacy_single = run_legacy_load(&spec.base());
    let legacy_fleet = run_legacy_fleet(&spec, None);
    assert_eq!(
        legacy_fleet.check_against(&legacy_single),
        Vec::<String>::new()
    );
}

/// Pack migration: member machines get packs small enough that file
/// growth forces full-pack relocation, and each relocated session file
/// is moved to the store machine over the wire. The stream, the
/// fleet-wide record count, and the file contents (read back after the
/// move by the sessions themselves) must all survive.
#[test]
fn pack_migration_survives_with_contents_intact() {
    let mut spec = FleetSpec::new(2, 12, 5);
    spec.migratory = true;
    let single = run_kernel_load(&spec.base(), None);
    let fleet = run_kernel_fleet(&spec, None);
    assert_eq!(fleet.check_against(&single), Vec::<String>::new());
    assert!(fleet.relocations > 0, "small packs must force relocation");
    assert!(fleet.migrations > 0, "relocation must trigger migration");
    // Post-migration reads are part of the scripts; identical labels
    // prove the moved bytes read back unchanged. The fleet-wide record
    // conservation check (inside check_against) proves the source
    // records were freed, not leaked.
}

/// The legacy design migrates too — the wire is design-agnostic.
#[test]
fn legacy_pack_migration_survives() {
    let mut spec = FleetSpec::new(2, 12, 5);
    spec.migratory = true;
    let single = run_legacy_load(&spec.base());
    let fleet = run_legacy_fleet(&spec, None);
    assert_eq!(fleet.check_against(&single), Vec::<String>::new());
    assert!(fleet.relocations > 0, "small packs must force relocation");
    assert!(fleet.migrations > 0, "relocation must trigger migration");
}
