//! Shard determinism: the sharded load engine's merged result is a pure
//! function of (seed, N, granule) — the OS worker count never leaks in.
//!
//! The partition itself is a pure hash of seed and session index, and
//! each shard runs on its own machine pair, so every latency sample
//! depends only on the shard's fixed co-population. These tests pin the
//! consequence: the merged labels, histograms, cycles, and per-user
//! sample vectors are identical whether one thread drives the shards or
//! eight race over them.

use mx_load::shard::{run_sharded, ShardSpec};

#[test]
fn merged_stream_is_invariant_across_worker_counts() {
    let spec = ShardSpec {
        sessions: 96,
        seed: 1977,
        shard_users: 24,
    };
    let base = run_sharded(&spec, 1);
    assert!(base.violations.is_empty(), "{:?}", base.violations);
    assert!(
        base.n_shards >= 4,
        "the invariance check needs real contention over multiple shards"
    );
    for workers in [2, 4, 8] {
        let run = run_sharded(&spec, workers);
        assert!(
            run.violations.is_empty(),
            "K={workers}: {:?}",
            run.violations
        );
        // Identical merged labels …
        assert_eq!(
            run.kernel.parity, base.kernel.parity,
            "K={workers} kernel labels"
        );
        assert_eq!(
            run.legacy.parity, base.legacy.parity,
            "K={workers} legacy labels"
        );
        // … identical per-user latency samples …
        assert_eq!(
            run.kernel.user_samples, base.kernel.user_samples,
            "K={workers} kernel samples"
        );
        assert_eq!(
            run.legacy.user_samples, base.legacy.user_samples,
            "K={workers} legacy samples"
        );
        // … and identical everything else (cycles, histograms, counts).
        assert_eq!(run.kernel, base.kernel, "K={workers} kernel merge");
        assert_eq!(run.legacy, base.legacy, "K={workers} legacy merge");
    }
}

#[test]
fn threaded_stress_four_shards_of_256_users() {
    // Four ~256-user shard machines raced by four OS threads: the
    // sharded engine's full oracle battery (per-shard conservation and
    // parity, post-merge partition coverage and sample conservation)
    // must hold under real concurrency.
    let spec = ShardSpec {
        sessions: 1024,
        seed: 1977,
        shard_users: 256,
    };
    let run = run_sharded(&spec, 4);
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert_eq!(run.n_shards, 4);
    assert_eq!(run.kernel.sessions, 1024);
    assert_eq!(run.legacy.sessions, 1024);
    assert_eq!(
        run.kernel.parity.len(),
        run.legacy.parity.len(),
        "both designs retired the same stream"
    );
    assert_eq!(run.kernel.hist.samples(), run.kernel.ops);
    // Every global session index surfaced exactly once in the merge.
    let mut indices: Vec<usize> = run.kernel.user_samples.iter().map(|(g, _)| *g).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..1024).collect::<Vec<_>>());
}
