//! Differential fuzz: the load harness as a parity oracle.
//!
//! Every seed expands to a population of session scripts — login storm,
//! dynamic links, name-space traffic, file growth into tight quotas and
//! small packs, shared-page reads, logouts and abandonments — and both
//! designs execute the identical logical stream. The whole battery is
//! asserted per run: user-visible outcome parity label by label, meter
//! conservation (every simulated cycle attributed to a subsystem), and
//! per-pack record conservation (allocated == TOC-mapped), plus wakeup
//! exactness and TLB closure on the kernel side.
//!
//! Tight storage makes the error paths load-bearing: past-quota writes
//! and full-pack allocations must surface *identically typed* in both
//! designs, not just the happy path.

use multics::load::{LoadRun, LoadSpec};

/// Seeds per session count. 32+ seeds x 3 population sizes keeps the
/// sweep broad enough to hit quota, full-pack, abandonment, and
/// admission-queue interleavings every run, while staying inside the
/// default `cargo test` budget.
const SEEDS: u64 = 32;

#[test]
fn differential_fuzz_tight_storage_three_population_sizes() {
    let mut quota_hits = 0u32;
    let mut queued_runs = 0u32;
    let mut abandoned = 0u32;
    for sessions in [3usize, 6, 10] {
        for seed in 0..SEEDS {
            let spec = LoadSpec::tight(sessions, 0x10AD ^ seed.wrapping_mul(0x9E37_79B9));
            let (k, l) = multics::load::run_both(&spec);
            let problems = LoadRun::check_pair(&k, &l);
            assert!(
                problems.is_empty(),
                "sessions {sessions} seed {seed}: {problems:?}"
            );
            quota_hits += k.parity.iter().filter(|p| p.starts_with("w:quota")).count() as u32;
            queued_runs += u32::from(k.queued_peak > 0);
            abandoned += k.abandoned as u32;
        }
    }
    // The sweep must actually exercise the interesting paths, or the
    // parity assertions above were vacuous.
    assert!(quota_hits > 0, "no run ever hit a quota");
    assert!(queued_runs > 0, "no login storm ever queued");
    assert!(abandoned > 0, "no session was ever abandoned");
}

#[test]
fn ample_storage_parity_spot_check() {
    // The L1 shape (ample storage) at a couple of seeds: same battery,
    // different failure surface (no storage errors expected, so any
    // divergence is scheduling- or accounting-borne).
    for seed in [1u64, 99] {
        let spec = LoadSpec::new(12, seed);
        let (k, l) = multics::load::run_both(&spec);
        let problems = LoadRun::check_pair(&k, &l);
        assert!(problems.is_empty(), "seed {seed}: {problems:?}");
        assert!(k.parity.iter().all(|p| !p.starts_with("w:quota")));
    }
}
