//! Property-based tests on the core invariants.

use multics::aim::{CompartmentSet, Label, Level};
use multics::hw::cpu::{Ptw, Sdw};
use multics::hw::{AbsAddr, FrameNo, Word};
use multics::sync::{EventTable, MessageQueue, WaiterId};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = Label> {
    (0u8..4, 0u64..16).prop_map(|(l, c)| Label::new(Level(l), CompartmentSet::from_bits(c)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------------- AIM: the label lattice ---------------------------

    #[test]
    fn dominance_is_a_partial_order(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert!(a.dominates(a), "reflexive");
        if a.dominates(b) && b.dominates(a) {
            prop_assert_eq!(a, b, "antisymmetric");
        }
        if a.dominates(b) && b.dominates(c) {
            prop_assert!(a.dominates(c), "transitive");
        }
    }

    #[test]
    fn join_and_meet_are_bounds(a in arb_label(), b in arb_label()) {
        let j = a.join(b);
        prop_assert!(j.dominates(a) && j.dominates(b));
        let m = a.meet(b);
        prop_assert!(a.dominates(m) && b.dominates(m));
        // Absorption.
        prop_assert_eq!(a.join(a.meet(b)), a);
        prop_assert_eq!(a.meet(a.join(b)), a);
    }

    #[test]
    fn no_read_up_no_write_down_are_duals(s in arb_label(), o in arb_label()) {
        use multics::aim::{AccessKind, ReferenceMonitor};
        let read = ReferenceMonitor::decide(s, o, AccessKind::Read).granted();
        let write = ReferenceMonitor::decide(o, s, AccessKind::Write).granted();
        prop_assert_eq!(read, write, "subject reading down = object written up");
    }

    // ---------------- hardware word / descriptor codecs -----------------

    #[test]
    fn word_fields_round_trip(raw in 0u64..(1 << 36), lo in 0u32..30, width in 1u32..6) {
        let w = Word::new(raw);
        let v = w.field(lo, width);
        prop_assert_eq!(w.with_field(lo, width, v), w);
    }

    #[test]
    fn sdw_codec_round_trips(
        pt in 0u64..(1 << 22),
        bound in 0u32..512,
        bits in 0u8..32,
    ) {
        let sdw = Sdw {
            page_table: AbsAddr(pt),
            bound_pages: bound,
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            execute: bits & 4 != 0,
            present: bits & 8 != 0,
            software: bits & 16 != 0,
        };
        prop_assert_eq!(Sdw::decode(sdw.encode()), sdw);
    }

    #[test]
    fn ptw_codec_round_trips(frame in 0u32..(1 << 13), bits in 0u8..64) {
        let ptw = Ptw {
            frame: FrameNo(frame),
            quota_trap: bits & 1 != 0,
            locked: bits & 2 != 0,
            used: bits & 4 != 0,
            modified: bits & 8 != 0,
            present: bits & 16 != 0,
            wired: bits & 32 != 0,
        };
        prop_assert_eq!(Ptw::decode(ptw.encode()), ptw);
    }

    // ---------------- eventcounts ----------------------------------------

    #[test]
    fn eventcount_wakeups_are_exact(
        thresholds in prop::collection::vec(1u64..12, 1..10),
        advances in 1usize..16,
    ) {
        let mut t = EventTable::new();
        let ec = t.create();
        let mut parked: Vec<(u64, u32)> = Vec::new();
        for (i, th) in thresholds.iter().enumerate() {
            if !t.await_value(ec, *th, WaiterId(i as u32)) {
                parked.push((*th, i as u32));
            }
        }
        let mut woken: Vec<u32> = Vec::new();
        for _ in 0..advances {
            woken.extend(t.advance(ec).into_iter().map(|w| w.0));
        }
        let value = t.read(ec);
        prop_assert_eq!(value, advances as u64);
        // Exactly the waiters whose threshold was crossed are awake.
        let expect: Vec<u32> =
            parked.iter().filter(|(th, _)| *th <= value).map(|(_, w)| *w).collect();
        let mut woken_sorted = woken.clone();
        woken_sorted.sort_unstable();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort_unstable();
        prop_assert_eq!(woken_sorted, expect_sorted);
        // Nobody woke twice.
        let mut dedup = woken.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), woken.len());
    }

    #[test]
    fn message_queue_is_fifo_with_bounded_loss(
        ops in prop::collection::vec(prop::option::of(0u32..100), 1..60),
        cap in 1usize..8,
    ) {
        // Some(v) = put, None = take. Model against a VecDeque.
        let mut q = MessageQueue::new(cap);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let ok = q.put(v).is_ok();
                    prop_assert_eq!(ok, model.len() < cap, "full exactly when model is");
                    if ok {
                        model.push_back(v);
                    }
                }
                None => {
                    let got = q.take().ok();
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    // ---------------- dependency analysis ---------------------------------

    #[test]
    fn forward_edges_never_make_loops_and_a_back_edge_always_does(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        use multics::deps::{DepKind, ModuleGraph};
        let mut g = ModuleGraph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_module(format!("m{i}"), "")).collect();
        // Only forward edges (higher index depends on lower): a DAG.
        let mut used = Vec::new();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a > b {
                g.depend(ids[a], ids[b], DepKind::Component, "");
                used.push((a, b));
            }
        }
        prop_assert!(g.is_loop_free());
        let layers = g.layers().expect("dag layers");
        let flat: usize = layers.iter().map(|l| l.len()).sum();
        prop_assert_eq!(flat, n, "every module appears in exactly one layer");
        // Close one used edge backwards: a loop must appear.
        if let Some((a, b)) = used.first() {
            g.depend(ids[*b], ids[*a], DepKind::Call, "back edge");
            prop_assert!(!g.is_loop_free());
        }
    }
}

// ------------------- kernel-level properties (heavier, fewer cases) ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An attacker probing an unreadable directory learns nothing:
    /// every probe yields a token, tokens are stable, and initiation of
    /// any of them is exactly `NoAccess`.
    #[test]
    fn mythical_identifiers_leak_nothing(
        names in prop::collection::vec("[a-z]{1,8}", 1..8),
        real in prop::collection::hash_set("[a-z]{1,8}", 0..4),
    ) {
        use multics::kernel::{Acl, Kernel, KernelConfig, KernelError, UserId};
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 200,
            ..KernelConfig::default()
        });
        k.register_account("owner", UserId(1), 1, Label::BOTTOM);
        k.register_account("spy", UserId(2), 2, Label::BOTTOM);
        let owner = k.login_residue("owner", 1, Label::BOTTOM).unwrap();
        let spy = k.login_residue("spy", 2, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let vault = k
            .create_entry(owner, root, "vault", Acl::owner(UserId(1)), Label::BOTTOM, true)
            .unwrap();
        for name in &real {
            k.create_entry(owner, vault, name, Acl::owner(UserId(1)), Label::BOTTOM, false)
                .unwrap();
        }
        for name in &names {
            let t1 = k.dir_search(spy, vault, name).expect("never an error for the spy");
            let t2 = k.dir_search(spy, vault, name).expect("stable");
            prop_assert_eq!(t1, t2, "repeated probes agree");
            prop_assert_eq!(
                k.initiate(spy, t1).unwrap_err(),
                KernelError::NoAccess,
                "uniform refusal whether or not '{}' exists",
                name
            );
        }
    }

    /// Quota-cell bookkeeping never drifts: after arbitrary write/flush
    /// sequences, the root cell's `used` equals the records actually
    /// mapped across all segments bound to it.
    #[test]
    fn quota_charges_match_mapped_records(
        writes in prop::collection::vec((0u32..3, 0u32..12, 0u64..100), 1..40),
        flush_every in 3usize..10,
    ) {
        use multics::kernel::{Acl, Kernel, KernelConfig, SegUid, UserId};
        let mut k = Kernel::boot(KernelConfig {
            frames: 96,
            records_per_pack: 512,
            toc_slots_per_pack: 64,
            pt_slots: 16,
            max_processes: 4,
            root_quota: 400,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let mut segnos = Vec::new();
        let mut tokens = Vec::new();
        for i in 0..3 {
            let tok = k
                .create_entry(pid, root, &format!("s{i}"), Acl::owner(UserId(1)), Label::BOTTOM, false)
                .unwrap();
            segnos.push(k.initiate(pid, tok).unwrap());
            tokens.push(tok);
        }
        for (i, (seg, page, value)) in writes.iter().enumerate() {
            let segno = segnos[*seg as usize];
            k.write_word(pid, segno, page * 1024, Word::new(*value)).unwrap();
            if i % flush_every == flush_every - 1 {
                let uid = k.uid_of_token(tokens[*seg as usize]).unwrap();
                let handle = k.segm.get(uid).unwrap().handle;
                k.pfm.flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle).unwrap();
            }
        }
        // Drain the purifier so deferred reversions settle.
        k.run_purifier(1000).unwrap();
        // Flush everything active: zero pages revert, charges settle.
        for tok in &tokens {
            let uid = k.uid_of_token(*tok).unwrap();
            if let Some(seg) = k.segm.get(uid) {
                let handle = seg.handle;
                k.pfm.flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle).unwrap();
            }
        }
        // Count mapped records over every object bound to the root cell.
        let mut mapped = 0u32;
        for pack in k.machine.disks.packs() {
            for (_, entry) in pack.entries() {
                mapped += entry.records_used();
            }
        }
        let (_, used) = k.qcm.cell_state(SegUid(1)).expect("root cell loaded");
        prop_assert_eq!(used, mapped, "cell charge equals records on disk");
    }

    /// After any sequence of creates, writes, deletes and flushes, the
    /// salvager finds the file system fully consistent — the global
    /// invariant every kernel path must preserve.
    #[test]
    fn the_salvager_always_finds_the_system_consistent(
        ops in prop::collection::vec((0u8..4, 0u32..4, 0u32..8), 1..40),
    ) {
        use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
        let mut k = Kernel::boot(KernelConfig {
            frames: 96,
            records_per_pack: 512,
            toc_slots_per_pack: 64,
            pt_slots: 16,
            max_processes: 4,
            root_quota: 400,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let mut live: Vec<(String, multics::kernel::ObjToken, Option<u32>)> = Vec::new();
        for (op, slot, page) in ops {
            match op {
                // Create a segment (if the name is free).
                0 => {
                    let name = format!("s{slot}");
                    if !live.iter().any(|(n, _, _)| *n == name) {
                        if let Ok(tok) = k.create_entry(
                            pid, root, &name, Acl::owner(UserId(1)), Label::BOTTOM, false,
                        ) {
                            live.push((name, tok, None));
                        }
                    }
                }
                // Write a page of some live segment.
                1 => {
                    let n = live.len().max(1);
                    if let Some((_, tok, segno)) = live.get_mut(slot as usize % n) {
                        let s = match segno {
                            Some(s) => *s,
                            None => {
                                let s = k.initiate(pid, *tok).unwrap();
                                *segno = Some(s);
                                s
                            }
                        };
                        let _ = k.write_word(pid, s, page * 1024, Word::new(u64::from(page) + 1));
                    }
                }
                // Delete one.
                2 => {
                    if !live.is_empty() {
                        let (name, _, segno) = live.remove(slot as usize % live.len());
                        if let Some(s) = segno {
                            let _ = k.terminate(pid, s);
                        }
                        k.delete_entry(pid, root, &name).unwrap();
                    }
                }
                // Flush + purify.
                _ => {
                    for (_, tok, _) in &live {
                        if let Some(uid) = k.uid_of_token(*tok) {
                            if let Some(seg) = k.segm.get(uid) {
                                let h = seg.handle;
                                k.pfm
                                    .flush(&mut k.machine, &mut k.drm, &mut k.qcm, h)
                                    .unwrap();
                            }
                        }
                    }
                    k.run_purifier(100).unwrap();
                }
            }
        }
        let report = k.salvage(false).unwrap();
        prop_assert!(report.clean(), "salvager found: {:?}", report.problems);
    }

    /// Data written through the kernel survives arbitrary flush/fault
    /// storms byte-for-byte.
    #[test]
    fn paging_storms_preserve_contents(
        writes in prop::collection::vec((0u32..16, 0u64..1000), 1..50),
    ) {
        use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
        let mut k = Kernel::boot(KernelConfig {
            frames: 64, // Small: pressure guaranteed.
            records_per_pack: 512,
            toc_slots_per_pack: 64,
            pt_slots: 8,
            max_processes: 3,
            root_quota: 300,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let tok = k
            .create_entry(pid, root, "storm", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, tok).unwrap();
        let mut model = std::collections::HashMap::new();
        for (page, value) in &writes {
            let wordno = page * 1024;
            k.write_word(pid, segno, wordno, Word::new(*value + 1)).unwrap();
            model.insert(wordno, *value + 1);
        }
        for (wordno, value) in model {
            prop_assert_eq!(k.read_word(pid, segno, wordno).unwrap(), Word::new(value));
        }
    }
}
