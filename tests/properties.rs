//! Property-based tests on the core invariants.
//!
//! The build environment carries no property-testing crate, so each
//! property is driven by a deterministic seeded case generator: the same
//! invariants, checked over the same breadth of random inputs, with the
//! stream fixed by [`SplitMix64`] so every run sees identical cases.
//! Shrunk counter-examples found historically are pinned as named tests
//! (see `quota_regression_single_zero_write`).

use multics::aim::{CompartmentSet, Label, Level};
use multics::hw::cpu::{Ptw, Sdw};
use multics::hw::meter::Subsystem;
use multics::hw::{AbsAddr, FrameNo, SplitMix64, Word};
use multics::sync::{EventTable, MessageQueue, WaiterId};

const LIGHT_CASES: u64 = 128;
const HEAVY_CASES: u64 = 12;

fn arb_label(rng: &mut SplitMix64) -> Label {
    Label::new(
        Level(rng.below(4) as u8),
        CompartmentSet::from_bits(rng.below(16)),
    )
}

fn arb_name(rng: &mut SplitMix64) -> String {
    let len = rng.range_usize(1, 9);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

// ---------------- AIM: the label lattice ---------------------------

#[test]
fn dominance_is_a_partial_order() {
    let mut rng = SplitMix64::new(0xA1);
    for _ in 0..LIGHT_CASES {
        let (a, b, c) = (
            arb_label(&mut rng),
            arb_label(&mut rng),
            arb_label(&mut rng),
        );
        assert!(a.dominates(a), "reflexive");
        if a.dominates(b) && b.dominates(a) {
            assert_eq!(a, b, "antisymmetric");
        }
        if a.dominates(b) && b.dominates(c) {
            assert!(a.dominates(c), "transitive");
        }
    }
}

#[test]
fn join_and_meet_are_bounds() {
    let mut rng = SplitMix64::new(0xA2);
    for _ in 0..LIGHT_CASES {
        let (a, b) = (arb_label(&mut rng), arb_label(&mut rng));
        let j = a.join(b);
        assert!(j.dominates(a) && j.dominates(b));
        let m = a.meet(b);
        assert!(a.dominates(m) && b.dominates(m));
        // Absorption.
        assert_eq!(a.join(a.meet(b)), a);
        assert_eq!(a.meet(a.join(b)), a);
    }
}

#[test]
fn no_read_up_no_write_down_are_duals() {
    use multics::aim::{AccessKind, ReferenceMonitor};
    let mut rng = SplitMix64::new(0xA3);
    for _ in 0..LIGHT_CASES {
        let (s, o) = (arb_label(&mut rng), arb_label(&mut rng));
        let read = ReferenceMonitor::decide(s, o, AccessKind::Read).granted();
        let write = ReferenceMonitor::decide(o, s, AccessKind::Write).granted();
        assert_eq!(read, write, "subject reading down = object written up");
    }
}

// ---------------- hardware word / descriptor codecs -----------------

#[test]
fn word_fields_round_trip() {
    let mut rng = SplitMix64::new(0xB1);
    for _ in 0..LIGHT_CASES {
        let raw = rng.below(1 << 36);
        let lo = rng.range_u32(0, 30);
        let width = rng.range_u32(1, 6);
        let w = Word::new(raw);
        let v = w.field(lo, width);
        assert_eq!(w.with_field(lo, width, v), w);
    }
}

#[test]
fn sdw_codec_round_trips() {
    let mut rng = SplitMix64::new(0xB2);
    for _ in 0..LIGHT_CASES {
        let bits = rng.below(32) as u8;
        let sdw = Sdw {
            page_table: AbsAddr(rng.below(1 << 22)),
            bound_pages: rng.range_u32(0, 512),
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            execute: bits & 4 != 0,
            present: bits & 8 != 0,
            software: bits & 16 != 0,
        };
        assert_eq!(Sdw::decode(sdw.encode()), sdw);
    }
}

#[test]
fn ptw_codec_round_trips() {
    let mut rng = SplitMix64::new(0xB3);
    for _ in 0..LIGHT_CASES {
        let bits = rng.below(64) as u8;
        let ptw = Ptw {
            frame: FrameNo(rng.range_u32(0, 1 << 13)),
            quota_trap: bits & 1 != 0,
            locked: bits & 2 != 0,
            used: bits & 4 != 0,
            modified: bits & 8 != 0,
            present: bits & 16 != 0,
            wired: bits & 32 != 0,
        };
        assert_eq!(Ptw::decode(ptw.encode()), ptw);
    }
}

// ---------------- eventcounts ----------------------------------------

#[test]
fn eventcount_wakeups_are_exact() {
    let mut rng = SplitMix64::new(0xC1);
    for _ in 0..LIGHT_CASES {
        let thresholds: Vec<u64> = (0..rng.range_usize(1, 10))
            .map(|_| rng.range_u64(1, 12))
            .collect();
        let advances = rng.range_usize(1, 16);
        let mut t = EventTable::new();
        let ec = t.create();
        let mut parked: Vec<(u64, u32)> = Vec::new();
        for (i, th) in thresholds.iter().enumerate() {
            if !t.await_value(ec, *th, WaiterId(i as u32)) {
                parked.push((*th, i as u32));
            }
        }
        let mut woken: Vec<u32> = Vec::new();
        for _ in 0..advances {
            woken.extend(t.advance(ec).into_iter().map(|w| w.0));
        }
        let value = t.read(ec);
        assert_eq!(value, advances as u64);
        // Exactly the waiters whose threshold was crossed are awake.
        let expect: Vec<u32> = parked
            .iter()
            .filter(|(th, _)| *th <= value)
            .map(|(_, w)| *w)
            .collect();
        let mut woken_sorted = woken.clone();
        woken_sorted.sort_unstable();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort_unstable();
        assert_eq!(woken_sorted, expect_sorted);
        // Nobody woke twice.
        let mut dedup = woken.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), woken.len());
    }
}

#[test]
fn message_queue_is_fifo_with_bounded_loss() {
    let mut rng = SplitMix64::new(0xC2);
    for _ in 0..LIGHT_CASES {
        // Some(v) = put, None = take. Model against a VecDeque.
        let cap = rng.range_usize(1, 8);
        let ops: Vec<Option<u32>> = (0..rng.range_usize(1, 60))
            .map(|_| {
                if rng.chance(1, 2) {
                    Some(rng.range_u32(0, 100))
                } else {
                    None
                }
            })
            .collect();
        let mut q = MessageQueue::new(cap);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let ok = q.put(v).is_ok();
                    assert_eq!(ok, model.len() < cap, "full exactly when model is");
                    if ok {
                        model.push_back(v);
                    }
                }
                None => {
                    let got = q.take().ok();
                    assert_eq!(got, model.pop_front());
                }
            }
            assert_eq!(q.len(), model.len());
        }
    }
}

// ---------------- dependency analysis ---------------------------------

#[test]
fn forward_edges_never_make_loops_and_a_back_edge_always_does() {
    use multics::deps::{DepKind, ModuleGraph};
    let mut rng = SplitMix64::new(0xD1);
    for _ in 0..LIGHT_CASES {
        let n = rng.range_usize(2, 12);
        let mut g = ModuleGraph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_module(format!("m{i}"), "")).collect();
        // Only forward edges (higher index depends on lower): a DAG.
        let mut used = Vec::new();
        for _ in 0..rng.range_usize(0, 30) {
            let (a, b) = (rng.range_usize(0, n), rng.range_usize(0, n));
            if a > b {
                g.depend(ids[a], ids[b], DepKind::Component, "");
                used.push((a, b));
            }
        }
        assert!(g.is_loop_free());
        let layers = g.layers().expect("dag layers");
        let flat: usize = layers.iter().map(|l| l.len()).sum();
        assert_eq!(flat, n, "every module appears in exactly one layer");
        // Close one used edge backwards: a loop must appear.
        if let Some((a, b)) = used.first() {
            g.depend(ids[*b], ids[*a], DepKind::Call, "back edge");
            assert!(!g.is_loop_free());
        }
    }
}

// ------------------- kernel-level properties (heavier, fewer cases) ----

/// An attacker probing an unreadable directory learns nothing: every
/// probe yields a token, tokens are stable, and initiation of any of
/// them is exactly `NoAccess`.
#[test]
fn mythical_identifiers_leak_nothing() {
    use multics::kernel::{Acl, Kernel, KernelConfig, KernelError, UserId};
    let mut rng = SplitMix64::new(0xE1);
    for _ in 0..HEAVY_CASES {
        let names: Vec<String> = (0..rng.range_usize(1, 8))
            .map(|_| arb_name(&mut rng))
            .collect();
        let real: std::collections::HashSet<String> = (0..rng.range_usize(0, 4))
            .map(|_| arb_name(&mut rng))
            .collect();
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 200,
            ..KernelConfig::default()
        });
        k.register_account("owner", UserId(1), 1, Label::BOTTOM);
        k.register_account("spy", UserId(2), 2, Label::BOTTOM);
        let owner = k.login_residue("owner", 1, Label::BOTTOM).unwrap();
        let spy = k.login_residue("spy", 2, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let vault = k
            .create_entry(
                owner,
                root,
                "vault",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                true,
            )
            .unwrap();
        for name in &real {
            k.create_entry(
                owner,
                vault,
                name,
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        }
        for name in &names {
            let t1 = k
                .dir_search(spy, vault, name)
                .expect("never an error for the spy");
            let t2 = k.dir_search(spy, vault, name).expect("stable");
            assert_eq!(t1, t2, "repeated probes agree");
            assert_eq!(
                k.initiate(spy, t1).unwrap_err(),
                KernelError::NoAccess,
                "uniform refusal whether or not '{name}' exists"
            );
        }
    }
}

/// Drives the quota-conservation scenario: write the given words, flush
/// every `flush_every`-th write, purify, flush everything, then compare
/// the root cell's charge to the records actually mapped on disk.
fn check_quota_conservation(writes: &[(u32, u32, u64)], flush_every: usize) {
    use multics::kernel::{Acl, Kernel, KernelConfig, SegUid, UserId};
    let mut k = Kernel::boot(KernelConfig {
        frames: 96,
        records_per_pack: 512,
        toc_slots_per_pack: 64,
        pt_slots: 16,
        max_processes: 4,
        root_quota: 400,
        ..KernelConfig::default()
    });
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let mut segnos = Vec::new();
    let mut tokens = Vec::new();
    for i in 0..3 {
        let tok = k
            .create_entry(
                pid,
                root,
                &format!("s{i}"),
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        segnos.push(k.initiate(pid, tok).unwrap());
        tokens.push(tok);
    }
    for (i, (seg, page, value)) in writes.iter().enumerate() {
        let segno = segnos[*seg as usize];
        k.write_word(pid, segno, page * 1024, Word::new(*value))
            .unwrap();
        if i % flush_every == flush_every - 1 {
            let uid = k.uid_of_token(tokens[*seg as usize]).unwrap();
            let handle = k.segm.get(uid).unwrap().handle;
            k.pfm
                .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
                .unwrap();
        }
    }
    // Drain the purifier so deferred reversions settle.
    k.run_purifier(1000).unwrap();
    // Flush everything active: zero pages revert, charges settle.
    for tok in &tokens {
        let uid = k.uid_of_token(*tok).unwrap();
        if let Some(seg) = k.segm.get(uid) {
            let handle = seg.handle;
            k.pfm
                .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
                .unwrap();
        }
    }
    // Count mapped records over every object bound to the root cell.
    let mut mapped = 0u32;
    for pack in k.machine.disks.packs() {
        for (_, entry) in pack.entries() {
            mapped += entry.records_used();
        }
    }
    let (_, used) = k.qcm.cell_state(SegUid(1)).expect("root cell loaded");
    assert_eq!(
        used, mapped,
        "cell charge equals records on disk (writes={writes:?}, flush_every={flush_every})"
    );
}

/// The shrunk counter-example the old property runner found and checked
/// in as a regression seed: one write of value 0 to page 0 of segment 0,
/// flushing every third write. A zero-filled page is reverted (never
/// billed as a mapped record), so the quota cell must end at the same
/// count as the disk maps — historically it did not.
#[test]
fn quota_regression_single_zero_write() {
    check_quota_conservation(&[(0, 0, 0)], 3);
}

/// Quota-cell bookkeeping never drifts: after arbitrary write/flush
/// sequences, the root cell's `used` equals the records actually mapped
/// across all segments bound to it.
#[test]
fn quota_charges_match_mapped_records() {
    let mut rng = SplitMix64::new(0xE2);
    for _ in 0..HEAVY_CASES {
        let writes: Vec<(u32, u32, u64)> = (0..rng.range_usize(1, 40))
            .map(|_| (rng.range_u32(0, 3), rng.range_u32(0, 12), rng.below(100)))
            .collect();
        let flush_every = rng.range_usize(3, 10);
        check_quota_conservation(&writes, flush_every);
    }
}

/// After any sequence of creates, writes, deletes and flushes, the
/// salvager finds the file system fully consistent — the global
/// invariant every kernel path must preserve.
#[test]
fn the_salvager_always_finds_the_system_consistent() {
    use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
    let mut rng = SplitMix64::new(0xE3);
    for _ in 0..HEAVY_CASES {
        let ops: Vec<(u8, u32, u32)> = (0..rng.range_usize(1, 40))
            .map(|_| (rng.below(4) as u8, rng.range_u32(0, 4), rng.range_u32(0, 8)))
            .collect();
        let mut k = Kernel::boot(KernelConfig {
            frames: 96,
            records_per_pack: 512,
            toc_slots_per_pack: 64,
            pt_slots: 16,
            max_processes: 4,
            root_quota: 400,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let mut live: Vec<(String, multics::kernel::ObjToken, Option<u32>)> = Vec::new();
        for (op, slot, page) in ops {
            match op {
                // Create a segment (if the name is free).
                0 => {
                    let name = format!("s{slot}");
                    if !live.iter().any(|(n, _, _)| *n == name) {
                        if let Ok(tok) = k.create_entry(
                            pid,
                            root,
                            &name,
                            Acl::owner(UserId(1)),
                            Label::BOTTOM,
                            false,
                        ) {
                            live.push((name, tok, None));
                        }
                    }
                }
                // Write a page of some live segment.
                1 => {
                    let n = live.len().max(1);
                    if let Some((_, tok, segno)) = live.get_mut(slot as usize % n) {
                        let s = match segno {
                            Some(s) => *s,
                            None => {
                                let s = k.initiate(pid, *tok).unwrap();
                                *segno = Some(s);
                                s
                            }
                        };
                        let _ = k.write_word(pid, s, page * 1024, Word::new(u64::from(page) + 1));
                    }
                }
                // Delete one.
                2 => {
                    if !live.is_empty() {
                        let (name, _, segno) = live.remove(slot as usize % live.len());
                        if let Some(s) = segno {
                            let _ = k.terminate(pid, s);
                        }
                        k.delete_entry(pid, root, &name).unwrap();
                    }
                }
                // Flush + purify.
                _ => {
                    for (_, tok, _) in &live {
                        if let Some(uid) = k.uid_of_token(*tok) {
                            if let Some(seg) = k.segm.get(uid) {
                                let h = seg.handle;
                                k.pfm
                                    .flush(&mut k.machine, &mut k.drm, &mut k.qcm, h)
                                    .unwrap();
                            }
                        }
                    }
                    k.run_purifier(100).unwrap();
                }
            }
        }
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "salvager found: {:?}", report.problems);
    }
}

/// Data written through the kernel survives arbitrary flush/fault storms
/// byte-for-byte.
#[test]
fn paging_storms_preserve_contents() {
    use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
    let mut rng = SplitMix64::new(0xE4);
    for _ in 0..HEAVY_CASES {
        let writes: Vec<(u32, u64)> = (0..rng.range_usize(1, 50))
            .map(|_| (rng.range_u32(0, 16), rng.below(1000)))
            .collect();
        let mut k = Kernel::boot(KernelConfig {
            frames: 64, // Small: pressure guaranteed.
            records_per_pack: 512,
            toc_slots_per_pack: 64,
            pt_slots: 8,
            max_processes: 3,
            root_quota: 300,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        let root = k.root_token();
        let tok = k
            .create_entry(
                pid,
                root,
                "storm",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        let segno = k.initiate(pid, tok).unwrap();
        let mut model = std::collections::HashMap::new();
        for (page, value) in &writes {
            let wordno = page * 1024;
            k.write_word(pid, segno, wordno, Word::new(*value + 1))
                .unwrap();
            model.insert(wordno, *value + 1);
        }
        for (wordno, value) in model {
            assert_eq!(k.read_word(pid, segno, wordno).unwrap(), Word::new(value));
        }
    }
}

// ------------------- cycle-attribution conservation --------------------

/// The mx-meter conservation property on the new design: after a real
/// kernel workload (creates, paging writes, purifier, flushes), the sum
/// of per-subsystem attributed cycles equals the clock total exactly.
#[test]
fn kernel_workload_conserves_attributed_cycles() {
    use multics::kernel::{Acl, Kernel, KernelConfig, UserId};
    let mut k = Kernel::boot(KernelConfig {
        frames: 64,
        records_per_pack: 512,
        toc_slots_per_pack: 64,
        pt_slots: 8,
        max_processes: 3,
        root_quota: 300,
        ..KernelConfig::default()
    });
    k.register_account("u", UserId(1), 1, Label::BOTTOM);
    let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
    let root = k.root_token();
    let tok = k
        .create_entry(
            pid,
            root,
            "meter",
            Acl::owner(UserId(1)),
            Label::BOTTOM,
            false,
        )
        .unwrap();
    let segno = k.initiate(pid, tok).unwrap();
    for p in 0..12u32 {
        k.write_word(pid, segno, p * 1024, Word::new(u64::from(p) + 1))
            .unwrap();
    }
    k.run_purifier(500).unwrap();
    for p in 0..12u32 {
        assert_eq!(
            k.read_word(pid, segno, p * 1024).unwrap(),
            Word::new(u64::from(p) + 1)
        );
    }
    let meter = k.machine.clock.meter();
    assert_eq!(
        meter.attributed_total(),
        k.machine.clock.now(),
        "no unattributed cycles"
    );
    assert!(
        meter.attributed_to(Subsystem::PageControl) > 0,
        "paging work was attributed to page control"
    );
    assert!(
        meter.events_recorded() > 0,
        "faults and transfers landed in the trace"
    );
}

/// The same conservation property on the legacy supervisor.
#[test]
fn legacy_workload_conserves_attributed_cycles() {
    use multics::legacy::{Acl, Supervisor, SupervisorConfig, UserId};
    let mut sup = Supervisor::boot(SupervisorConfig {
        frames: 64,
        records_per_pack: 512,
        toc_slots_per_pack: 64,
        root_quota_pages: 300,
        ..SupervisorConfig::default()
    });
    let pid = sup.create_process(UserId(1), Label::BOTTOM).unwrap();
    sup.create_segment_in(sup.root(), "meter", Acl::owner(UserId(1)), Label::BOTTOM)
        .unwrap();
    let segno = sup.initiate(pid, "meter").unwrap();
    for p in 0..12u32 {
        sup.user_write(pid, segno, p * 1024, Word::new(u64::from(p) + 1))
            .unwrap();
    }
    for p in 0..12u32 {
        assert_eq!(
            sup.user_read(pid, segno, p * 1024).unwrap(),
            Word::new(u64::from(p) + 1)
        );
    }
    let meter = sup.machine.clock.meter();
    assert_eq!(
        meter.attributed_total(),
        sup.machine.clock.now(),
        "no unattributed cycles"
    );
    assert!(
        meter.attributed_to(Subsystem::PageControl) > 0,
        "paging work was attributed to page control"
    );
}
