//! Deterministic crash and disk-fault injection.
//!
//! A [`FaultPlan`] describes, in terms of the machine's own transfer
//! counters, exactly which disk operations misbehave: the Nth write of a
//! run is torn at a word boundary (or dropped outright) and the machine
//! loses power; the k-th read of a given record fails once with
//! [`DiskError::TransientRead`]; a pack drops offline once the write
//! counter reaches a threshold. Because everything is keyed off ordinals
//! rather than wall time or randomness, a run with a given plan is
//! exactly replayable — the property the crash-matrix experiment (R1)
//! relies on to enumerate every write of a workload as a crash point.
//!
//! The plan is installed on the [`Machine`](crate::Machine); the disk
//! transfer choke points consult [`DiskFaults`] before touching a pack.

use crate::disk::{DiskError, PackId, RecordNo};
use std::collections::{HashMap, HashSet};

/// A machine-level hardware fault: the whole machine stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwFault {
    /// Power failed during the disk write with this 1-based ordinal.
    /// Core contents are lost; only the disk image survives.
    PowerFail {
        /// The global write ordinal on which power failed.
        at_write: u64,
    },
}

/// What reaches the platter on the write that loses power.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWrite {
    /// The write never reaches the platter; the record keeps its old
    /// contents.
    Dropped,
    /// The first `words` words of the new data reach the platter; the
    /// rest of the record keeps its old contents (a tear at a word
    /// boundary).
    Torn {
        /// New-data words written before power failed.
        words: usize,
    },
}

/// A deterministic fault plan, keyed entirely off transfer ordinals.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Power fails on this 1-based global write ordinal.
    pub crash_on_write: Option<(u64, CrashWrite)>,
    /// `(pack, record)` → 1-based per-record read ordinals that each
    /// fail once with [`DiskError::TransientRead`].
    pub transient_reads: HashMap<(PackId, RecordNo), Vec<u64>>,
    /// `(pack, threshold)`: the pack goes offline once the global write
    /// counter reaches `threshold`.
    pub offline_at_write: Vec<(PackId, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults; counters still advance).
    pub fn new() -> Self {
        Self::default()
    }

    /// Power fails on the `n`-th write (1-based), torn or dropped.
    #[must_use]
    pub fn crash_after_writes(mut self, n: u64, mode: CrashWrite) -> Self {
        self.crash_on_write = Some((n, mode));
        self
    }

    /// The `kth` read (1-based, per record) of `record` on `pack` fails
    /// once with [`DiskError::TransientRead`].
    #[must_use]
    pub fn transient_read(mut self, pack: PackId, record: RecordNo, kth: u64) -> Self {
        self.transient_reads
            .entry((pack, record))
            .or_default()
            .push(kth);
        self
    }

    /// `pack` goes offline once the global write counter reaches `n`.
    #[must_use]
    pub fn pack_offline_after_writes(mut self, pack: PackId, n: u64) -> Self {
        self.offline_at_write.push((pack, n));
        self
    }
}

/// The fate the plan assigns to one write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteFate {
    /// The write proceeds normally.
    Commit,
    /// Power fails on this write; the payload is torn or dropped.
    Crash(CrashWrite),
}

/// Live fault-injection state attached to a machine's disk channel.
///
/// Counters advance even with an empty plan, so a fault-free dry run
/// measures exactly the write ordinals a later crash plan will index.
#[derive(Debug, Clone, Default)]
pub struct DiskFaults {
    plan: FaultPlan,
    /// Global write attempts (1-based ordinals; the counter holds the
    /// ordinal of the most recent attempt).
    pub writes: u64,
    /// Global read attempts.
    pub reads: u64,
    per_record_reads: HashMap<(PackId, RecordNo), u64>,
    offline: HashSet<PackId>,
    halted: Option<HwFault>,
}

impl DiskFaults {
    /// Installs a plan, resetting every counter and clearing any halt.
    pub fn install(&mut self, plan: FaultPlan) {
        *self = Self {
            plan,
            ..Self::default()
        };
    }

    /// Removes the plan and clears counters, halts, and offline marks.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Arms a crash `n` writes from *now*, leaving every counter alone.
    ///
    /// [`DiskFaults::install`] resets the ordinals, so an absolute plan's
    /// crash point shifts with however much traffic preceded it. A
    /// harness that wants "the next write after this point tears" —
    /// mid-run, after an unknown amount of prior I/O — arms relative to
    /// the live write counter instead. The committed/crashed boundary is
    /// then position-independent: the same `n` means the same thing at
    /// any point in any run.
    pub fn crash_after_further_writes(&mut self, n: u64, mode: CrashWrite) {
        self.plan.crash_on_write = Some((self.writes + n, mode));
    }

    /// The halt condition, if power has failed.
    pub fn halted(&self) -> Option<HwFault> {
        self.halted
    }

    /// True if `pack` is currently offline.
    pub fn is_offline(&self, pack: PackId) -> bool {
        self.offline.contains(&pack)
    }

    /// Forces a pack on or off line, outside any plan.
    pub fn set_offline(&mut self, pack: PackId, offline: bool) {
        if offline {
            self.offline.insert(pack);
        } else {
            self.offline.remove(&pack);
        }
    }

    fn apply_offline_transitions(&mut self) {
        let writes = self.writes;
        for (pack, n) in &self.plan.offline_at_write {
            if writes >= *n {
                self.offline.insert(*pack);
            }
        }
    }

    /// Consults the plan for one write attempt against `pack`.
    pub(crate) fn note_write(&mut self, pack: PackId) -> Result<WriteFate, DiskError> {
        if let Some(HwFault::PowerFail { .. }) = self.halted {
            return Err(DiskError::PowerFail);
        }
        self.writes += 1;
        self.apply_offline_transitions();
        if self.offline.contains(&pack) {
            return Err(DiskError::PackOffline { pack });
        }
        if let Some((n, mode)) = self.plan.crash_on_write {
            if self.writes == n {
                return Ok(WriteFate::Crash(mode));
            }
        }
        Ok(WriteFate::Commit)
    }

    /// Consults the plan for one read attempt of `record` on `pack`.
    pub(crate) fn note_read(&mut self, pack: PackId, record: RecordNo) -> Result<(), DiskError> {
        if let Some(HwFault::PowerFail { .. }) = self.halted {
            return Err(DiskError::PowerFail);
        }
        if self.offline.contains(&pack) {
            return Err(DiskError::PackOffline { pack });
        }
        self.reads += 1;
        let count = self.per_record_reads.entry((pack, record)).or_insert(0);
        *count += 1;
        if let Some(ordinals) = self.plan.transient_reads.get(&(pack, record)) {
            if ordinals.contains(count) {
                return Err(DiskError::TransientRead { pack, record });
            }
        }
        Ok(())
    }

    /// Records the power failure (called by the machine when the crash
    /// write fires).
    pub(crate) fn halt(&mut self) {
        self.halted = Some(HwFault::PowerFail {
            at_write: self.writes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_counts_but_never_faults() {
        let mut f = DiskFaults::default();
        for _ in 0..5 {
            assert_eq!(f.note_write(PackId(0)), Ok(WriteFate::Commit));
            assert_eq!(f.note_read(PackId(0), RecordNo(3)), Ok(()));
        }
        assert_eq!(f.writes, 5);
        assert_eq!(f.reads, 5);
        assert!(f.halted().is_none());
    }

    #[test]
    fn crash_fires_on_the_exact_ordinal_and_halt_sticks() {
        let mut f = DiskFaults::default();
        f.install(FaultPlan::new().crash_after_writes(3, CrashWrite::Dropped));
        assert_eq!(f.note_write(PackId(0)), Ok(WriteFate::Commit));
        assert_eq!(f.note_write(PackId(1)), Ok(WriteFate::Commit));
        assert_eq!(
            f.note_write(PackId(0)),
            Ok(WriteFate::Crash(CrashWrite::Dropped))
        );
        f.halt();
        assert_eq!(f.halted(), Some(HwFault::PowerFail { at_write: 3 }));
        assert_eq!(f.note_write(PackId(0)), Err(DiskError::PowerFail));
        assert_eq!(
            f.note_read(PackId(0), RecordNo(0)),
            Err(DiskError::PowerFail)
        );
    }

    #[test]
    fn transient_read_fails_exactly_once_per_listed_ordinal() {
        let mut f = DiskFaults::default();
        f.install(FaultPlan::new().transient_read(PackId(0), RecordNo(7), 2));
        assert_eq!(f.note_read(PackId(0), RecordNo(7)), Ok(()));
        assert_eq!(
            f.note_read(PackId(0), RecordNo(7)),
            Err(DiskError::TransientRead {
                pack: PackId(0),
                record: RecordNo(7)
            })
        );
        assert_eq!(f.note_read(PackId(0), RecordNo(7)), Ok(()), "fails once");
        // Other records are untouched.
        assert_eq!(f.note_read(PackId(0), RecordNo(8)), Ok(()));
    }

    #[test]
    fn pack_goes_offline_at_the_write_threshold() {
        let mut f = DiskFaults::default();
        f.install(FaultPlan::new().pack_offline_after_writes(PackId(1), 2));
        assert_eq!(f.note_write(PackId(1)), Ok(WriteFate::Commit));
        assert_eq!(
            f.note_write(PackId(1)),
            Err(DiskError::PackOffline { pack: PackId(1) })
        );
        assert!(f.is_offline(PackId(1)));
        // Other packs keep working.
        assert_eq!(f.note_write(PackId(0)), Ok(WriteFate::Commit));
        assert_eq!(f.note_read(PackId(0), RecordNo(0)), Ok(()));
        assert_eq!(
            f.note_read(PackId(1), RecordNo(0)),
            Err(DiskError::PackOffline { pack: PackId(1) })
        );
        f.set_offline(PackId(1), false);
        assert_eq!(f.note_read(PackId(1), RecordNo(0)), Ok(()));
    }

    #[test]
    fn install_resets_counters() {
        let mut f = DiskFaults::default();
        f.note_write(PackId(0)).unwrap();
        f.install(FaultPlan::new());
        assert_eq!(f.writes, 0);
    }

    #[test]
    fn relative_arming_is_position_independent() {
        let mut f = DiskFaults::default();
        // Arbitrary prior traffic that an absolute plan would have to
        // know about in advance.
        for _ in 0..5 {
            f.note_write(PackId(0)).unwrap();
        }
        f.crash_after_further_writes(2, CrashWrite::Torn { words: 3 });
        assert_eq!(f.writes, 5, "arming leaves the counters alone");
        assert_eq!(f.note_write(PackId(0)), Ok(WriteFate::Commit));
        assert_eq!(
            f.note_write(PackId(0)),
            Ok(WriteFate::Crash(CrashWrite::Torn { words: 3 }))
        );
        f.halt();
        assert_eq!(f.halted(), Some(HwFault::PowerFail { at_write: 7 }));
    }

    #[test]
    fn relative_arming_composes_with_a_fresh_machine() {
        // n writes from "now" on a fresh channel is the same as the
        // absolute plan — the relative path is a strict generalization.
        let mut f = DiskFaults::default();
        f.crash_after_further_writes(1, CrashWrite::Dropped);
        assert_eq!(
            f.note_write(PackId(0)),
            Ok(WriteFate::Crash(CrashWrite::Dropped))
        );
    }
}
