//! The assembled machine: memory + processors + disks + clock.
//!
//! [`Machine`] is the single mutable world the supervisor implementations
//! operate on. Its methods split borrows across the component fields so a
//! processor can walk descriptor tables held in main memory while the
//! clock accumulates charges.

use crate::clock::{Clock, CostModel};
use crate::cpu::{HwFeatures, Processor, ProcessorId};
use crate::disk::{DiskError, DiskSystem, PackId, RecordNo};
use crate::fault::Fault;
use crate::faultinj::{DiskFaults, FaultPlan, HwFault, WriteFate};
use crate::mem::{AbsAddr, FrameNo, MainMemory, PAGE_WORDS};
use crate::tlb::TlbStats;
use crate::word::Word;
use crate::VirtAddr;

/// Configuration for building a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Page frames of primary memory.
    pub frames: usize,
    /// Number of real processors.
    pub cpus: u32,
    /// Number of disk packs to attach at bootload.
    pub packs: u32,
    /// Records (pages) per pack.
    pub records_per_pack: u32,
    /// Table-of-contents slots per pack.
    pub toc_slots_per_pack: u32,
    /// Hardware feature set.
    pub features: HwFeatures,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            frames: 256,
            cpus: 2,
            packs: 2,
            records_per_pack: 1024,
            toc_slots_per_pack: 256,
            features: HwFeatures::BASE_1974,
            cost: CostModel::default(),
        }
    }
}

impl MachineConfig {
    /// A configuration with the paper's proposed hardware additions on.
    pub fn kernel_proposed() -> Self {
        Self {
            features: HwFeatures::KERNEL_PROPOSED,
            ..Self::default()
        }
    }
}

/// The whole simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Primary memory.
    pub mem: MainMemory,
    /// The cycle clock.
    pub clock: Clock,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Real processors.
    pub cpus: Vec<Processor>,
    /// Attached disk packs.
    pub disks: DiskSystem,
    /// Fault-injection state on the disk channel (empty plan by default).
    pub faults: DiskFaults,
    /// Hardware feature set the machine was built with.
    pub features: HwFeatures,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let mut disks = DiskSystem::new();
        for _ in 0..config.packs {
            disks.attach(config.records_per_pack, config.toc_slots_per_pack);
        }
        Self {
            mem: MainMemory::new(config.frames),
            clock: Clock::new(),
            cost: config.cost,
            cpus: (0..config.cpus)
                .map(|i| Processor::new(ProcessorId(i), config.features))
                .collect(),
            disks,
            faults: DiskFaults::default(),
            features: config.features,
        }
    }

    /// Installs a deterministic fault plan on the disk channel, resetting
    /// the transfer ordinals the plan is keyed off.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.install(plan);
    }

    /// Removes any fault plan, halt condition, and offline marks.
    pub fn clear_fault_plan(&mut self) {
        self.faults.clear();
    }

    /// The machine-level fault that halted the machine, if any.
    pub fn hw_fault(&self) -> Option<HwFault> {
        self.faults.halted()
    }

    /// A default machine with the 1974 hardware base.
    pub fn base_1974() -> Self {
        Self::new(MachineConfig::default())
    }

    /// A default machine with the paper's proposed hardware additions.
    pub fn kernel_proposed() -> Self {
        Self::new(MachineConfig::kernel_proposed())
    }

    /// Reads one word through processor `cpu`'s address translation.
    ///
    /// # Errors
    ///
    /// Propagates any translation [`Fault`]; a processor id that names no
    /// real processor reports [`Fault::BadDescriptor`] rather than
    /// panicking.
    pub fn read(&mut self, cpu: ProcessorId, va: VirtAddr) -> Result<Word, Fault> {
        let Some(p) = self.cpus.get_mut(cpu.0 as usize) else {
            return Err(Fault::BadDescriptor { va });
        };
        p.read(&mut self.mem, &mut self.clock, &self.cost, va)
    }

    /// Writes one word through processor `cpu`'s address translation.
    ///
    /// # Errors
    ///
    /// Propagates any translation [`Fault`]; a processor id that names no
    /// real processor reports [`Fault::BadDescriptor`] rather than
    /// panicking.
    pub fn write(&mut self, cpu: ProcessorId, va: VirtAddr, value: Word) -> Result<(), Fault> {
        let Some(p) = self.cpus.get_mut(cpu.0 as usize) else {
            return Err(Fault::BadDescriptor { va });
        };
        p.write(&mut self.mem, &mut self.clock, &self.cost, va, value)
    }

    // ----- associative-memory invalidation broadcasts ---------------------
    //
    // The 6180's "clear associative memory" connects to every processor;
    // supervisor software invokes these whenever it rewrites a descriptor
    // word, addressed by the descriptor's core address (the "setfaults"
    // discipline). All are cheap no-ops when the feature is off.

    /// Flushes every processor's cached translations made from the PTW at
    /// `addr`.
    pub fn tlb_invalidate_ptw(&mut self, addr: AbsAddr) {
        for cpu in &mut self.cpus {
            cpu.tlb.invalidate_ptw(addr);
        }
    }

    /// Flushes every processor's cached translations made from the SDW at
    /// `addr`.
    pub fn tlb_invalidate_sdw(&mut self, addr: AbsAddr) {
        for cpu in &mut self.cpus {
            cpu.tlb.invalidate_sdw(addr);
        }
    }

    /// Flushes cached translations for a whole page table
    /// (`[base, base + len)`) on every processor — the flush a reused
    /// page-table slot requires.
    pub fn tlb_invalidate_ptw_range(&mut self, base: AbsAddr, len: u64) {
        for cpu in &mut self.cpus {
            cpu.tlb.invalidate_ptw_range(base, len);
        }
    }

    /// Flushes cached translations made from SDWs in `[base, base + len)`
    /// on every processor — required when a whole descriptor segment is
    /// rebuilt or its frame reused.
    pub fn tlb_invalidate_sdw_range(&mut self, base: AbsAddr, len: u64) {
        for cpu in &mut self.cpus {
            cpu.tlb.invalidate_sdw_range(base, len);
        }
    }

    /// Clears every processor's associative memory outright.
    pub fn tlb_clear(&mut self) {
        for cpu in &mut self.cpus {
            cpu.tlb.clear();
        }
    }

    /// Aggregated associative-memory tallies across all processors.
    pub fn tlb_stats(&self) -> TlbStats {
        self.cpus
            .iter()
            .fold(TlbStats::default(), |acc, cpu| acc.merge(&cpu.tlb.stats()))
    }

    /// Transfers a disk record into a core frame, charging the clock.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskError`] for a bad pack or record, or an injected
    /// fault ([`DiskError::TransientRead`], [`DiskError::PackOffline`],
    /// [`DiskError::PowerFail`]) per the installed plan.
    pub fn disk_read_into_frame(
        &mut self,
        pack: PackId,
        record: RecordNo,
        frame: FrameNo,
    ) -> Result<(), DiskError> {
        let data = self.disk_read_record(pack, record)?;
        self.mem.write_frame(frame, &data);
        Ok(())
    }

    /// Transfers a core frame onto a disk record, charging the clock.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskError`] for a bad pack or record, or an injected
    /// fault per the installed plan; [`DiskError::PowerFail`] means the
    /// machine halted on this write (torn or dropped per the plan).
    pub fn disk_write_from_frame(
        &mut self,
        pack: PackId,
        record: RecordNo,
        frame: FrameNo,
    ) -> Result<(), DiskError> {
        let mut buf = [Word::ZERO; PAGE_WORDS];
        buf.copy_from_slice(&self.mem.read_frame(frame)[..]);
        self.disk_write_record(pack, record, &buf)
    }

    /// Reads a whole record through the fault-checked channel, charging
    /// the clock (also on a transient failure — the transfer was
    /// attempted).
    ///
    /// # Errors
    ///
    /// Propagates [`DiskError`], including injected faults.
    pub fn disk_read_record(
        &mut self,
        pack: PackId,
        record: RecordNo,
    ) -> Result<crate::disk::RecordBuf, DiskError> {
        if let Err(e) = self.faults.note_read(pack, record) {
            if matches!(e, DiskError::TransientRead { .. }) {
                self.clock.charge_disk_transfer(&self.cost);
            }
            return Err(e);
        }
        let data = self.disks.pack(pack)?.read_record(record)?.clone();
        self.clock.charge_disk_transfer(&self.cost);
        Ok(data)
    }

    /// Writes a whole record through the fault-checked channel, charging
    /// the clock. On the plan's crash write, the payload is torn at a
    /// word boundary (or dropped), the machine halts, and every later
    /// disk operation reports [`DiskError::PowerFail`].
    ///
    /// # Errors
    ///
    /// Propagates [`DiskError`], including injected faults.
    pub fn disk_write_record(
        &mut self,
        pack: PackId,
        record: RecordNo,
        data: &[Word; PAGE_WORDS],
    ) -> Result<(), DiskError> {
        match self.faults.note_write(pack)? {
            WriteFate::Commit => {
                self.disks.pack_mut(pack)?.write_record(record, data)?;
                self.clock.charge_disk_transfer(&self.cost);
                Ok(())
            }
            WriteFate::Crash(mode) => {
                let words = match mode {
                    crate::faultinj::CrashWrite::Dropped => 0,
                    crate::faultinj::CrashWrite::Torn { words } => words.min(PAGE_WORDS),
                };
                if words > 0 {
                    // A tear at a word boundary: the prefix is new data,
                    // the rest keeps whatever the record held.
                    if let Ok(pk) = self.disks.pack_mut(pack) {
                        if let Ok(old) = pk.read_record(record) {
                            let mut torn = old.clone();
                            torn[..words].copy_from_slice(&data[..words]);
                            let _ = pk.write_record(record, &torn);
                            self.clock.charge_disk_transfer(&self.cost);
                        }
                    }
                }
                self.faults.halt();
                Err(DiskError::PowerFail)
            }
        }
    }

    /// Number of real processors.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Posts a wakeup to `cpu`'s wakeup-waiting switch: a notification
    /// arriving between a locked-descriptor exception and the wait
    /// primitive must land on the *faulting processor*, not processor 0.
    /// Returns false if `cpu` names no real processor.
    pub fn post_wakeup(&mut self, cpu: ProcessorId) -> bool {
        match self.cpus.get_mut(cpu.0 as usize) {
            Some(p) => {
                p.wakeup_waiting = true;
                true
            }
            None => false,
        }
    }

    /// Per-processor retired user-operation tallies, indexed by
    /// [`ProcessorId`].
    pub fn ops_retired(&self) -> Vec<u64> {
        self.cpus.iter().map(|c| c.ops_retired).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{DescBase, Ptw, Sdw};
    use crate::mem::AbsAddr;

    #[test]
    fn default_machine_shape() {
        let m = Machine::base_1974();
        assert_eq!(m.cpu_count(), 2);
        assert_eq!(m.disks.pack_count(), 2);
        assert_eq!(m.mem.frames(), 256);
        assert!(!m.features.descriptor_lock);
        let k = Machine::kernel_proposed();
        assert!(k.features.descriptor_lock && k.features.dual_dbr);
    }

    #[test]
    fn machine_read_write_through_translation() {
        let mut m = Machine::base_1974();
        // Descriptor table at frame 0, page table at frame 1, page at 2.
        let pt = FrameNo(1).base();
        m.mem.write(
            pt,
            Ptw {
                frame: FrameNo(2),
                present: true,
                ..Ptw::default()
            }
            .encode(),
        );
        let sdw = Sdw {
            page_table: pt,
            bound_pages: 1,
            read: true,
            write: true,
            execute: false,
            present: true,
            software: false,
        };
        m.mem.write(AbsAddr(0), sdw.encode());
        m.cpus[0].dbr_user = Some(DescBase {
            base: AbsAddr(0),
            len: 1,
        });
        let va = VirtAddr::new(0, 9);
        m.write(ProcessorId(0), va, Word::new(3)).unwrap();
        assert_eq!(m.read(ProcessorId(0), va).unwrap(), Word::new(3));
        assert!(m.clock.now() > 0);
    }

    #[test]
    fn bad_processor_id_is_a_fault_not_a_panic() {
        let mut m = Machine::base_1974();
        let va = VirtAddr::new(0, 0);
        assert!(matches!(
            m.read(ProcessorId(99), va),
            Err(Fault::BadDescriptor { .. })
        ));
        assert!(matches!(
            m.write(ProcessorId(99), va, Word::new(1)),
            Err(Fault::BadDescriptor { .. })
        ));
    }

    #[test]
    fn tlb_invalidation_broadcasts_to_every_processor() {
        let mut m = Machine::kernel_proposed();
        let pt = FrameNo(1).base();
        m.mem.write(
            pt,
            Ptw {
                frame: FrameNo(2),
                present: true,
                ..Ptw::default()
            }
            .encode(),
        );
        let sdw = Sdw {
            page_table: pt,
            bound_pages: 1,
            read: true,
            write: true,
            execute: false,
            present: true,
            software: false,
        };
        m.mem.write(AbsAddr(0), sdw.encode());
        for cpu in &mut m.cpus {
            cpu.dbr_user = Some(DescBase {
                base: AbsAddr(0),
                len: 1,
            });
            cpu.system_segno_limit = 0;
        }
        let va = VirtAddr::new(0, 3);
        m.read(ProcessorId(0), va).unwrap();
        m.read(ProcessorId(1), va).unwrap();
        assert_eq!(m.tlb_stats().fills, 2);
        m.tlb_invalidate_ptw(pt);
        assert_eq!(m.tlb_stats().invalidations, 2, "both processors flushed");
        assert!(m.cpus.iter().all(|c| c.tlb.resident() == 0));
    }

    #[test]
    fn crash_write_tears_at_a_word_boundary_and_halts() {
        use crate::faultinj::{CrashWrite, FaultPlan, HwFault};
        let mut m = Machine::base_1974();
        let pack = PackId(0);
        let rec = m.disks.pack_mut(pack).unwrap().allocate_record().unwrap();
        // Seed the record with old data.
        let old = [Word::new(0o111); PAGE_WORDS];
        m.disks
            .pack_mut(pack)
            .unwrap()
            .write_record(rec, &old)
            .unwrap();
        m.install_fault_plan(FaultPlan::new().crash_after_writes(1, CrashWrite::Torn { words: 4 }));
        let new = [Word::new(0o222); PAGE_WORDS];
        assert_eq!(
            m.disk_write_record(pack, rec, &new),
            Err(DiskError::PowerFail)
        );
        assert_eq!(m.hw_fault(), Some(HwFault::PowerFail { at_write: 1 }));
        // Subsequent operations fail while halted; the image is frozen.
        assert_eq!(
            m.disk_read_into_frame(pack, rec, FrameNo(5)),
            Err(DiskError::PowerFail)
        );
        let surviving = m.disks.pack(pack).unwrap().read_record(rec).unwrap();
        assert_eq!(surviving[3], Word::new(0o222), "prefix reached the platter");
        assert_eq!(surviving[4], Word::new(0o111), "suffix kept old contents");
        // A dropped crash write leaves the record untouched.
        let mut m2 = Machine::base_1974();
        let rec2 = m2.disks.pack_mut(pack).unwrap().allocate_record().unwrap();
        m2.disks
            .pack_mut(pack)
            .unwrap()
            .write_record(rec2, &old)
            .unwrap();
        m2.install_fault_plan(FaultPlan::new().crash_after_writes(1, CrashWrite::Dropped));
        assert_eq!(
            m2.disk_write_record(pack, rec2, &new),
            Err(DiskError::PowerFail)
        );
        assert_eq!(
            m2.disks.pack(pack).unwrap().read_record(rec2).unwrap()[0],
            Word::new(0o111)
        );
    }

    #[test]
    fn transient_read_fails_once_then_recovers() {
        use crate::faultinj::FaultPlan;
        let mut m = Machine::base_1974();
        let pack = PackId(0);
        let rec = m.disks.pack_mut(pack).unwrap().allocate_record().unwrap();
        m.mem.write(FrameNo(5).base(), Word::new(0o42));
        m.disk_write_from_frame(pack, rec, FrameNo(5)).unwrap();
        m.install_fault_plan(FaultPlan::new().transient_read(pack, rec, 1));
        assert_eq!(
            m.disk_read_into_frame(pack, rec, FrameNo(6)),
            Err(DiskError::TransientRead { pack, record: rec })
        );
        m.disk_read_into_frame(pack, rec, FrameNo(6)).unwrap();
        assert_eq!(m.mem.read(FrameNo(6).base()), Word::new(0o42));
        assert!(m.hw_fault().is_none());
    }

    #[test]
    fn disk_frame_round_trip_charges_clock() {
        let mut m = Machine::base_1974();
        let pack = PackId(0);
        let rec = m.disks.pack_mut(pack).unwrap().allocate_record().unwrap();
        m.mem.write(FrameNo(5).base().add(3), Word::new(0o777));
        let before = m.clock.disk_transfers();
        m.disk_write_from_frame(pack, rec, FrameNo(5)).unwrap();
        m.disk_read_into_frame(pack, rec, FrameNo(6)).unwrap();
        assert_eq!(m.mem.read(FrameNo(6).base().add(3)), Word::new(0o777));
        assert_eq!(m.clock.disk_transfers(), before + 2);
    }
}
