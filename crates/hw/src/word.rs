//! The 36-bit machine word.
//!
//! Multics ran on 36-bit hardware; every quantity the simulated machine
//! stores — data, descriptor words, page-table words — is a [`Word`].
//! We carry words in a `u64` and mask to 36 bits on construction so that
//! arithmetic overflow behaves like the real machine's truncation.

/// Mask selecting the low 36 bits of a `u64`.
pub const WORD_MASK: u64 = (1 << 36) - 1;

/// A 36-bit machine word.
///
/// The inner value is always `<= WORD_MASK`; constructors truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word(u64);

impl Word {
    /// The all-zeros word.
    pub const ZERO: Word = Word(0);

    /// Builds a word, truncating the argument to 36 bits.
    pub const fn new(raw: u64) -> Self {
        Word(raw & WORD_MASK)
    }

    /// The raw 36-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True if every bit of the word is zero.
    ///
    /// The Multics page-removal algorithm scans page contents for all-zero
    /// words to reclaim storage charges; this is the per-word predicate.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Wrapping 36-bit addition.
    pub const fn wrapping_add(self, other: Word) -> Word {
        Word((self.0 + other.0) & WORD_MASK)
    }

    /// Returns the word with the given bit (0 = least significant) set.
    pub const fn with_bit(self, bit: u32) -> Word {
        Word((self.0 | (1 << bit)) & WORD_MASK)
    }

    /// True if the given bit is set.
    pub const fn bit(self, bit: u32) -> bool {
        (self.0 >> bit) & 1 == 1
    }

    /// Extracts a bit field: `width` bits starting at `lo`.
    pub const fn field(self, lo: u32, width: u32) -> u64 {
        (self.0 >> lo) & ((1 << width) - 1)
    }

    /// Returns a copy with `width` bits starting at `lo` replaced by `value`.
    pub const fn with_field(self, lo: u32, width: u32, value: u64) -> Word {
        let mask = ((1u64 << width) - 1) << lo;
        Word(((self.0 & !mask) | ((value << lo) & mask)) & WORD_MASK)
    }
}

impl From<u64> for Word {
    fn from(raw: u64) -> Self {
        Word::new(raw)
    }
}

impl From<Word> for u64 {
    fn from(w: Word) -> Self {
        w.raw()
    }
}

impl core::fmt::Display for Word {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Octal is the native display radix for 36-bit machines.
        write!(f, "{:012o}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_truncates_to_36_bits() {
        let w = Word::new(u64::MAX);
        assert_eq!(w.raw(), WORD_MASK);
    }

    #[test]
    fn zero_detection() {
        assert!(Word::ZERO.is_zero());
        assert!(!Word::new(1).is_zero());
    }

    #[test]
    fn wrapping_add_wraps_at_36_bits() {
        let w = Word::new(WORD_MASK).wrapping_add(Word::new(1));
        assert!(w.is_zero());
    }

    #[test]
    fn bit_and_field_accessors_round_trip() {
        let w = Word::ZERO.with_field(10, 8, 0xAB).with_bit(35);
        assert_eq!(w.field(10, 8), 0xAB);
        assert!(w.bit(35));
        assert!(!w.bit(34));
        let cleared = w.with_field(10, 8, 0);
        assert_eq!(cleared.field(10, 8), 0);
        assert!(cleared.bit(35));
    }

    #[test]
    fn display_is_twelve_octal_digits() {
        assert_eq!(format!("{}", Word::new(0o777)), "000000000777");
    }
}
