//! The associative memory: a translation cache for the descriptor walk.
//!
//! The real Honeywell 6180 hid the cost of the two-level descriptor walk
//! behind small SDW/PTW *associative memories*; without them every
//! reference would pay two extra core cycles for the descriptor fetches.
//! This module models that hardware as a set-associative cache keyed by
//! process identity (the descriptor-segment base in force), segment
//! number, and page number, holding the resolved core frame plus the
//! access bits needed to re-check a hit.
//!
//! Only *successful* translations are cached, so a resident entry by
//! construction describes a present, unlocked, non-quota-trapped page;
//! any supervisor mutation that could change that — eviction, descriptor
//! cut, lock- or quota-trap-bit set, page-table-slot reuse — must flush
//! the affected entries (Multics' "setfaults" discipline). The
//! invalidation entry points here are addressed by the *descriptor's*
//! core address, which is what supervisor software knows when it rewrites
//! a table word.
//!
//! A hit costs zero descriptor fetches. To keep caching invisible to
//! software (byte-identical core images with the feature on or off), a
//! write hit whose entry has not yet observed the modified bit performs
//! the same read-modify-write of the PTW that the walk would have done,
//! charged as a [`crate::clock::CostModel::ptw_update`].

use crate::cpu::AccessMode;
use crate::mem::{AbsAddr, FrameNo};
use crate::meter::CounterSet;

/// Number of sets in the associative memory.
pub const TLB_SETS: usize = 64;
/// Associativity (entries per set).
pub const TLB_WAYS: usize = 4;

/// One resident translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Address-space identity: the descriptor-segment base the
    /// translation was made under.
    pub asid: AbsAddr,
    /// Segment number within that address space.
    pub segno: u32,
    /// Page number within the segment.
    pub pageno: u32,
    /// Core address of the SDW the walk read.
    pub sdw_addr: AbsAddr,
    /// Core address of the PTW the walk read.
    pub ptw_addr: AbsAddr,
    /// Resolved core frame.
    pub frame: FrameNo,
    /// SDW read permission at fill time.
    pub read: bool,
    /// SDW write permission at fill time.
    pub write: bool,
    /// SDW execute permission at fill time.
    pub execute: bool,
    /// Whether the cached PTW has the modified bit set; a write hit with
    /// this clear must still set the bit in core.
    pub modified: bool,
    /// LRU stamp (monotone fill/touch tick); [`Tlb::fill`] overwrites it.
    pub(crate) lru: u64,
}

impl TlbEntry {
    /// True if the cached access bits permit `mode`.
    pub fn permits(&self, mode: AccessMode) -> bool {
        match mode {
            AccessMode::Read => self.read,
            AccessMode::Write => self.write,
            AccessMode::Execute => self.execute,
        }
    }
}

/// Hit/miss/flush tallies, for the meter and the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups attempted (hits + misses).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the descriptor walk.
    pub misses: u64,
    /// Entries installed after a successful walk.
    pub fills: u64,
    /// Entries removed by selective invalidation or a full clear.
    pub invalidations: u64,
}

impl TlbStats {
    /// Component-wise sum (for aggregating across processors).
    pub fn merge(&self, other: &TlbStats) -> TlbStats {
        TlbStats {
            lookups: self.lookups + other.lookups,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            fills: self.fills + other.fills,
            invalidations: self.invalidations + other.invalidations,
        }
    }

    /// The tallies as a named counter set (threaded into trace reports).
    pub fn counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        c.set("tlb_lookups", self.lookups);
        c.set("tlb_hits", self.hits);
        c.set("tlb_misses", self.misses);
        c.set("tlb_fills", self.fills);
        c.set("tlb_invalidations", self.invalidations);
        c
    }
}

/// A per-processor set-associative translation cache.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<[Option<TlbEntry>; TLB_WAYS]>,
    tick: u64,
    stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// An empty associative memory.
    pub fn new() -> Self {
        Self {
            sets: vec![[None; TLB_WAYS]; TLB_SETS],
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Deterministic set index for a translation key.
    fn set_index(asid: AbsAddr, segno: u32, pageno: u32) -> usize {
        // A small multiplicative mix; only determinism and spread matter.
        let h = asid
            .0
            .wrapping_mul(0o777_777)
            .wrapping_add(u64::from(segno).wrapping_mul(131))
            .wrapping_add(u64::from(pageno).wrapping_mul(31));
        (h % TLB_SETS as u64) as usize
    }

    /// Looks up a translation, updating the LRU stamp and the hit/miss
    /// tallies. Returns a mutable reference so a write hit can record
    /// the modified bit.
    pub fn lookup(&mut self, asid: AbsAddr, segno: u32, pageno: u32) -> Option<&mut TlbEntry> {
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[Self::set_index(asid, segno, pageno)];
        let hit = set
            .iter_mut()
            .flatten()
            .find(|e| e.asid == asid && e.segno == segno && e.pageno == pageno);
        match hit {
            Some(entry) => {
                self.stats.hits += 1;
                entry.lru = tick;
                Some(entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs a translation after a successful walk, replacing the
    /// least recently used way of its set (or an existing entry for the
    /// same key).
    pub fn fill(&mut self, mut entry: TlbEntry) {
        self.tick += 1;
        entry.lru = self.tick;
        self.stats.fills += 1;
        let set = &mut self.sets[Self::set_index(entry.asid, entry.segno, entry.pageno)];
        // Replace an existing mapping for the key, then an empty way,
        // then the LRU way.
        if let Some(slot) = set.iter_mut().find(|s| {
            s.is_some_and(|e| {
                e.asid == entry.asid && e.segno == entry.segno && e.pageno == entry.pageno
            })
        }) {
            *slot = Some(entry);
            return;
        }
        if let Some(slot) = set.iter_mut().find(|s| s.is_none()) {
            *slot = Some(entry);
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|s| s.map_or(0, |e| e.lru))
            .expect("TLB_WAYS > 0");
        *victim = Some(entry);
    }

    /// Drops every entry cached from the PTW at `addr`.
    pub fn invalidate_ptw(&mut self, addr: AbsAddr) {
        self.retain(|e| e.ptw_addr != addr);
    }

    /// Drops every entry cached from the SDW at `addr`.
    pub fn invalidate_sdw(&mut self, addr: AbsAddr) {
        self.retain(|e| e.sdw_addr != addr);
    }

    /// Drops every entry whose PTW lies in `[base, base + len)` — the
    /// page-table-slot-reuse flush.
    pub fn invalidate_ptw_range(&mut self, base: AbsAddr, len: u64) {
        self.retain(|e| e.ptw_addr.0 < base.0 || e.ptw_addr.0 >= base.0 + len);
    }

    /// Drops every entry whose SDW lies in `[base, base + len)` — the
    /// flush a rebuilt or reused descriptor segment requires.
    pub fn invalidate_sdw_range(&mut self, base: AbsAddr, len: u64) {
        self.retain(|e| e.sdw_addr.0 < base.0 || e.sdw_addr.0 >= base.0 + len);
    }

    /// Drops everything (the 6180's "clear associative memory").
    pub fn clear(&mut self) {
        self.retain(|_| false);
    }

    fn retain(&mut self, keep: impl Fn(&TlbEntry) -> bool) {
        let mut dropped = 0u64;
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if slot.as_ref().is_some_and(|e| !keep(e)) {
                    *slot = None;
                    dropped += 1;
                }
            }
        }
        self.stats.invalidations += dropped;
    }

    /// The tallies so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of resident entries (for tests).
    pub fn resident(&self) -> usize {
        self.sets.iter().flatten().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(asid: u64, segno: u32, pageno: u32) -> TlbEntry {
        TlbEntry {
            asid: AbsAddr(asid),
            segno,
            pageno,
            sdw_addr: AbsAddr(asid + u64::from(segno)),
            ptw_addr: AbsAddr(1000 + u64::from(segno) * 256 + u64::from(pageno)),
            frame: FrameNo(7),
            read: true,
            write: true,
            execute: false,
            modified: false,
            lru: 0,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(AbsAddr(5), 1, 2).is_none());
        tlb.fill(entry(5, 1, 2));
        let hit = tlb.lookup(AbsAddr(5), 1, 2).expect("hit");
        assert_eq!(hit.frame, FrameNo(7));
        let s = tlb.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.fills), (2, 1, 1, 1));
    }

    #[test]
    fn distinct_asids_do_not_collide() {
        let mut tlb = Tlb::new();
        tlb.fill(entry(5, 1, 2));
        assert!(tlb.lookup(AbsAddr(6), 1, 2).is_none());
        assert!(tlb.lookup(AbsAddr(5), 1, 2).is_some());
    }

    #[test]
    fn invalidate_by_ptw_sdw_and_range() {
        let mut tlb = Tlb::new();
        tlb.fill(entry(5, 1, 2));
        tlb.fill(entry(5, 1, 3));
        tlb.fill(entry(5, 2, 0));
        tlb.invalidate_ptw(entry(5, 1, 2).ptw_addr);
        assert!(tlb.lookup(AbsAddr(5), 1, 2).is_none());
        assert!(tlb.lookup(AbsAddr(5), 1, 3).is_some());
        tlb.invalidate_sdw(entry(5, 2, 0).sdw_addr);
        assert!(tlb.lookup(AbsAddr(5), 2, 0).is_none());
        // Range flush covering segment 1's whole page table.
        tlb.invalidate_ptw_range(AbsAddr(1000 + 256), 256);
        assert!(tlb.lookup(AbsAddr(5), 1, 3).is_none());
        assert_eq!(tlb.resident(), 0);
        assert_eq!(tlb.stats().invalidations, 3);
    }

    #[test]
    fn clear_empties_everything() {
        let mut tlb = Tlb::new();
        for p in 0..100 {
            tlb.fill(entry(5, 1, p));
        }
        assert!(tlb.resident() > 0);
        tlb.clear();
        assert_eq!(tlb.resident(), 0);
    }

    #[test]
    fn lru_way_is_replaced_within_a_full_set() {
        let mut tlb = Tlb::new();
        // Same (asid, segno) with panos spaced exactly TLB_SETS apart
        // land in the same set.
        let step = TLB_SETS as u32;
        let pages: Vec<u32> = (0..=TLB_WAYS as u32).map(|i| i * step).collect();
        for &p in pages.iter().take(TLB_WAYS) {
            tlb.fill(entry(5, 1, p));
        }
        // Touch page 0 so it is the most recently used.
        assert!(tlb.lookup(AbsAddr(5), 1, 0).is_some());
        // One more fill in the same set evicts the LRU way (step).
        tlb.fill(entry(5, 1, pages[TLB_WAYS]));
        assert!(tlb.lookup(AbsAddr(5), 1, 0).is_some(), "MRU survived");
        assert!(tlb.lookup(AbsAddr(5), 1, step).is_none(), "LRU evicted");
    }

    #[test]
    fn counters_round_trip_through_counter_set() {
        let mut tlb = Tlb::new();
        tlb.fill(entry(5, 1, 2));
        tlb.lookup(AbsAddr(5), 1, 2);
        let c = tlb.stats().counters();
        assert_eq!(c.get("tlb_hits"), Some(1));
        assert_eq!(c.get("tlb_fills"), Some(1));
        assert_eq!(
            c.get("tlb_lookups").unwrap(),
            c.get("tlb_hits").unwrap() + c.get("tlb_misses").unwrap()
        );
    }
}
