//! A small deterministic pseudo-random number generator.
//!
//! The workload generators and property tests need reproducible random
//! streams; the build environment carries no external crates, so this is
//! a self-contained SplitMix64 (Steele, Lea & Flood, 2014) — the same
//! generator Java's `SplittableRandom` and many simulators use for
//! seeding. It is *not* cryptographic; it exists so that every workload
//! and shrunk test case is byte-identical across runs and machines.

/// A SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use mx_hw::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, which is irrelevant at the bounds the workloads use.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `lo..hi` (half-open; `hi` must exceed `lo`).
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `u32` in `lo..hi` (half-open).
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `usize` in `lo..hi` (half-open).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A bernoulli draw: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.range_u64(5, 5);
    }
}
