//! Simulated hardware substrate for the Multics kernel design project.
//!
//! This crate plays the role of the Honeywell 6180 in the paper: a 36-bit
//! word machine with segmented, paged addressing driven by descriptor words
//! that live *in* simulated main memory, a fault model, demountable disk
//! packs with per-pack tables of contents, and a deterministic cycle clock
//! used for cost accounting.
//!
//! The paper proposes several small hardware additions that its new kernel
//! design depends on; all of them are implemented here behind the
//! [`HwFeatures`] switches so the legacy supervisor can run without them:
//!
//! * a second descriptor base register giving every processor a private
//!   *system* address space for low-numbered segments (`dual_dbr`);
//! * a lock bit in page descriptors, set atomically when a missing-page
//!   fault is taken, plus a *locked page descriptor* exception
//!   (`descriptor_lock`);
//! * an exception-causing bit in page descriptors that turns a fault on a
//!   never-before-used page into a distinct *quota* exception
//!   (`quota_trap`);
//! * a wakeup-waiting switch and a locked-descriptor address register per
//!   processor (`wakeup_waiting`).
//!
//! One feature models hardware the 6180 already *had*: the SDW/PTW
//! associative memories that hid the descriptor walk's cost
//! (`associative_memory`, see [`tlb`]). It is on in both feature sets and
//! exists as a switch only so experiments can ablate it.
//!
//! Nothing in this crate knows about kernels, processes, or files; it only
//! stores words, walks descriptors, raises faults, and charges cycles.

pub mod clock;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod faultinj;
pub mod interp;
pub mod machine;
pub mod mem;
pub mod meter;
pub mod rng;
pub mod tlb;
pub mod word;

pub use clock::{Clock, CostModel, Language, RefCharges};
pub use cpu::{AccessMode, HwFeatures, Processor, ProcessorId};
pub use disk::{DiskError, DiskPack, DiskSystem, PackId, RecordNo, TocEntry, TocIndex};
pub use fault::Fault;
pub use faultinj::{CrashWrite, DiskFaults, FaultPlan, HwFault};
pub use interp::{InterpError, StepOutcome};
pub use machine::{Machine, MachineConfig};
pub use mem::{AbsAddr, FrameNo, MainMemory, PAGE_WORDS};
pub use meter::{
    CounterSet, EdgeKind, EdgeSet, MeterGuard, MeterSnapshot, ObservedEdge, Subsystem, TraceEvent,
    TraceEventKind,
};
pub use rng::SplitMix64;
pub use tlb::{Tlb, TlbEntry, TlbStats};
pub use word::{Word, WORD_MASK};

/// A virtual address: segment number plus word offset within the segment.
///
/// This is the two-part address the 6180 hardware translates through a
/// descriptor segment and a page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr {
    /// Segment number, an index into the executing address space.
    pub segno: u32,
    /// Word offset within the segment.
    pub wordno: u32,
}

impl VirtAddr {
    /// Builds a virtual address from a segment number and word offset.
    pub const fn new(segno: u32, wordno: u32) -> Self {
        Self { segno, wordno }
    }

    /// The page number within the segment that this address falls on.
    pub const fn pageno(self) -> u32 {
        self.wordno / PAGE_WORDS as u32
    }

    /// The word offset within the page.
    pub const fn offset_in_page(self) -> u32 {
        self.wordno % PAGE_WORDS as u32
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}|{}", self.segno, self.wordno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_page_split() {
        let va = VirtAddr::new(3, 2 * PAGE_WORDS as u32 + 17);
        assert_eq!(va.pageno(), 2);
        assert_eq!(va.offset_in_page(), 17);
        assert_eq!(format!("{va}"), "3|2065");
    }

    #[test]
    fn virt_addr_orders_by_segment_then_word() {
        let a = VirtAddr::new(1, 500);
        let b = VirtAddr::new(2, 0);
        assert!(a < b);
    }
}
