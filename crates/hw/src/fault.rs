//! The processor fault model.
//!
//! Address translation either produces an absolute address or raises one of
//! these faults. Which faults exist — in particular whether a reference to
//! a never-before-used page raises a generic missing-page fault or a
//! distinguished *quota* fault — depends on the [`HwFeatures`] in force;
//! that distinction is one of the hardware changes the paper proposes.
//!
//! [`HwFeatures`]: crate::cpu::HwFeatures

use crate::mem::AbsAddr;
use crate::VirtAddr;

/// A fault raised by the processor during address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The segment number is outside the bounds of the descriptor segment,
    /// or its descriptor carries the *missing segment* (not connected)
    /// flag. Software must activate/connect the segment.
    MissingSegment { va: VirtAddr },
    /// The page descriptor for the referenced page carries the *missing*
    /// flag and the page has previously existed on disk: page control (or
    /// the page-frame manager) must bring it into core.
    ///
    /// `descriptor` is the absolute address of the offending page-table
    /// word; with the `descriptor_lock` feature the hardware has already
    /// set the lock bit in that word before raising this fault.
    MissingPage {
        va: VirtAddr,
        descriptor: AbsAddr,
        /// True if the hardware atomically set the descriptor lock bit
        /// while taking this fault (the paper's proposed addition).
        locked_by_hw: bool,
    },
    /// The referenced page descriptor is locked by another processor's
    /// in-progress fault service (only raised when the `descriptor_lock`
    /// feature is on). The faulting process should wait for notification
    /// and re-reference.
    LockedDescriptor { va: VirtAddr, descriptor: AbsAddr },
    /// A reference touched a never-before-used page of a segment — the
    /// page must be *created*, which requires a quota check. Raised
    /// instead of [`Fault::MissingPage`] only when the `quota_trap`
    /// feature is on; it reports segment and page number so the
    /// known-segment manager can be invoked directly, without page
    /// control having to identify the page with a segment by itself.
    QuotaTrap { va: VirtAddr, descriptor: AbsAddr },
    /// The access mode of the reference is not permitted by the segment
    /// descriptor (e.g. a store into a read-only segment).
    AccessViolation { va: VirtAddr },
    /// The word offset exceeds the segment's bound.
    BoundsViolation { va: VirtAddr },
    /// The reference would require walking a descriptor located outside
    /// of physical core — a software wiring error surfaced as a fault so
    /// tests can observe it.
    BadDescriptor { va: VirtAddr },
}

impl Fault {
    /// The virtual address whose translation raised the fault.
    pub fn va(&self) -> VirtAddr {
        match *self {
            Fault::MissingSegment { va }
            | Fault::MissingPage { va, .. }
            | Fault::LockedDescriptor { va, .. }
            | Fault::QuotaTrap { va, .. }
            | Fault::AccessViolation { va }
            | Fault::BoundsViolation { va }
            | Fault::BadDescriptor { va } => va,
        }
    }

    /// Short mnemonic used in traces and audit logs.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Fault::MissingSegment { .. } => "seg",
            Fault::MissingPage { .. } => "page",
            Fault::LockedDescriptor { .. } => "lock",
            Fault::QuotaTrap { .. } => "quota",
            Fault::AccessViolation { .. } => "access",
            Fault::BoundsViolation { .. } => "bounds",
            Fault::BadDescriptor { .. } => "baddsc",
        }
    }
}

impl core::fmt::Display for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} fault at {}", self.mnemonic(), self.va())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_reports_its_address() {
        let va = VirtAddr::new(7, 99);
        let f = Fault::AccessViolation { va };
        assert_eq!(f.va(), va);
        assert_eq!(format!("{f}"), "access fault at 7|99");
    }

    #[test]
    fn mnemonics_are_distinct() {
        let va = VirtAddr::new(0, 0);
        let d = AbsAddr(0);
        let faults = [
            Fault::MissingSegment { va },
            Fault::MissingPage {
                va,
                descriptor: d,
                locked_by_hw: false,
            },
            Fault::LockedDescriptor { va, descriptor: d },
            Fault::QuotaTrap { va, descriptor: d },
            Fault::AccessViolation { va },
            Fault::BoundsViolation { va },
            Fault::BadDescriptor { va },
        ];
        let mut seen = std::collections::HashSet::new();
        for f in faults {
            assert!(
                seen.insert(f.mnemonic()),
                "duplicate mnemonic {}",
                f.mnemonic()
            );
        }
    }
}
