//! mx-meter: kernel-wide cycle attribution and event tracing.
//!
//! The paper argues about *where time goes* — how many cycles the kernel
//! spends in page control versus the gatekeeper versus user computation —
//! so the simulator needs attribution, not just a total. This module hangs
//! a subsystem ledger off the [`Clock`](crate::Clock): software announces
//! which subsystem is executing with [`Clock::enter`], every cycle charged
//! while that scope is open is attributed to it, and scopes nest across
//! gate crossings the way rings nest on the real machine.
//!
//! Two invariants hold by construction:
//!
//! * **Conservation** — every charge path in the clock routes through one
//!   internal add, so the per-subsystem tallies always sum exactly to
//!   [`Clock::now`](crate::Clock::now). There is no "unattributed"
//!   residue; cycles charged outside any scope belong to
//!   [`Subsystem::UserDomain`].
//! * **Bounded trace** — notable events (faults, gate crossings, process
//!   switches, disk transfers, scope changes) land in a fixed-size ring,
//!   so metering never grows memory with the length of a run.

use std::fmt;

/// The subsystems cycles can be attributed to.
///
/// These follow the type-extension layers the paper carves the supervisor
/// into, plus a few service processes the experiments exercise. Cycles
/// charged while no scope is open belong to [`Subsystem::UserDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    /// User-ring computation (the default when no kernel scope is open).
    UserDomain,
    /// Ring-crossing validation at kernel gates.
    Gatekeeper,
    /// Missing-page service, frame allocation, quota cell checks.
    PageControl,
    /// Segment activation, deactivation, and descriptor management.
    SegmentControl,
    /// Directory hierarchy walks, ACL checks, naming.
    DirectoryControl,
    /// Process creation, destruction, and address-space setup.
    ProcessControl,
    /// Virtual-processor multiplexing and dispatch.
    Scheduler,
    /// The write-behind purifier daemon.
    Purifier,
    /// Dynamic linking (snapping links on linkage faults).
    Linker,
    /// Login, logout, and the answering service.
    AnsweringService,
    /// Network/message demultiplexing.
    Network,
    /// Disk driver time: record transfers not inside any kernel scope.
    Disk,
    /// Consistency sweeps after crashes.
    Salvager,
}

impl Subsystem {
    /// Number of subsystems (size of the attribution ledger).
    pub const COUNT: usize = 13;

    /// Every subsystem, in ledger order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::UserDomain,
        Subsystem::Gatekeeper,
        Subsystem::PageControl,
        Subsystem::SegmentControl,
        Subsystem::DirectoryControl,
        Subsystem::ProcessControl,
        Subsystem::Scheduler,
        Subsystem::Purifier,
        Subsystem::Linker,
        Subsystem::AnsweringService,
        Subsystem::Network,
        Subsystem::Disk,
        Subsystem::Salvager,
    ];

    /// Ledger index of this subsystem.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the JSON key in trace reports.
    pub const fn name(self) -> &'static str {
        match self {
            Subsystem::UserDomain => "user_domain",
            Subsystem::Gatekeeper => "gatekeeper",
            Subsystem::PageControl => "page_control",
            Subsystem::SegmentControl => "segment_control",
            Subsystem::DirectoryControl => "directory_control",
            Subsystem::ProcessControl => "process_control",
            Subsystem::Scheduler => "scheduler",
            Subsystem::Purifier => "purifier",
            Subsystem::Linker => "linker",
            Subsystem::AnsweringService => "answering_service",
            Subsystem::Network => "network",
            Subsystem::Disk => "disk",
            Subsystem::Salvager => "salvager",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened, for ring-buffer trace entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A metering scope opened.
    Enter,
    /// A metering scope closed.
    Exit,
    /// A hardware fault was charged.
    Fault,
    /// A kernel gate crossing was charged.
    GateCrossing,
    /// A virtual-processor switch was charged.
    ProcessSwitch,
    /// A disk record transfer was charged.
    DiskTransfer,
}

impl TraceEventKind {
    /// Stable snake_case name, used as the JSON value in trace reports.
    pub const fn name(self) -> &'static str {
        match self {
            TraceEventKind::Enter => "enter",
            TraceEventKind::Exit => "exit",
            TraceEventKind::Fault => "fault",
            TraceEventKind::GateCrossing => "gate_crossing",
            TraceEventKind::ProcessSwitch => "process_switch",
            TraceEventKind::DiskTransfer => "disk_transfer",
        }
    }
}

/// One entry in the bounded event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock reading when the event was recorded.
    pub at: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// The subsystem on top of the scope stack at the time.
    pub subsystem: Subsystem,
}

/// How one subsystem was observed depending on another at run time.
///
/// The two improper kinds of the paper's classification, observed rather
/// than declared: an **invocation** (a metering scope opened while
/// another subsystem's scope was on top of the stack — the runtime
/// equivalent of a procedure call across a module boundary) and a
/// **shared-data write** (a tagged mutation of a data structure another
/// subsystem owns: AST/page-table slots, quota cells, descriptor words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// `from`'s scope was on top of the stack when `to`'s scope opened.
    Invoke,
    /// Code metered to `from` mutated writable data `to` owns.
    SharedData,
}

impl EdgeKind {
    /// Number of edge kinds (size of the edge ledger's third axis).
    pub const COUNT: usize = 2;

    /// Both kinds, in ledger order.
    pub const ALL: [EdgeKind; EdgeKind::COUNT] = [EdgeKind::Invoke, EdgeKind::SharedData];

    /// Ledger index of this kind.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable label used in gate reports.
    pub const fn name(self) -> &'static str {
        match self {
            EdgeKind::Invoke => "invoke",
            EdgeKind::SharedData => "shared-data",
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed caller→callee edge with its occurrence count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObservedEdge {
    /// The kind of dependency observed.
    pub kind: EdgeKind,
    /// The depending subsystem (the caller / the writer).
    pub from: Subsystem,
    /// The subsystem depended upon (the callee / the data's owner).
    pub to: Subsystem,
    /// How many times the edge fired.
    pub count: u64,
}

/// The always-on caller→callee edge ledger: a
/// `Subsystem × Subsystem × EdgeKind` count matrix.
///
/// Unlike the trace ring, the ledger never evicts: it is O(1) memory
/// regardless of run length (13 × 13 × 2 counters), so the runtime
/// dependency graph it induces is exact over the whole run, not a
/// window. Two conservation properties hold by construction and are
/// pinned by tests:
///
/// * every scope entry records exactly one [`EdgeKind::Invoke`] edge,
///   so the invoke counts always sum to the meter's total scope
///   entries; and
/// * [`EdgeSet::merge`] is commutative and element-wise additive, so
///   per-shard ledgers fold into exactly the ledger one machine would
///   have produced (sum of per-shard counts == merged count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSet {
    counts: [[[u64; Subsystem::COUNT]; Subsystem::COUNT]; EdgeKind::COUNT],
}

impl Default for EdgeSet {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeSet {
    /// An empty ledger.
    pub fn new() -> Self {
        Self {
            counts: [[[0; Subsystem::COUNT]; Subsystem::COUNT]; EdgeKind::COUNT],
        }
    }

    /// Records one occurrence of `from → to`.
    pub fn record(&mut self, kind: EdgeKind, from: Subsystem, to: Subsystem) {
        self.counts[kind.index()][from.index()][to.index()] += 1;
    }

    /// Occurrences of `from → to` of `kind`.
    pub fn count(&self, kind: EdgeKind, from: Subsystem, to: Subsystem) -> u64 {
        self.counts[kind.index()][from.index()][to.index()]
    }

    /// Total occurrences of `kind` edges.
    pub fn total_of(&self, kind: EdgeKind) -> u64 {
        self.counts[kind.index()]
            .iter()
            .flat_map(|row| row.iter())
            .sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        EdgeKind::ALL.iter().all(|&k| self.total_of(k) == 0)
    }

    /// Every edge with a non-zero count, in (kind, from, to) ledger
    /// order — a deterministic flattening, byte-stable across runs.
    pub fn edges(&self) -> Vec<ObservedEdge> {
        let mut out = Vec::new();
        for kind in EdgeKind::ALL {
            for from in Subsystem::ALL {
                for to in Subsystem::ALL {
                    let count = self.count(kind, from, to);
                    if count > 0 {
                        out.push(ObservedEdge {
                            kind,
                            from,
                            to,
                            count,
                        });
                    }
                }
            }
        }
        out
    }

    /// Folds `other` into `self`, element-wise. Commutative and
    /// conservation-safe: merged counts are the sums of the parts.
    pub fn merge(&mut self, other: &EdgeSet) {
        for k in 0..EdgeKind::COUNT {
            for f in 0..Subsystem::COUNT {
                for t in 0..Subsystem::COUNT {
                    self.counts[k][f][t] += other.counts[k][f][t];
                }
            }
        }
    }

    /// Element-wise difference `later - self`, isolating an interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `later` is not actually later (counts
    /// are monotone).
    pub fn delta(&self, later: &EdgeSet) -> EdgeSet {
        let mut out = EdgeSet::new();
        for k in 0..EdgeKind::COUNT {
            for f in 0..Subsystem::COUNT {
                for t in 0..Subsystem::COUNT {
                    out.counts[k][f][t] = later.counts[k][f][t] - self.counts[k][f][t];
                }
            }
        }
        out
    }
}

/// Scope token returned by [`Clock::enter`](crate::Clock::enter).
///
/// Holding the guard does not borrow the clock (the supervisor code needs
/// `&mut` access to the machine while a scope is open), so closing the
/// scope is an explicit [`Clock::exit`](crate::Clock::exit) call. The
/// token records the stack depth to restore, which makes exits robust:
/// an exit unwinds *to* its depth, so a scope abandoned by an early
/// return inside is cleaned up by the enclosing exit.
#[derive(Debug)]
#[must_use = "pass this token to Clock::exit or the scope never closes"]
pub struct MeterGuard {
    pub(crate) depth: usize,
}

/// Default number of events the trace ring retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// The attribution ledger and event ring embedded in the clock.
#[derive(Debug, Clone)]
pub struct Meter {
    attributed: [u64; Subsystem::COUNT],
    entries: [u64; Subsystem::COUNT],
    stack: Vec<Subsystem>,
    ring: Vec<TraceEvent>,
    ring_next: usize,
    recorded: u64,
    capacity: usize,
    edges: EdgeSet,
}

impl Default for Meter {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Meter {
    /// A meter whose trace ring retains `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            attributed: [0; Subsystem::COUNT],
            entries: [0; Subsystem::COUNT],
            stack: Vec::new(),
            ring: Vec::new(),
            ring_next: 0,
            recorded: 0,
            capacity,
            edges: EdgeSet::new(),
        }
    }

    /// The subsystem currently being charged.
    pub fn current(&self) -> Subsystem {
        self.stack.last().copied().unwrap_or(Subsystem::UserDomain)
    }

    /// Attributes `cycles` to the current subsystem.
    pub(crate) fn attribute(&mut self, cycles: u64) {
        self.attributed[self.current().index()] += cycles;
    }

    /// Opens a scope; cycles charged until the matching exit are
    /// attributed to `subsystem`.
    pub(crate) fn enter(&mut self, subsystem: Subsystem, at: u64) -> MeterGuard {
        let depth = self.stack.len();
        // The invocation edge: attributed to the *innermost* open scope
        // (the subsystem whose code actually made the call), exactly
        // once per entry — the fault-path unwind in `exit` never
        // re-records it.
        self.edges
            .record(EdgeKind::Invoke, self.current(), subsystem);
        self.stack.push(subsystem);
        self.entries[subsystem.index()] += 1;
        self.record(TraceEvent {
            at,
            kind: TraceEventKind::Enter,
            subsystem,
        });
        MeterGuard { depth }
    }

    /// Closes the scope `guard` came from, unwinding any scopes left
    /// open inside it.
    pub(crate) fn exit(&mut self, guard: MeterGuard, at: u64) {
        while self.stack.len() > guard.depth {
            // The loop condition guarantees a non-empty stack.
            let Some(subsystem) = self.stack.pop() else {
                break;
            };
            self.record(TraceEvent {
                at,
                kind: TraceEventKind::Exit,
                subsystem,
            });
        }
    }

    /// Appends an event to the ring, overwriting the oldest when full.
    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.recorded += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.ring_next] = event;
            self.ring_next = (self.ring_next + 1) % self.capacity;
        }
    }

    /// Records a shared-writable-data edge: the current scope's
    /// subsystem mutated data `owner` owns. Call sites are the
    /// cross-subsystem mutation choke points (AST/page-table slots,
    /// quota cells, descriptor words); a mutation performed by the
    /// owner itself records a self-edge, which the runtime lattice
    /// treats as intra-module and ignores.
    pub(crate) fn note_shared_data(&mut self, owner: Subsystem) {
        self.edges
            .record(EdgeKind::SharedData, self.current(), owner);
    }

    /// The always-on caller→callee edge ledger.
    pub fn edge_set(&self) -> &EdgeSet {
        &self.edges
    }

    /// Retained trace events, oldest first.
    pub fn trace(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.ring_next..]);
        out.extend_from_slice(&self.ring[..self.ring_next]);
        out
    }

    /// Events recorded over the meter's lifetime (including any that the
    /// bounded ring has since discarded).
    pub fn events_recorded(&self) -> u64 {
        self.recorded
    }

    /// Cycles attributed to `subsystem` so far.
    pub fn attributed_to(&self, subsystem: Subsystem) -> u64 {
        self.attributed[subsystem.index()]
    }

    /// Sum of all attributed cycles. Equals `Clock::now()` always —
    /// the conservation property the tests pin.
    pub fn attributed_total(&self) -> u64 {
        self.attributed.iter().sum()
    }

    /// Total scope entries across all subsystems. Always equals the
    /// edge ledger's invoke total — every entry records one edge.
    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// An immutable copy of the ledger.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            attributed: self.attributed,
            entries: self.entries,
            events_recorded: self.recorded,
        }
    }
}

/// An immutable copy of the attribution ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeterSnapshot {
    attributed: [u64; Subsystem::COUNT],
    entries: [u64; Subsystem::COUNT],
    events_recorded: u64,
}

impl MeterSnapshot {
    /// Cycles attributed to `subsystem`.
    pub fn attributed_to(&self, subsystem: Subsystem) -> u64 {
        self.attributed[subsystem.index()]
    }

    /// Scope entries recorded for `subsystem`.
    pub fn entries_for(&self, subsystem: Subsystem) -> u64 {
        self.entries[subsystem.index()]
    }

    /// Sum of attributed cycles across all subsystems.
    pub fn total(&self) -> u64 {
        self.attributed.iter().sum()
    }

    /// Events recorded over the meter's lifetime.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Per-subsystem rows with non-zero activity, largest share first.
    pub fn breakdown(&self) -> Vec<(Subsystem, u64, u64)> {
        let mut rows: Vec<(Subsystem, u64, u64)> = Subsystem::ALL
            .iter()
            .map(|&s| (s, self.attributed_to(s), self.entries_for(s)))
            .filter(|&(_, cycles, entries)| cycles > 0 || entries > 0)
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Component-wise difference `later - self`.
    pub fn delta(&self, later: &MeterSnapshot) -> MeterSnapshot {
        let mut attributed = [0u64; Subsystem::COUNT];
        let mut entries = [0u64; Subsystem::COUNT];
        for i in 0..Subsystem::COUNT {
            attributed[i] = later.attributed[i] - self.attributed[i];
            entries[i] = later.entries[i] - self.entries[i];
        }
        MeterSnapshot {
            attributed,
            entries,
            events_recorded: later.events_recorded - self.events_recorded,
        }
    }

    /// Renders the ledger as a JSON object (no external dependencies, so
    /// this is hand-rolled; all values are integers and names are fixed
    /// snake_case identifiers, so no escaping is required).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"total_cycles\":{},", self.total()));
        out.push_str(&format!("\"events_recorded\":{},", self.events_recorded));
        out.push_str("\"subsystems\":{");
        let mut first = true;
        for (subsystem, cycles, entries) in self.breakdown() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"cycles\":{cycles},\"entries\":{entries}}}",
                subsystem.name()
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the ledger as aligned text lines for terminal output.
    pub fn render_text(&self) -> String {
        let total = self.total().max(1);
        let mut out = String::new();
        for (subsystem, cycles, entries) in self.breakdown() {
            out.push_str(&format!(
                "  {:<18} {:>14} cycles  {:>5.1}%  ({} entries)\n",
                subsystem.name(),
                cycles,
                cycles as f64 * 100.0 / total as f64,
                entries,
            ));
        }
        out
    }
}

/// An ordered name→value counter registry.
///
/// The kernel and the legacy supervisor keep different statistics
/// structs; both render into a `CounterSet` so reports and the trace
/// JSON treat them uniformly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: Vec<(&'static str, u64)>,
}

impl CounterSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any existing entry.
    pub fn set(&mut self, name: &'static str, value: u64) {
        if let Some(entry) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = value;
        } else {
            self.counters.push((name, value));
        }
    }

    /// The value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// All counters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Renders the registry as a JSON object. Counter names are fixed
    /// identifiers, so no escaping is required.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, CostModel, Language};

    #[test]
    fn unscoped_charges_belong_to_the_user_domain() {
        let cost = CostModel::default();
        let mut clk = Clock::new();
        clk.charge_core_access(&cost);
        clk.charge_instructions(&cost, 10, Language::Assembly);
        assert_eq!(clk.meter().attributed_to(Subsystem::UserDomain), clk.now());
        assert_eq!(clk.meter().attributed_total(), clk.now());
    }

    #[test]
    fn scopes_nest_and_conserve() {
        let cost = CostModel::default();
        let mut clk = Clock::new();
        clk.charge(7); // user domain
        let outer = clk.enter(Subsystem::PageControl);
        clk.charge(100);
        let inner = clk.enter(Subsystem::Disk);
        clk.charge(1000);
        clk.exit(inner);
        clk.charge(50);
        clk.exit(outer);
        clk.charge_instructions(&cost, 3, Language::Assembly);
        let m = clk.meter();
        assert_eq!(m.attributed_to(Subsystem::UserDomain), 7 + 3);
        assert_eq!(m.attributed_to(Subsystem::PageControl), 150);
        assert_eq!(m.attributed_to(Subsystem::Disk), 1000);
        assert_eq!(m.attributed_total(), clk.now());
    }

    #[test]
    fn exit_unwinds_scopes_abandoned_inside() {
        let mut clk = Clock::new();
        let outer = clk.enter(Subsystem::SegmentControl);
        let _abandoned = clk.enter(Subsystem::PageControl);
        clk.charge(5);
        // `_abandoned` is never passed to exit; the outer exit unwinds it.
        clk.exit(outer);
        clk.charge(9);
        let m = clk.meter();
        assert_eq!(m.attributed_to(Subsystem::PageControl), 5);
        assert_eq!(m.attributed_to(Subsystem::UserDomain), 9);
        assert_eq!(m.current(), Subsystem::UserDomain);
    }

    #[test]
    fn trace_ring_is_bounded_and_keeps_newest() {
        let mut m = Meter::with_capacity(4);
        for i in 0..10u64 {
            m.record(TraceEvent {
                at: i,
                kind: TraceEventKind::Fault,
                subsystem: Subsystem::UserDomain,
            });
        }
        let trace = m.trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].at, 6, "oldest retained event");
        assert_eq!(trace[3].at, 9, "newest event");
        assert_eq!(m.events_recorded(), 10);
    }

    #[test]
    fn notable_charges_land_in_the_trace() {
        let cost = CostModel::default();
        let mut clk = Clock::new();
        let g = clk.enter(Subsystem::Gatekeeper);
        clk.charge_gate(&cost);
        clk.charge_fault(&cost);
        clk.charge_disk_transfer(&cost);
        clk.charge_process_switch(&cost);
        clk.exit(g);
        let kinds: Vec<TraceEventKind> = clk.meter().trace().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::Enter,
                TraceEventKind::GateCrossing,
                TraceEventKind::Fault,
                TraceEventKind::DiskTransfer,
                TraceEventKind::ProcessSwitch,
                TraceEventKind::Exit,
            ]
        );
        assert!(clk
            .meter()
            .trace()
            .iter()
            .all(|e| e.subsystem == Subsystem::Gatekeeper));
    }

    #[test]
    fn snapshot_delta_and_json_render() {
        let mut clk = Clock::new();
        let before = clk.meter_snapshot();
        let g = clk.enter(Subsystem::Purifier);
        clk.charge(40);
        clk.exit(g);
        clk.charge(2);
        let d = before.delta(&clk.meter_snapshot());
        assert_eq!(d.attributed_to(Subsystem::Purifier), 40);
        assert_eq!(d.entries_for(Subsystem::Purifier), 1);
        assert_eq!(d.total(), 42);
        let json = d.to_json();
        assert!(json.contains("\"total_cycles\":42"));
        assert!(json.contains("\"purifier\":{\"cycles\":40,\"entries\":1}"));
    }

    #[test]
    fn invoke_edges_attribute_to_the_innermost_caller() {
        let mut clk = Clock::new();
        // UserDomain → Dir → Seg → Dir: each entry charges the scope on
        // top of the stack at the instant of the call, not the outermost.
        let a = clk.enter(Subsystem::DirectoryControl);
        let b = clk.enter(Subsystem::SegmentControl);
        let c = clk.enter(Subsystem::DirectoryControl);
        clk.exit(c);
        clk.exit(b);
        clk.exit(a);
        let e = clk.edge_set();
        assert_eq!(
            e.count(
                EdgeKind::Invoke,
                Subsystem::UserDomain,
                Subsystem::DirectoryControl
            ),
            1
        );
        assert_eq!(
            e.count(
                EdgeKind::Invoke,
                Subsystem::DirectoryControl,
                Subsystem::SegmentControl
            ),
            1
        );
        assert_eq!(
            e.count(
                EdgeKind::Invoke,
                Subsystem::SegmentControl,
                Subsystem::DirectoryControl
            ),
            1,
            "re-entrant Dir scope charges Seg, the innermost caller"
        );
        assert_eq!(
            e.count(
                EdgeKind::Invoke,
                Subsystem::DirectoryControl,
                Subsystem::DirectoryControl
            ),
            0,
            "the outer Dir scope is not the caller of the inner one"
        );
    }

    #[test]
    fn fault_path_unwind_records_each_edge_exactly_once() {
        let mut clk = Clock::new();
        // A scope abandoned by an early return (the translate-fault /
        // SalvageBusy shape) is closed by the enclosing exit's unwind;
        // the edge was recorded at entry and must not be re-recorded.
        let outer = clk.enter(Subsystem::PageControl);
        let _abandoned = clk.enter(Subsystem::Disk);
        clk.exit(outer); // unwinds Disk too
        let e = clk.edge_set();
        assert_eq!(
            e.count(EdgeKind::Invoke, Subsystem::PageControl, Subsystem::Disk),
            1
        );
        assert_eq!(
            e.count(
                EdgeKind::Invoke,
                Subsystem::UserDomain,
                Subsystem::PageControl
            ),
            1
        );
        assert_eq!(e.total_of(EdgeKind::Invoke), 2);
        assert_eq!(
            clk.meter().total_entries(),
            e.total_of(EdgeKind::Invoke),
            "one invoke edge per scope entry, even across unwinds"
        );
    }

    #[test]
    fn shared_data_edges_record_writer_to_owner() {
        let mut clk = Clock::new();
        let g = clk.enter(Subsystem::PageControl);
        clk.note_shared_data(Subsystem::SegmentControl); // AST walk
        clk.note_shared_data(Subsystem::SegmentControl);
        clk.note_shared_data(Subsystem::PageControl); // own data: self-edge
        clk.exit(g);
        let e = clk.edge_set();
        assert_eq!(
            e.count(
                EdgeKind::SharedData,
                Subsystem::PageControl,
                Subsystem::SegmentControl
            ),
            2
        );
        assert_eq!(
            e.count(
                EdgeKind::SharedData,
                Subsystem::PageControl,
                Subsystem::PageControl
            ),
            1,
            "owner mutating its own data is a self-edge (intra-module)"
        );
        assert_eq!(e.total_of(EdgeKind::SharedData), 3);
    }

    #[test]
    fn edge_merge_is_commutative_and_conservation_safe() {
        let mut a = EdgeSet::new();
        let mut b = EdgeSet::new();
        a.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::Gatekeeper,
        );
        a.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::Gatekeeper,
        );
        a.record(
            EdgeKind::SharedData,
            Subsystem::PageControl,
            Subsystem::SegmentControl,
        );
        b.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::Gatekeeper,
        );
        b.record(
            EdgeKind::Invoke,
            Subsystem::Scheduler,
            Subsystem::PageControl,
        );
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        for kind in EdgeKind::ALL {
            assert_eq!(
                ab.total_of(kind),
                a.total_of(kind) + b.total_of(kind),
                "sum of per-shard counts == merged count ({kind})"
            );
        }
        assert_eq!(
            ab.count(
                EdgeKind::Invoke,
                Subsystem::UserDomain,
                Subsystem::Gatekeeper
            ),
            3
        );
        // Delta inverts merge: (a merged b) - a == b.
        assert_eq!(a.delta(&ab), b);
    }

    #[test]
    fn edge_flattening_is_deterministic_and_sorted() {
        let mut e = EdgeSet::new();
        e.record(
            EdgeKind::SharedData,
            Subsystem::SegmentControl,
            Subsystem::DirectoryControl,
        );
        e.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::PageControl,
        );
        e.record(
            EdgeKind::Invoke,
            Subsystem::Gatekeeper,
            Subsystem::Scheduler,
        );
        let edges = e.edges();
        assert_eq!(edges.len(), 3);
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted, "ledger order is (kind, from, to) sorted");
        assert!(EdgeSet::new().is_empty());
        assert!(!e.is_empty());
    }

    #[test]
    fn counter_set_replaces_and_renders() {
        let mut cs = CounterSet::new();
        cs.set("page_faults", 3);
        cs.set("segment_faults", 1);
        cs.set("page_faults", 5);
        assert_eq!(cs.get("page_faults"), Some(5));
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.to_json(), "{\"page_faults\":5,\"segment_faults\":1}");
    }
}
