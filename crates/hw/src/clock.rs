//! The cycle clock and cost model.
//!
//! The paper's performance results are relative ("about 3% slower",
//! "a factor of two in the speed of the code"). To reproduce their *shape*
//! deterministically we account simulated work in cycles: every memory
//! reference, descriptor fetch, fault, disk transfer, and executed
//! "instruction" charges the clock. Wall-clock Criterion measurements are
//! taken as a secondary check, but cycles are the primary metric because
//! they are exactly reproducible.
//!
//! The [`Language`] multiplier models the paper's observation that
//! recoding an assembly-language module in PL/I roughly halves the source
//! line count while roughly doubling the number of generated machine
//! instructions (Huber, 1976): software modules charge their algorithmic
//! work through [`Clock::charge_instructions`] tagged with the language
//! they are "written in".
//!
//! Every charge is additionally attributed to a kernel subsystem via the
//! embedded [`Meter`] (see [`crate::meter`]): supervisor code opens a
//! scope with [`Clock::enter`], and all cycles charged until the matching
//! [`Clock::exit`] are attributed to that subsystem.

use crate::meter::{Meter, MeterGuard, MeterSnapshot, Subsystem, TraceEvent, TraceEventKind};

/// The implementation language of a (simulated) supervisor module.
///
/// Carries the paper's measured code-expansion factor: PL/I generates a
/// bit more than twice the machine instructions of hand assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Hand-written 6180 assembly (ALM). Baseline cost.
    Assembly,
    /// PL/I. Costs [`CostModel::pli_expansion_permille`]/1000 cycles per
    /// abstract instruction.
    Pli,
}

/// Cycle costs charged for each kind of simulated hardware event.
///
/// The defaults are chosen for plausibility of *ratios* (a disk record
/// transfer is tens of thousands of times a core reference), which is all
/// the reproduced comparisons depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One core read or write.
    pub core_access: u64,
    /// One descriptor word fetched during address translation.
    pub descriptor_fetch: u64,
    /// One hardware write-back of a page descriptor (used/modified or
    /// lock-bit maintenance during translation).
    pub ptw_update: u64,
    /// Fixed overhead of taking any fault (state save, dispatch).
    pub fault_overhead: u64,
    /// Fixed overhead of a kernel gate crossing (ring change).
    pub gate_crossing: u64,
    /// Fixed overhead of a process switch at the virtual-processor level.
    pub process_switch: u64,
    /// Disk seek + rotational latency, charged once per record transfer.
    pub disk_latency: u64,
    /// Per-word disk transfer cost, charged 1024 times per record.
    pub disk_word_transfer: u64,
    /// Cycles per abstract instruction for assembly code.
    pub instruction: u64,
    /// Instruction-count expansion of PL/I relative to assembly, in
    /// permille; the paper reports "somewhat more than a factor of two",
    /// so the default is 2200 (×2.2).
    pub pli_expansion_permille: u64,
    /// Fixed overhead of moving one frame across the inter-machine
    /// wire (interrupt, buffer handoff) — charged on each machine a
    /// frame touches, attributed to the network subsystem.
    pub wire_frame_overhead: u64,
    /// Per-byte wire transfer cost, charged with the frame overhead.
    pub wire_byte_transfer: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            core_access: 1,
            descriptor_fetch: 1,
            ptw_update: 1,
            fault_overhead: 50,
            gate_crossing: 30,
            process_switch: 120,
            disk_latency: 40_000,
            disk_word_transfer: 4,
            instruction: 1,
            pli_expansion_permille: 2200,
            wire_frame_overhead: 400,
            wire_byte_transfer: 6,
        }
    }
}

impl CostModel {
    /// Cycles charged for `n` abstract instructions written in `lang`.
    pub fn instructions(&self, n: u64, lang: Language) -> u64 {
        let base = n * self.instruction;
        match lang {
            Language::Assembly => base,
            Language::Pli => base * self.pli_expansion_permille / 1000,
        }
    }

    /// Cycles for transferring one full record (page) to or from disk.
    pub fn record_transfer(&self) -> u64 {
        self.disk_latency + self.disk_word_transfer * crate::mem::PAGE_WORDS as u64
    }

    /// Cycles for moving one `bytes`-long frame across the wire.
    pub fn wire_frame(&self, bytes: usize) -> u64 {
        self.wire_frame_overhead + self.wire_byte_transfer * bytes as u64
    }
}

/// The deterministic cycle clock.
///
/// A single monotone counter plus per-category tallies so experiments can
/// report where time went (compute vs. paging vs. gate crossings). The
/// embedded [`Meter`] additionally attributes every cycle to the kernel
/// subsystem that charged it; all charge paths route through one internal
/// add, so the attribution always sums exactly to [`Clock::now`].
#[derive(Debug, Clone, Default)]
pub struct Clock {
    cycles: u64,
    core_accesses: u64,
    descriptor_fetches: u64,
    ptw_updates: u64,
    faults: u64,
    gate_crossings: u64,
    process_switches: u64,
    disk_transfers: u64,
    instructions: u64,
    wire_frames: u64,
    meter: Meter,
}

impl Clock {
    /// A fresh clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// The single path by which cycles accrue: advances the clock and
    /// attributes the cycles to the current metering scope.
    fn add(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.meter.attribute(cycles);
    }

    /// Records a notable event in the bounded trace ring.
    fn event(&mut self, kind: TraceEventKind) {
        self.meter.record(TraceEvent {
            at: self.cycles,
            kind,
            subsystem: self.meter.current(),
        });
    }

    /// Opens a cycle-attribution scope: every cycle charged until the
    /// matching [`Clock::exit`] is attributed to `subsystem`. Scopes nest;
    /// the innermost open scope is charged.
    pub fn enter(&mut self, subsystem: Subsystem) -> MeterGuard {
        let at = self.cycles;
        self.meter.enter(subsystem, at)
    }

    /// Closes the scope `guard` came from (unwinding any scopes left open
    /// inside it).
    pub fn exit(&mut self, guard: MeterGuard) {
        let at = self.cycles;
        self.meter.exit(guard, at);
    }

    /// The attribution ledger.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Records a shared-writable-data edge in the runtime edge ledger:
    /// the currently-metered subsystem mutated data `owner` owns. The
    /// supervisors call this at their cross-subsystem mutation choke
    /// points (AST/page-table slots, quota cells, descriptor words);
    /// it charges no cycles and never touches the trace ring.
    pub fn note_shared_data(&mut self, owner: Subsystem) {
        self.meter.note_shared_data(owner);
    }

    /// The always-on caller→callee edge ledger.
    pub fn edge_set(&self) -> &crate::meter::EdgeSet {
        self.meter.edge_set()
    }

    /// An immutable copy of the edge ledger.
    pub fn edge_snapshot(&self) -> crate::meter::EdgeSet {
        self.meter.edge_set().clone()
    }

    /// An immutable copy of the attribution ledger.
    pub fn meter_snapshot(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Charges raw cycles without categorising them.
    pub fn charge(&mut self, cycles: u64) {
        self.add(cycles);
    }

    /// Charges one core access.
    pub fn charge_core_access(&mut self, cost: &CostModel) {
        self.core_accesses += 1;
        self.add(cost.core_access);
    }

    /// Charges one descriptor fetch.
    pub fn charge_descriptor_fetch(&mut self, cost: &CostModel) {
        self.descriptor_fetches += 1;
        self.add(cost.descriptor_fetch);
    }

    /// Charges one hardware page-descriptor write-back (reference-bit or
    /// lock-bit maintenance during translation).
    pub fn charge_ptw_update(&mut self, cost: &CostModel) {
        self.ptw_updates += 1;
        self.add(cost.ptw_update);
    }

    /// Charges a whole memory reference's accumulated translation and
    /// core costs in one meter attribution. The per-reference charge
    /// sequence (descriptor fetches, PTW write-backs, the core access)
    /// is the simulator's hottest path; none of those charges records a
    /// trace event and no caller observes the clock between them, so
    /// batching them into a single `add` is attribution-exact while
    /// cutting the inner loop to one meter call per reference.
    pub fn charge_reference(&mut self, cost: &CostModel, c: RefCharges) {
        if c.is_empty() {
            return;
        }
        self.descriptor_fetches += c.descriptor_fetches;
        self.ptw_updates += c.ptw_updates;
        self.core_accesses += c.core_accesses;
        self.add(c.cycles(cost));
    }

    /// Charges the fixed overhead of a fault.
    pub fn charge_fault(&mut self, cost: &CostModel) {
        self.faults += 1;
        self.add(cost.fault_overhead);
        self.event(TraceEventKind::Fault);
    }

    /// Charges a kernel gate crossing.
    pub fn charge_gate(&mut self, cost: &CostModel) {
        self.gate_crossings += 1;
        self.add(cost.gate_crossing);
        self.event(TraceEventKind::GateCrossing);
    }

    /// Charges a virtual-processor switch.
    pub fn charge_process_switch(&mut self, cost: &CostModel) {
        self.process_switches += 1;
        self.add(cost.process_switch);
        self.event(TraceEventKind::ProcessSwitch);
    }

    /// Charges one disk record transfer.
    pub fn charge_disk_transfer(&mut self, cost: &CostModel) {
        self.disk_transfers += 1;
        self.add(cost.record_transfer());
        self.event(TraceEventKind::DiskTransfer);
    }

    /// Charges `n` abstract instructions of software written in `lang`.
    pub fn charge_instructions(&mut self, cost: &CostModel, n: u64, lang: Language) {
        self.instructions += n;
        self.add(cost.instructions(n, lang));
    }

    /// Charges one inter-machine wire frame of `bytes` bytes. The cost
    /// is attributed to the network subsystem under whatever scope is
    /// currently open, so the caller's context (user domain for bulk
    /// data, the answering service for admission routing) shows up as
    /// the invoking edge in the runtime ledger.
    pub fn charge_wire_frame(&mut self, cost: &CostModel, bytes: usize) {
        let guard = self.enter(Subsystem::Network);
        self.wire_frames += 1;
        self.add(cost.wire_frame(bytes));
        self.exit(guard);
    }

    /// Wire frames charged on this clock so far.
    pub fn wire_frames(&self) -> u64 {
        self.wire_frames
    }

    /// Number of faults taken so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Number of disk record transfers so far.
    pub fn disk_transfers(&self) -> u64 {
        self.disk_transfers
    }

    /// Number of gate crossings so far.
    pub fn gate_crossings(&self) -> u64 {
        self.gate_crossings
    }

    /// Number of process switches so far.
    pub fn process_switches(&self) -> u64 {
        self.process_switches
    }

    /// Abstract instructions executed so far.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    /// Page-descriptor write-backs charged so far.
    pub fn ptw_updates(&self) -> u64 {
        self.ptw_updates
    }

    /// Descriptor fetches charged so far.
    pub fn descriptor_fetches(&self) -> u64 {
        self.descriptor_fetches
    }

    /// A snapshot of all tallies, for before/after deltas in experiments.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            cycles: self.cycles,
            faults: self.faults,
            disk_transfers: self.disk_transfers,
            gate_crossings: self.gate_crossings,
            process_switches: self.process_switches,
            instructions: self.instructions,
            ptw_updates: self.ptw_updates,
        }
    }
}

/// Pending per-reference charges, accumulated across one memory
/// reference's translation and flushed with a single
/// [`Clock::charge_reference`]. The flush happens at every
/// charge-attribution boundary — before a fault is raised (so the fault
/// event's timestamp sees the translation work already on the clock)
/// and after a successful reference — so totals, tallies, and meter
/// attribution are byte-identical to charging each step individually.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefCharges {
    /// Descriptor words fetched (SDW/PTW walks).
    pub descriptor_fetches: u64,
    /// Page-descriptor write-backs (used/modified/lock-bit maintenance).
    pub ptw_updates: u64,
    /// Core accesses.
    pub core_accesses: u64,
}

impl RefCharges {
    /// True when nothing has been accumulated (flush is a no-op).
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Total cycles these charges cost under `cost`.
    pub fn cycles(&self, cost: &CostModel) -> u64 {
        self.descriptor_fetches * cost.descriptor_fetch
            + self.ptw_updates * cost.ptw_update
            + self.core_accesses * cost.core_access
    }
}

/// An immutable snapshot of the clock's tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockSnapshot {
    /// Total cycles.
    pub cycles: u64,
    /// Faults taken.
    pub faults: u64,
    /// Disk record transfers.
    pub disk_transfers: u64,
    /// Kernel gate crossings.
    pub gate_crossings: u64,
    /// Virtual-processor switches.
    pub process_switches: u64,
    /// Abstract instructions executed.
    pub instructions: u64,
    /// Page-descriptor write-backs.
    pub ptw_updates: u64,
}

impl ClockSnapshot {
    /// Component-wise difference `later - self`.
    ///
    /// # Panics
    ///
    /// Panics if `later` is not actually later (any tally smaller).
    pub fn delta(&self, later: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            cycles: later.cycles - self.cycles,
            faults: later.faults - self.faults,
            disk_transfers: later.disk_transfers - self.disk_transfers,
            gate_crossings: later.gate_crossings - self.gate_crossings,
            process_switches: later.process_switches - self.process_switches,
            instructions: later.instructions - self.instructions,
            ptw_updates: later.ptw_updates - self.ptw_updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pli_costs_just_over_twice_assembly() {
        let cost = CostModel::default();
        let asm = cost.instructions(1000, Language::Assembly);
        let pli = cost.instructions(1000, Language::Pli);
        assert!(pli > 2 * asm, "PL/I should cost more than twice assembly");
        assert!(pli < 3 * asm, "but not three times");
    }

    #[test]
    fn clock_accumulates_by_category() {
        let cost = CostModel::default();
        let mut clk = Clock::new();
        clk.charge_core_access(&cost);
        clk.charge_fault(&cost);
        clk.charge_disk_transfer(&cost);
        clk.charge_instructions(&cost, 10, Language::Assembly);
        assert_eq!(clk.faults(), 1);
        assert_eq!(clk.disk_transfers(), 1);
        assert_eq!(clk.instructions_executed(), 10);
        assert_eq!(
            clk.now(),
            cost.core_access + cost.fault_overhead + cost.record_transfer() + 10
        );
    }

    #[test]
    fn snapshot_delta_isolates_an_interval() {
        let cost = CostModel::default();
        let mut clk = Clock::new();
        clk.charge_gate(&cost);
        let before = clk.snapshot();
        clk.charge_gate(&cost);
        clk.charge_process_switch(&cost);
        let d = before.delta(&clk.snapshot());
        assert_eq!(d.gate_crossings, 1);
        assert_eq!(d.process_switches, 1);
        assert_eq!(d.cycles, cost.gate_crossing + cost.process_switch);
    }

    #[test]
    fn batched_reference_charge_matches_incremental() {
        let cost = CostModel::default();
        let mut batched = Clock::new();
        let mut incremental = Clock::new();
        batched.charge_reference(
            &cost,
            RefCharges {
                descriptor_fetches: 2,
                ptw_updates: 1,
                core_accesses: 1,
            },
        );
        incremental.charge_descriptor_fetch(&cost);
        incremental.charge_descriptor_fetch(&cost);
        incremental.charge_ptw_update(&cost);
        incremental.charge_core_access(&cost);
        assert_eq!(batched.now(), incremental.now());
        assert_eq!(batched.snapshot(), incremental.snapshot());
        assert_eq!(batched.descriptor_fetches(), 2);
        assert_eq!(batched.ptw_updates(), 1);
    }

    #[test]
    fn empty_reference_charge_is_a_no_op() {
        let cost = CostModel::default();
        let mut clk = Clock::new();
        clk.charge_reference(&cost, RefCharges::default());
        assert_eq!(clk.now(), 0);
    }

    #[test]
    fn disk_transfer_dwarfs_core_access() {
        let cost = CostModel::default();
        assert!(cost.record_transfer() > 10_000 * cost.core_access);
    }
}
