//! Demountable disk packs and their tables of contents.
//!
//! In Multics a file-system directory entry names a segment by *pack
//! identifier* plus an *index into that pack's table of contents* (TOC);
//! for robustness and demountability all pages of a segment live on the
//! same pack. Both facts matter structurally: a pack can fill while a
//! segment is being grown, forcing the whole segment to move to an
//! emptier pack and the directory entry to be rewritten — the paper's
//! showcase for upward signalling.
//!
//! A TOC entry holds the segment's unique identifier, its *file map*
//! (page number → disk record, with page-sized blocks of zeros
//! represented by flags instead of records — the storage-charging
//! feature analysed in the paper), and, for directory segments, the
//! on-disk home of the directory's quota cell.

use crate::mem::PAGE_WORDS;
use crate::word::Word;
/// Identifies a disk pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackId(pub u32);

/// A record number within one pack; a record holds exactly one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordNo(pub u32);

/// An index into a pack's table of contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TocIndex(pub u32);

/// Errors raised by the disk subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The pack has no free records: the full-pack condition.
    PackFull { pack: PackId },
    /// The pack's table of contents has no free entries.
    TocFull { pack: PackId },
    /// The named TOC entry does not exist.
    NoSuchEntry { pack: PackId, index: TocIndex },
    /// The named record is outside the pack or not allocated.
    BadRecord { pack: PackId, record: RecordNo },
    /// The named pack does not exist.
    NoSuchPack { pack: PackId },
    /// A read of the record failed transiently; the same read retried
    /// may succeed (injected by the fault plan).
    TransientRead { pack: PackId, record: RecordNo },
    /// The pack is offline; segments on other packs remain usable.
    PackOffline { pack: PackId },
    /// Power has failed: the machine is halted and no disk operation can
    /// proceed. Only the disk image survives for the next bootload.
    PowerFail,
}

impl core::fmt::Display for DiskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiskError::PackFull { pack } => write!(f, "pack {} is full", pack.0),
            DiskError::TocFull { pack } => write!(f, "pack {} TOC is full", pack.0),
            DiskError::NoSuchEntry { pack, index } => {
                write!(f, "pack {} has no TOC entry {}", pack.0, index.0)
            }
            DiskError::BadRecord { pack, record } => {
                write!(f, "pack {} record {} not allocated", pack.0, record.0)
            }
            DiskError::NoSuchPack { pack } => write!(f, "no pack {}", pack.0),
            DiskError::TransientRead { pack, record } => {
                write!(
                    f,
                    "transient read error on pack {} record {}",
                    pack.0, record.0
                )
            }
            DiskError::PackOffline { pack } => write!(f, "pack {} is offline", pack.0),
            DiskError::PowerFail => write!(f, "power failed; machine halted"),
        }
    }
}

impl std::error::Error for DiskError {}

/// The on-disk representation of a quota cell, stored in the TOC entry of
/// the directory segment it is associated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuotaCellRecord {
    /// Maximum pages the controlled region may occupy.
    pub limit_pages: u32,
    /// Pages currently charged against the limit.
    pub used_pages: u32,
}

/// One table-of-contents entry: the disk-resident description of a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TocEntry {
    /// The segment's system-wide unique identifier.
    pub uid: u64,
    /// Page number → record. `None` is the *zero page flag*: the page is
    /// logically part of the segment but all zeros, occupies no record,
    /// and accrues no storage charge.
    pub file_map: Vec<Option<RecordNo>>,
    /// On-disk quota cell, present only for directory segments that are
    /// quota directories.
    pub quota_cell: Option<QuotaCellRecord>,
}

impl TocEntry {
    /// Current length of the segment in pages.
    pub fn len_pages(&self) -> u32 {
        self.file_map.len() as u32
    }

    /// Number of pages actually occupying disk records — the paper's
    /// chargeable page count (zero pages are free).
    pub fn records_used(&self) -> u32 {
        self.file_map.iter().filter(|r| r.is_some()).count() as u32
    }
}

/// One page-sized disk record buffer.
pub type RecordBuf = Box<[Word; PAGE_WORDS]>;

fn blank_record() -> RecordBuf {
    Box::new([Word::ZERO; PAGE_WORDS])
}

/// A demountable disk pack: a fixed pool of records plus a TOC.
#[derive(Debug, Clone)]
pub struct DiskPack {
    /// This pack's identity.
    pub id: PackId,
    records: Vec<Option<RecordBuf>>,
    toc: Vec<Option<TocEntry>>,
}

impl DiskPack {
    /// Creates an empty pack with `records` data records and `toc_slots`
    /// table-of-contents entries.
    pub fn new(id: PackId, records: u32, toc_slots: u32) -> Self {
        Self {
            id,
            records: (0..records).map(|_| None).collect(),
            toc: (0..toc_slots).map(|_| None).collect(),
        }
    }

    /// Total records on the pack.
    pub fn capacity(&self) -> u32 {
        self.records.len() as u32
    }

    /// Records not currently allocated.
    pub fn free_records(&self) -> u32 {
        self.records.iter().filter(|r| r.is_none()).count() as u32
    }

    /// True if no record is free — the full-pack condition.
    pub fn is_full(&self) -> bool {
        self.free_records() == 0
    }

    /// Allocates a zeroed record.
    ///
    /// # Errors
    ///
    /// [`DiskError::PackFull`] when every record is allocated.
    pub fn allocate_record(&mut self) -> Result<RecordNo, DiskError> {
        for (i, slot) in self.records.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(blank_record());
                return Ok(RecordNo(i as u32));
            }
        }
        Err(DiskError::PackFull { pack: self.id })
    }

    /// Frees an allocated record.
    ///
    /// # Errors
    ///
    /// [`DiskError::BadRecord`] if the record is out of range or already
    /// free.
    pub fn free_record(&mut self, record: RecordNo) -> Result<(), DiskError> {
        match self.records.get_mut(record.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(DiskError::BadRecord {
                pack: self.id,
                record,
            }),
        }
    }

    /// Reads an allocated record.
    ///
    /// # Errors
    ///
    /// [`DiskError::BadRecord`] if the record is not allocated.
    pub fn read_record(&self, record: RecordNo) -> Result<&RecordBuf, DiskError> {
        self.records
            .get(record.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(DiskError::BadRecord {
                pack: self.id,
                record,
            })
    }

    /// Overwrites an allocated record.
    ///
    /// # Errors
    ///
    /// [`DiskError::BadRecord`] if the record is not allocated.
    pub fn write_record(
        &mut self,
        record: RecordNo,
        data: &[Word; PAGE_WORDS],
    ) -> Result<(), DiskError> {
        match self.records.get_mut(record.0 as usize) {
            Some(Some(buf)) => {
                buf.copy_from_slice(data);
                Ok(())
            }
            _ => Err(DiskError::BadRecord {
                pack: self.id,
                record,
            }),
        }
    }

    /// Creates a TOC entry for a new segment with the given uid.
    ///
    /// # Errors
    ///
    /// [`DiskError::TocFull`] when every slot is occupied.
    pub fn create_entry(&mut self, uid: u64) -> Result<TocIndex, DiskError> {
        for (i, slot) in self.toc.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(TocEntry {
                    uid,
                    file_map: Vec::new(),
                    quota_cell: None,
                });
                return Ok(TocIndex(i as u32));
            }
        }
        Err(DiskError::TocFull { pack: self.id })
    }

    /// Looks up a TOC entry.
    ///
    /// # Errors
    ///
    /// [`DiskError::NoSuchEntry`] if the slot is empty or out of range.
    pub fn entry(&self, index: TocIndex) -> Result<&TocEntry, DiskError> {
        self.toc
            .get(index.0 as usize)
            .and_then(|e| e.as_ref())
            .ok_or(DiskError::NoSuchEntry {
                pack: self.id,
                index,
            })
    }

    /// Mutable TOC entry lookup.
    ///
    /// # Errors
    ///
    /// [`DiskError::NoSuchEntry`] if the slot is empty or out of range.
    pub fn entry_mut(&mut self, index: TocIndex) -> Result<&mut TocEntry, DiskError> {
        let id = self.id;
        self.toc
            .get_mut(index.0 as usize)
            .and_then(|e| e.as_mut())
            .ok_or(DiskError::NoSuchEntry { pack: id, index })
    }

    /// Deletes a TOC entry, freeing all records in its file map.
    ///
    /// # Errors
    ///
    /// [`DiskError::NoSuchEntry`] if the entry does not exist, or
    /// [`DiskError::BadRecord`] if a (corrupt) file map names a record
    /// that is not allocated — the entry is gone either way.
    pub fn delete_entry(&mut self, index: TocIndex) -> Result<(), DiskError> {
        let entry = self
            .toc
            .get_mut(index.0 as usize)
            .and_then(Option::take)
            .ok_or(DiskError::NoSuchEntry {
                pack: self.id,
                index,
            })?;
        let mut bad = None;
        for rec in entry.file_map.into_iter().flatten() {
            // The file map should only name records this pack allocated;
            // report a corrupt map as a typed error instead of panicking,
            // still freeing whatever else the map names.
            if let Err(e) = self.free_record(rec) {
                bad = Some(e);
            }
        }
        match bad {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Record numbers currently allocated — the salvager's leak sweep
    /// compares these against the records the file maps reference.
    pub fn allocated_record_nos(&self) -> Vec<RecordNo> {
        self.records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| RecordNo(i as u32)))
            .collect()
    }

    /// Iterates over the occupied TOC entries.
    pub fn entries(&self) -> impl Iterator<Item = (TocIndex, &TocEntry)> {
        self.toc
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (TocIndex(i as u32), e)))
    }
}

/// All the packs attached to the machine.
#[derive(Debug, Clone, Default)]
pub struct DiskSystem {
    packs: Vec<DiskPack>,
}

impl DiskSystem {
    /// An empty disk system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a new pack and returns its id.
    pub fn attach(&mut self, records: u32, toc_slots: u32) -> PackId {
        let id = PackId(self.packs.len() as u32);
        self.packs.push(DiskPack::new(id, records, toc_slots));
        id
    }

    /// Number of attached packs.
    pub fn pack_count(&self) -> usize {
        self.packs.len()
    }

    /// Shared access to a pack.
    ///
    /// # Errors
    ///
    /// [`DiskError::NoSuchPack`] for an unknown id.
    pub fn pack(&self, id: PackId) -> Result<&DiskPack, DiskError> {
        self.packs
            .get(id.0 as usize)
            .ok_or(DiskError::NoSuchPack { pack: id })
    }

    /// Mutable access to a pack.
    ///
    /// # Errors
    ///
    /// [`DiskError::NoSuchPack`] for an unknown id.
    pub fn pack_mut(&mut self, id: PackId) -> Result<&mut DiskPack, DiskError> {
        self.packs
            .get_mut(id.0 as usize)
            .ok_or(DiskError::NoSuchPack { pack: id })
    }

    /// The pack with the most free records, excluding `exclude` — the
    /// relocation target when a segment outgrows a full pack.
    pub fn emptiest_pack(&self, exclude: PackId) -> Option<PackId> {
        self.packs
            .iter()
            .filter(|p| p.id != exclude && !p.is_full())
            .max_by_key(|p| p.free_records())
            .map(|p| p.id)
    }

    /// Iterates over all packs.
    pub fn packs(&self) -> impl Iterator<Item = &DiskPack> {
        self.packs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_pack_full_error() {
        let mut p = DiskPack::new(PackId(0), 2, 4);
        let a = p.allocate_record().unwrap();
        let b = p.allocate_record().unwrap();
        assert_ne!(a, b);
        assert!(p.is_full());
        assert_eq!(
            p.allocate_record(),
            Err(DiskError::PackFull { pack: PackId(0) })
        );
        p.free_record(a).unwrap();
        assert!(!p.is_full());
        assert_eq!(p.allocate_record().unwrap(), a);
    }

    #[test]
    fn record_read_write_round_trip() {
        let mut p = DiskPack::new(PackId(0), 1, 1);
        let r = p.allocate_record().unwrap();
        let mut page = [Word::ZERO; PAGE_WORDS];
        page[0] = Word::new(7);
        page[PAGE_WORDS - 1] = Word::new(8);
        p.write_record(r, &page).unwrap();
        let back = p.read_record(r).unwrap();
        assert_eq!(back[0], Word::new(7));
        assert_eq!(back[PAGE_WORDS - 1], Word::new(8));
    }

    #[test]
    fn free_record_twice_is_an_error() {
        let mut p = DiskPack::new(PackId(0), 1, 1);
        let r = p.allocate_record().unwrap();
        p.free_record(r).unwrap();
        assert!(p.free_record(r).is_err());
        assert!(p.read_record(r).is_err());
    }

    #[test]
    fn toc_entry_lifecycle_frees_records() {
        let mut p = DiskPack::new(PackId(0), 4, 2);
        let idx = p.create_entry(42).unwrap();
        let r0 = p.allocate_record().unwrap();
        let r2 = p.allocate_record().unwrap();
        {
            let e = p.entry_mut(idx).unwrap();
            e.file_map = vec![Some(r0), None, Some(r2)];
            assert_eq!(e.len_pages(), 3);
            assert_eq!(e.records_used(), 2);
        }
        assert_eq!(p.free_records(), 2);
        p.delete_entry(idx).unwrap();
        assert_eq!(p.free_records(), 4, "delete freed the mapped records");
        assert!(p.entry(idx).is_err());
    }

    #[test]
    fn toc_fills_up() {
        let mut p = DiskPack::new(PackId(0), 1, 1);
        p.create_entry(1).unwrap();
        assert_eq!(
            p.create_entry(2),
            Err(DiskError::TocFull { pack: PackId(0) })
        );
    }

    #[test]
    fn zero_pages_charge_nothing() {
        let mut p = DiskPack::new(PackId(0), 8, 1);
        let idx = p.create_entry(9).unwrap();
        let e = p.entry_mut(idx).unwrap();
        e.file_map = vec![None; 100];
        assert_eq!(e.len_pages(), 100);
        assert_eq!(
            e.records_used(),
            0,
            "a 100-page file of zeros stores nothing"
        );
    }

    #[test]
    fn emptiest_pack_excludes_and_prefers_free_space() {
        let mut d = DiskSystem::new();
        let a = d.attach(4, 4);
        let b = d.attach(4, 4);
        let c = d.attach(4, 4);
        // Fill b entirely and c partially.
        for _ in 0..4 {
            d.pack_mut(b).unwrap().allocate_record().unwrap();
        }
        d.pack_mut(c).unwrap().allocate_record().unwrap();
        assert_eq!(
            d.emptiest_pack(a),
            Some(c),
            "b is full, c beats nothing else"
        );
        assert_eq!(d.emptiest_pack(c), Some(a));
        // Exclude the only non-full pack: nothing remains.
        for _ in 0..4 {
            d.pack_mut(a).unwrap().allocate_record().unwrap();
        }
        for _ in 0..3 {
            d.pack_mut(c).unwrap().allocate_record().unwrap();
        }
        assert_eq!(d.emptiest_pack(c), None);
    }

    #[test]
    fn quota_cell_record_stored_in_toc() {
        let mut p = DiskPack::new(PackId(0), 1, 1);
        let idx = p.create_entry(5).unwrap();
        p.entry_mut(idx).unwrap().quota_cell = Some(QuotaCellRecord {
            limit_pages: 100,
            used_pages: 3,
        });
        let e = p.entry(idx).unwrap();
        assert_eq!(e.quota_cell.unwrap().limit_pages, 100);
    }
}
