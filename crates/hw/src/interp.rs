//! The instruction interpreter: programs in segments really execute.
//!
//! A deliberately small accumulator ISA in the 6180 spirit — one 36-bit
//! word per instruction, segment-qualified operand addresses — so that
//! supervisor experiments can run *user programs* whose instruction
//! fetches and data references go through real address translation:
//! a fetch can take a missing-segment fault, a store into a fresh page
//! can raise the quota exception, an indexed loop can spill a working
//! set. The interpreter knows nothing about either supervisor; it just
//! steps a [`Registers`] file against a [`Processor`].
//!
//! ## Instruction format
//!
//! ```text
//!  35      30 29        20 19                 0
//! +----------+------------+--------------------+
//! |  opcode  |   segno    |       offset       |
//! +----------+------------+--------------------+
//! ```
//!
//! Memory operands address `(segno, offset)`; the indexed forms add the
//! X register to the offset. Immediate forms use the offset field as a
//! 20-bit literal.

use crate::clock::{Clock, CostModel, Language};
use crate::cpu::{AccessMode, Processor};
use crate::fault::Fault;
use crate::mem::MainMemory;
use crate::word::Word;
use crate::VirtAddr;

const OP_LO: u32 = 30;
const OP_W: u32 = 6;
const SEG_LO: u32 = 20;
const SEG_W: u32 = 10;
const OFF_LO: u32 = 0;
const OFF_W: u32 = 20;

/// The operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// No operation.
    Nop = 0,
    /// A ← `M[ea]`.
    Lda = 1,
    /// `M[ea]` ← A.
    Sta = 2,
    /// A ← A + `M[ea]` (36-bit wrapping).
    Add = 3,
    /// A ← A − `M[ea]` (36-bit wrapping).
    Sub = 4,
    /// A ← offset (20-bit immediate).
    Ldi = 5,
    /// Compare A with `M[ea]`; sets the EQ/LT flags.
    Cmp = 6,
    /// PC ← (segno, offset).
    Jmp = 7,
    /// PC ← (segno, offset) if EQ.
    Jeq = 8,
    /// PC ← (segno, offset) if not EQ.
    Jne = 9,
    /// PC ← (segno, offset) if LT.
    Jlt = 10,
    /// X ← offset (immediate).
    Ldx = 11,
    /// X ← X + offset (immediate, wrapping 20-bit).
    Inx = 12,
    /// A ← `M[segno, offset + X]`.
    Ldax = 13,
    /// `M[segno, offset + X]` ← A.
    Stax = 14,
    /// A ← X.
    Txa = 15,
    /// X ← A (low 20 bits).
    Tax = 16,
    /// Compare X with offset (immediate); sets EQ/LT.
    Cpx = 17,
    /// Halt.
    Hlt = 18,
}

impl Op {
    fn from_code(code: u64) -> Option<Op> {
        use Op::*;
        Some(match code {
            0 => Nop,
            1 => Lda,
            2 => Sta,
            3 => Add,
            4 => Sub,
            5 => Ldi,
            6 => Cmp,
            7 => Jmp,
            8 => Jeq,
            9 => Jne,
            10 => Jlt,
            11 => Ldx,
            12 => Inx,
            13 => Ldax,
            14 => Stax,
            15 => Txa,
            16 => Tax,
            17 => Cpx,
            18 => Hlt,
            _ => return None,
        })
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Operation.
    pub op: Op,
    /// Operand segment number (ignored by immediate forms).
    pub segno: u32,
    /// Operand offset or immediate.
    pub offset: u32,
}

impl Instr {
    /// An instruction with no operand.
    pub fn bare(op: Op) -> Self {
        Self {
            op,
            segno: 0,
            offset: 0,
        }
    }

    /// An instruction with a memory operand.
    pub fn mem(op: Op, segno: u32, offset: u32) -> Self {
        Self { op, segno, offset }
    }

    /// An instruction with an immediate operand.
    pub fn imm(op: Op, value: u32) -> Self {
        Self {
            op,
            segno: 0,
            offset: value,
        }
    }

    /// Encodes to the 36-bit word representation.
    pub fn encode(self) -> Word {
        Word::ZERO
            .with_field(OP_LO, OP_W, self.op as u64)
            .with_field(SEG_LO, SEG_W, u64::from(self.segno))
            .with_field(OFF_LO, OFF_W, u64::from(self.offset))
    }

    /// Decodes from a word; `None` for an undefined opcode.
    pub fn decode(w: Word) -> Option<Self> {
        Some(Self {
            op: Op::from_code(w.field(OP_LO, OP_W))?,
            segno: w.field(SEG_LO, SEG_W) as u32,
            offset: w.field(OFF_LO, OFF_W) as u32,
        })
    }
}

/// Assembles a program into its word image.
pub fn assemble(program: &[Instr]) -> Vec<Word> {
    program.iter().map(|i| i.encode()).collect()
}

/// The visible register file of an executing program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registers {
    /// Accumulator.
    pub a: Word,
    /// Index register (20 bits used).
    pub x: u32,
    /// Program counter.
    pub pc: VirtAddr,
    /// Equal flag from the last compare.
    pub eq: bool,
    /// Less-than flag from the last compare (A < M, unsigned).
    pub lt: bool,
    /// The program executed HLT.
    pub halted: bool,
}

impl Registers {
    /// A register file starting execution at `pc`.
    pub fn at(pc: VirtAddr) -> Self {
        Self {
            a: Word::ZERO,
            x: 0,
            pc,
            eq: false,
            lt: false,
            halted: false,
        }
    }
}

/// What one step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction completed; execution may continue.
    Ran,
    /// A HLT completed; `regs.halted` is set.
    Halted,
    /// The fetched word does not decode: an illegal-instruction
    /// condition for the supervisor to handle.
    IllegalInstruction,
}

/// Why [`run`] stopped without reaching a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// A translation fault surfaced with no supervisor to service it.
    Fault(Fault),
    /// The program executed `max` steps without halting.
    StepLimit {
        /// The exhausted step budget.
        max: usize,
    },
}

impl core::fmt::Display for InterpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Fault(fault) => write!(f, "unserviced fault: {fault}"),
            Self::StepLimit { max } => write!(f, "program did not halt in {max} steps"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Steps a program until it halts, hits an undecodable word, faults, or
/// exhausts `max` steps. Drivers with a fault handler should loop over
/// [`step`] instead; this is for programs expected to run fault-free.
///
/// # Errors
///
/// [`InterpError::Fault`] on any translation fault,
/// [`InterpError::StepLimit`] if the budget runs out first.
pub fn run(
    cpu: &mut Processor,
    mem: &mut MainMemory,
    clock: &mut Clock,
    cost: &CostModel,
    regs: &mut Registers,
    max: usize,
) -> Result<StepOutcome, InterpError> {
    for _ in 0..max {
        match step(cpu, mem, clock, cost, regs).map_err(InterpError::Fault)? {
            StepOutcome::Ran => {}
            other => return Ok(other),
        }
    }
    Err(InterpError::StepLimit { max })
}

/// Executes one instruction through the processor's address translation.
///
/// Faults (missing segment, missing page, quota, access, bounds) are
/// returned for the supervisor's fault dispatcher, exactly like a data
/// reference; the program counter is left *at* the faulting instruction
/// so the reference re-executes after service.
///
/// # Errors
///
/// Any translation [`Fault`] from the fetch or the operand reference.
pub fn step(
    cpu: &mut Processor,
    mem: &mut MainMemory,
    clock: &mut Clock,
    cost: &CostModel,
    regs: &mut Registers,
) -> Result<StepOutcome, Fault> {
    if regs.halted {
        return Ok(StepOutcome::Halted);
    }
    // Fetch (execute access).
    let fetch_abs = cpu.translate(mem, clock, cost, regs.pc, AccessMode::Execute)?;
    clock.charge_core_access(cost);
    let raw = mem.read(fetch_abs);
    let Some(instr) = Instr::decode(raw) else {
        return Ok(StepOutcome::IllegalInstruction);
    };
    clock.charge_instructions(cost, 1, Language::Assembly);

    let ea = |x: u32| VirtAddr::new(instr.segno, instr.offset.wrapping_add(x) & 0xF_FFFF);
    let next = VirtAddr::new(regs.pc.segno, regs.pc.wordno + 1);
    use Op::*;
    match instr.op {
        Nop => regs.pc = next,
        Lda => {
            regs.a = read_operand(cpu, mem, clock, cost, ea(0))?;
            regs.pc = next;
        }
        Ldax => {
            regs.a = read_operand(cpu, mem, clock, cost, ea(regs.x))?;
            regs.pc = next;
        }
        Sta => {
            write_operand(cpu, mem, clock, cost, ea(0), regs.a)?;
            regs.pc = next;
        }
        Stax => {
            write_operand(cpu, mem, clock, cost, ea(regs.x), regs.a)?;
            regs.pc = next;
        }
        Add => {
            let m = read_operand(cpu, mem, clock, cost, ea(0))?;
            regs.a = regs.a.wrapping_add(m);
            regs.pc = next;
        }
        Sub => {
            let m = read_operand(cpu, mem, clock, cost, ea(0))?;
            // 36-bit wrapping subtract: add the two's complement.
            let complement = Word::new((!m.raw()).wrapping_add(1));
            regs.a = regs.a.wrapping_add(complement);
            regs.pc = next;
        }
        Ldi => {
            regs.a = Word::new(u64::from(instr.offset));
            regs.pc = next;
        }
        Cmp => {
            let m = read_operand(cpu, mem, clock, cost, ea(0))?;
            regs.eq = regs.a == m;
            regs.lt = regs.a.raw() < m.raw();
            regs.pc = next;
        }
        Cpx => {
            regs.eq = regs.x == instr.offset;
            regs.lt = regs.x < instr.offset;
            regs.pc = next;
        }
        Jmp => regs.pc = VirtAddr::new(instr.segno, instr.offset),
        Jeq => {
            regs.pc = if regs.eq {
                VirtAddr::new(instr.segno, instr.offset)
            } else {
                next
            }
        }
        Jne => {
            regs.pc = if !regs.eq {
                VirtAddr::new(instr.segno, instr.offset)
            } else {
                next
            }
        }
        Jlt => {
            regs.pc = if regs.lt {
                VirtAddr::new(instr.segno, instr.offset)
            } else {
                next
            }
        }
        Ldx => {
            regs.x = instr.offset;
            regs.pc = next;
        }
        Inx => {
            regs.x = regs.x.wrapping_add(instr.offset) & 0xF_FFFF;
            regs.pc = next;
        }
        Txa => {
            regs.a = Word::new(u64::from(regs.x));
            regs.pc = next;
        }
        Tax => {
            regs.x = (regs.a.raw() & 0xF_FFFF) as u32;
            regs.pc = next;
        }
        Hlt => {
            regs.halted = true;
            regs.pc = next;
            return Ok(StepOutcome::Halted);
        }
    }
    Ok(StepOutcome::Ran)
}

fn read_operand(
    cpu: &mut Processor,
    mem: &mut MainMemory,
    clock: &mut Clock,
    cost: &CostModel,
    va: VirtAddr,
) -> Result<Word, Fault> {
    cpu.read(mem, clock, cost, va)
}

fn write_operand(
    cpu: &mut Processor,
    mem: &mut MainMemory,
    clock: &mut Clock,
    cost: &CostModel,
    va: VirtAddr,
    value: Word,
) -> Result<(), Fault> {
    cpu.write(mem, clock, cost, va, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{DescBase, HwFeatures, Ptw, Sdw};
    use crate::mem::{FrameNo, PAGE_WORDS};
    use crate::ProcessorId;

    /// One segment (0): pages 0..4 mapped to frames 2..6; RWE access.
    fn setup() -> (MainMemory, Clock, CostModel, Processor) {
        let mut mem = MainMemory::new(16);
        let pt = FrameNo(1).base();
        for p in 0..4u32 {
            mem.write(
                pt.add(u64::from(p)),
                Ptw {
                    frame: FrameNo(2 + p),
                    present: true,
                    ..Ptw::default()
                }
                .encode(),
            );
        }
        let sdw = Sdw {
            page_table: pt,
            bound_pages: 4,
            read: true,
            write: true,
            execute: true,
            present: true,
            software: false,
        };
        mem.write(FrameNo(0).base(), sdw.encode());
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(DescBase {
            base: FrameNo(0).base(),
            len: 1,
        });
        (mem, Clock::new(), CostModel::default(), cpu)
    }

    fn load(mem: &mut MainMemory, at: u32, words: &[Word]) {
        // Segment page p is frame 2+p in this rig.
        for (i, w) in words.iter().enumerate() {
            let va = at + i as u32;
            let abs = FrameNo(2 + va / PAGE_WORDS as u32)
                .base()
                .add(u64::from(va % PAGE_WORDS as u32));
            mem.write(abs, *w);
        }
    }

    #[test]
    fn instr_codec_round_trips() {
        for i in [
            Instr::mem(Op::Lda, 3, 0x12345),
            Instr::imm(Op::Ldi, 0xF_FFFF),
            Instr::bare(Op::Hlt),
            Instr::mem(Op::Stax, 1023, 0),
        ] {
            assert_eq!(Instr::decode(i.encode()), Some(i));
        }
        assert_eq!(
            Instr::decode(Word::new(63 << 30)),
            None,
            "opcode 63 undefined"
        );
    }

    #[test]
    fn arithmetic_and_store() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        // data at word 100..102; program at 0.
        load(&mut mem, 100, &[Word::new(7), Word::new(5)]);
        let prog = assemble(&[
            Instr::mem(Op::Lda, 0, 100),
            Instr::mem(Op::Add, 0, 101),
            Instr::mem(Op::Sta, 0, 102),
            Instr::mem(Op::Sub, 0, 101),
            Instr::bare(Op::Hlt),
        ]);
        load(&mut mem, 0, &prog);
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        let out = run(&mut cpu, &mut mem, &mut clock, &cost, &mut regs, 10).expect("runs clean");
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(regs.a, Word::new(7));
        // The stored sum landed in segment word 102 (frame 2, offset 102).
        assert_eq!(mem.read(FrameNo(2).base().add(102)), Word::new(12));
    }

    #[test]
    fn loop_sums_an_array_across_pages() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        // 1500 words of value 1 starting at word 1000 (crosses page 0→1).
        let ones = vec![Word::new(1); 1500];
        load(&mut mem, 1000, &ones);
        // sum += arr[X], kept in a memory cell at word 900:
        // A = arr[X]; A += sum; sum = A.
        let prog = assemble(&[
            Instr::imm(Op::Ldi, 0),      // 0: A = 0
            Instr::mem(Op::Sta, 0, 900), // 1: sum = 0
            Instr::imm(Op::Ldx, 0),      // 2: X = 0
            // loop @3:
            Instr::mem(Op::Ldax, 0, 1000), // 3: A = arr[X]
            Instr::mem(Op::Add, 0, 900),   // 4: A += sum
            Instr::mem(Op::Sta, 0, 900),   // 5: sum = A
            Instr::imm(Op::Inx, 1),        // 6: X += 1
            Instr::imm(Op::Cpx, 1500),     // 7: X == 1500?
            Instr::mem(Op::Jne, 0, 3),     // 8: loop
            Instr::mem(Op::Lda, 0, 900),   // 9: A = sum
            Instr::bare(Op::Hlt),          // 10
        ]);
        load(&mut mem, 0, &prog);
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        let out =
            run(&mut cpu, &mut mem, &mut clock, &cost, &mut regs, 20_000).expect("runs clean");
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(regs.a, Word::new(1500));
        assert!(clock.instructions_executed() > 9000, "the loop really ran");
    }

    #[test]
    fn compare_and_branches() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        load(&mut mem, 200, &[Word::new(10)]);
        let prog = assemble(&[
            Instr::imm(Op::Ldi, 9),      // 0
            Instr::mem(Op::Cmp, 0, 200), // 1: 9 < 10 -> LT, !EQ
            Instr::mem(Op::Jlt, 0, 4),   // 2: taken
            Instr::bare(Op::Hlt),        // 3: (skipped)
            Instr::imm(Op::Ldi, 77),     // 4
            Instr::bare(Op::Hlt),        // 5
        ]);
        load(&mut mem, 0, &prog);
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        run(&mut cpu, &mut mem, &mut clock, &cost, &mut regs, 10).expect("runs clean");
        assert_eq!(regs.a, Word::new(77));
        assert!(regs.lt && !regs.eq);
    }

    #[test]
    fn nonterminating_program_reports_step_limit() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        load(&mut mem, 0, &assemble(&[Instr::mem(Op::Jmp, 0, 0)]));
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        let err = run(&mut cpu, &mut mem, &mut clock, &cost, &mut regs, 25).unwrap_err();
        assert_eq!(err, InterpError::StepLimit { max: 25 });
    }

    #[test]
    fn faults_leave_pc_on_the_faulting_instruction() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        // Mark page 3 missing.
        let pt = FrameNo(1).base();
        mem.write(pt.add(3), Ptw::default().encode());
        let prog = assemble(&[
            Instr::mem(Op::Lda, 0, 3 * PAGE_WORDS as u32),
            Instr::bare(Op::Hlt),
        ]);
        load(&mut mem, 0, &prog);
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        let err = step(&mut cpu, &mut mem, &mut clock, &cost, &mut regs).unwrap_err();
        assert!(matches!(err, Fault::MissingPage { .. }));
        assert_eq!(regs.pc, VirtAddr::new(0, 0), "re-executes after service");
        // Service it (hand-install the page) and re-step.
        mem.write(
            pt.add(3),
            Ptw {
                frame: FrameNo(5),
                present: true,
                ..Ptw::default()
            }
            .encode(),
        );
        assert_eq!(
            step(&mut cpu, &mut mem, &mut clock, &cost, &mut regs).unwrap(),
            StepOutcome::Ran
        );
        assert_eq!(regs.pc, VirtAddr::new(0, 1));
    }

    #[test]
    fn illegal_instruction_is_reported_not_executed() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        load(&mut mem, 0, &[Word::new(63 << 30)]);
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        assert_eq!(
            step(&mut cpu, &mut mem, &mut clock, &cost, &mut regs).unwrap(),
            StepOutcome::IllegalInstruction
        );
    }

    #[test]
    fn execute_permission_is_enforced_on_fetch() {
        let (mut mem, mut clock, cost, mut cpu) = setup();
        // Strip execute from the SDW.
        let mut sdw = Sdw::decode(mem.read(FrameNo(0).base()));
        sdw.execute = false;
        mem.write(FrameNo(0).base(), sdw.encode());
        let mut regs = Registers::at(VirtAddr::new(0, 0));
        let err = step(&mut cpu, &mut mem, &mut clock, &cost, &mut regs).unwrap_err();
        assert!(matches!(err, Fault::AccessViolation { .. }));
    }
}
