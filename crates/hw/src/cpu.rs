//! The simulated processor: descriptor-driven address translation.
//!
//! Translation walks real data structures in simulated core: a *descriptor
//! segment* (an array of segment descriptor words, [`Sdw`]) located by a
//! descriptor base register, and per-segment *page tables* (arrays of page
//! table words, [`Ptw`]). Supervisor software builds and owns those
//! tables; the processor only reads them — and, with the paper's proposed
//! `descriptor_lock` addition, atomically sets the lock bit in a missing
//! page's descriptor while taking the fault.
//!
//! With the `dual_dbr` feature (the paper's second address-translation
//! base register), segment numbers below [`Processor::system_segno_limit`]
//! translate through a per-processor *system* descriptor table that lives
//! in permanently resident core, so that system modules using those
//! numbers cannot depend on the machinery supporting user address spaces.

use crate::clock::{Clock, CostModel, RefCharges};
use crate::fault::Fault;
use crate::mem::{AbsAddr, FrameNo, MainMemory, PAGE_WORDS};
use crate::tlb::{Tlb, TlbEntry};
use crate::word::Word;
use crate::VirtAddr;

/// Identifies one of the machine's (real) processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessorId(pub u32);

/// The kind of access a reference makes, checked against SDW permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

/// Optional hardware features — the paper's proposed processor additions.
///
/// The legacy supervisor runs with [`HwFeatures::BASE_1974`]; the new
/// kernel design requires [`HwFeatures::KERNEL_PROPOSED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwFeatures {
    /// Second descriptor base register: per-processor system address
    /// space for low segment numbers.
    pub dual_dbr: bool,
    /// Lock bit in page descriptors, set atomically on a missing-page
    /// fault, plus the locked-page-descriptor exception.
    pub descriptor_lock: bool,
    /// Exception-causing bit distinguishing never-before-used pages:
    /// raises [`Fault::QuotaTrap`] instead of [`Fault::MissingPage`].
    pub quota_trap: bool,
    /// Wakeup-waiting switch + locked-descriptor address register,
    /// preventing lost notifications between a locked-descriptor
    /// exception and the wait primitive.
    pub wakeup_waiting: bool,
    /// SDW/PTW associative memory: hardware the 6180 already had, which
    /// hides the two descriptor fetches of the walk behind a translation
    /// cache (see [`crate::tlb`]). On in both feature sets; switchable
    /// only so its contribution can be ablated.
    pub associative_memory: bool,
}

impl HwFeatures {
    /// The unmodified 1974 hardware base the old supervisor ran on.
    pub const BASE_1974: HwFeatures = HwFeatures {
        dual_dbr: false,
        descriptor_lock: false,
        quota_trap: false,
        wakeup_waiting: false,
        associative_memory: true,
    };

    /// All of the paper's proposed additions enabled.
    pub const KERNEL_PROPOSED: HwFeatures = HwFeatures {
        dual_dbr: true,
        descriptor_lock: true,
        quota_trap: true,
        wakeup_waiting: true,
        associative_memory: true,
    };
}

// SDW field layout (one 36-bit word per segment):
//   bits  0..22  page-table base (absolute word address)
//   bits 22..31  bound: number of pages in the segment (0..=511)
//   bit  31      read permitted
//   bit  32      write permitted
//   bit  33      execute permitted
//   bit  34      present (connected); 0 raises a missing-segment fault
//   bit  35      software-defined (the kernels use it to tag directories)
const SDW_PT_BASE_LO: u32 = 0;
const SDW_PT_BASE_W: u32 = 22;
const SDW_BOUND_LO: u32 = 22;
const SDW_BOUND_W: u32 = 9;
const SDW_READ: u32 = 31;
const SDW_WRITE: u32 = 32;
const SDW_EXECUTE: u32 = 33;
const SDW_PRESENT: u32 = 34;
const SDW_SOFTWARE: u32 = 35;

/// A decoded segment descriptor word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sdw {
    /// Absolute address of the segment's page table.
    pub page_table: AbsAddr,
    /// Number of pages the segment may occupy (the hardware bound).
    pub bound_pages: u32,
    /// Read access permitted.
    pub read: bool,
    /// Write access permitted.
    pub write: bool,
    /// Execute access permitted.
    pub execute: bool,
    /// Segment connected; a reference through a non-present SDW raises a
    /// missing-segment fault.
    pub present: bool,
    /// Free software-defined flag.
    pub software: bool,
}

impl Sdw {
    /// Encodes the descriptor into its 36-bit memory representation.
    pub fn encode(self) -> Word {
        let mut w = Word::ZERO
            .with_field(SDW_PT_BASE_LO, SDW_PT_BASE_W, self.page_table.0)
            .with_field(SDW_BOUND_LO, SDW_BOUND_W, self.bound_pages as u64);
        if self.read {
            w = w.with_bit(SDW_READ);
        }
        if self.write {
            w = w.with_bit(SDW_WRITE);
        }
        if self.execute {
            w = w.with_bit(SDW_EXECUTE);
        }
        if self.present {
            w = w.with_bit(SDW_PRESENT);
        }
        if self.software {
            w = w.with_bit(SDW_SOFTWARE);
        }
        w
    }

    /// Decodes a descriptor from its memory representation.
    pub fn decode(w: Word) -> Self {
        Sdw {
            page_table: AbsAddr(w.field(SDW_PT_BASE_LO, SDW_PT_BASE_W)),
            bound_pages: w.field(SDW_BOUND_LO, SDW_BOUND_W) as u32,
            read: w.bit(SDW_READ),
            write: w.bit(SDW_WRITE),
            execute: w.bit(SDW_EXECUTE),
            present: w.bit(SDW_PRESENT),
            software: w.bit(SDW_SOFTWARE),
        }
    }

    /// True if the descriptor permits the given access mode.
    pub fn permits(&self, mode: AccessMode) -> bool {
        match mode {
            AccessMode::Read => self.read,
            AccessMode::Write => self.write,
            AccessMode::Execute => self.execute,
        }
    }
}

// PTW field layout (one 36-bit word per page):
//   bits  0..13  core frame number
//   bit  30      quota-trap (never-before-used page; with the quota_trap
//                feature a reference raises a quota fault)
//   bit  31      locked (descriptor lock bit)
//   bit  32      used (set by hardware on any reference)
//   bit  33      modified (set by hardware on a write)
//   bit  34      present (page is in the named core frame)
//   bit  35      wired (software: never evict)
const PTW_FRAME_LO: u32 = 0;
const PTW_FRAME_W: u32 = 13;
const PTW_QUOTA_TRAP: u32 = 30;
const PTW_LOCKED: u32 = 31;
const PTW_USED: u32 = 32;
const PTW_MODIFIED: u32 = 33;
const PTW_PRESENT: u32 = 34;
const PTW_WIRED: u32 = 35;

/// A decoded page table word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ptw {
    /// Core frame holding the page, meaningful only when `present`.
    pub frame: FrameNo,
    /// The page has never been used: a reference means the page must be
    /// created, so quota must be checked first.
    pub quota_trap: bool,
    /// Descriptor lock bit (the paper's proposed addition).
    pub locked: bool,
    /// Referenced since last cleared (hardware-maintained).
    pub used: bool,
    /// Written since last cleared (hardware-maintained).
    pub modified: bool,
    /// Page resident in core.
    pub present: bool,
    /// Software wired: replacement must skip this page.
    pub wired: bool,
}

impl Ptw {
    /// Encodes the page table word into its memory representation.
    pub fn encode(self) -> Word {
        let mut w = Word::ZERO.with_field(PTW_FRAME_LO, PTW_FRAME_W, self.frame.0 as u64);
        if self.quota_trap {
            w = w.with_bit(PTW_QUOTA_TRAP);
        }
        if self.locked {
            w = w.with_bit(PTW_LOCKED);
        }
        if self.used {
            w = w.with_bit(PTW_USED);
        }
        if self.modified {
            w = w.with_bit(PTW_MODIFIED);
        }
        if self.present {
            w = w.with_bit(PTW_PRESENT);
        }
        if self.wired {
            w = w.with_bit(PTW_WIRED);
        }
        w
    }

    /// Decodes a page table word from memory representation.
    pub fn decode(w: Word) -> Self {
        Ptw {
            frame: FrameNo(w.field(PTW_FRAME_LO, PTW_FRAME_W) as u32),
            quota_trap: w.bit(PTW_QUOTA_TRAP),
            locked: w.bit(PTW_LOCKED),
            used: w.bit(PTW_USED),
            modified: w.bit(PTW_MODIFIED),
            present: w.bit(PTW_PRESENT),
            wired: w.bit(PTW_WIRED),
        }
    }
}

/// A descriptor base register: locates a descriptor segment in core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescBase {
    /// Absolute address of the first SDW.
    pub base: AbsAddr,
    /// Number of SDWs (one per segment number).
    pub len: u32,
}

/// One simulated processor.
///
/// Holds the translation registers plus the paper's proposed
/// wakeup-waiting switch and locked-descriptor address register.
#[derive(Debug, Clone)]
pub struct Processor {
    /// This processor's identity.
    pub id: ProcessorId,
    /// Hardware features in force.
    pub features: HwFeatures,
    /// Descriptor base register for the (per-process) user address space.
    pub dbr_user: Option<DescBase>,
    /// Descriptor base register for the per-processor system address
    /// space (meaningful only with `dual_dbr`).
    pub dbr_system: Option<DescBase>,
    /// Segment numbers strictly below this value translate through the
    /// system descriptor table when `dual_dbr` is on.
    pub system_segno_limit: u32,
    /// Wakeup-waiting switch: set by a notification that arrives between
    /// a locked-descriptor exception and the wait primitive, so the
    /// notification is not lost.
    pub wakeup_waiting: bool,
    /// Absolute address of the page descriptor whose lock bit caused the
    /// most recent locked-descriptor exception. Cleared by the next
    /// translation this processor completes.
    pub locked_descriptor_reg: Option<AbsAddr>,
    /// The SDW/PTW associative memory (consulted only when
    /// `features.associative_memory` is on).
    pub tlb: Tlb,
    /// User operations this processor retired (load-harness counter:
    /// user-level reads, writes and program runs served on this CPU).
    pub ops_retired: u64,
}

impl Processor {
    /// A processor with no address spaces loaded.
    pub fn new(id: ProcessorId, features: HwFeatures) -> Self {
        Self {
            id,
            features,
            dbr_user: None,
            dbr_system: None,
            system_segno_limit: 0,
            wakeup_waiting: false,
            locked_descriptor_reg: None,
            tlb: Tlb::new(),
            ops_retired: 0,
        }
    }

    /// Selects the descriptor table a segment number translates through.
    fn select_dbr(&self, segno: u32) -> Option<DescBase> {
        if self.features.dual_dbr && segno < self.system_segno_limit {
            self.dbr_system
        } else {
            self.dbr_user
        }
    }

    /// Translates a virtual address to an absolute core address.
    ///
    /// Walks the descriptor segment and page table in `mem`, maintaining
    /// the used/modified bits, honouring the lock and quota-trap bits
    /// according to [`HwFeatures`], and charging the clock for each
    /// descriptor fetch and for fault overhead.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the reference raises, if any. When the
    /// `descriptor_lock` feature is on and a missing-page fault is taken,
    /// the lock bit has already been set in the page descriptor by the
    /// time this returns.
    pub fn translate(
        &mut self,
        mem: &mut MainMemory,
        clock: &mut Clock,
        cost: &CostModel,
        va: VirtAddr,
        mode: AccessMode,
    ) -> Result<AbsAddr, Fault> {
        let mut pending = RefCharges::default();
        let abs = self.translate_batched(mem, clock, cost, va, mode, &mut pending)?;
        clock.charge_reference(cost, pending);
        Ok(abs)
    }

    /// The translation walk itself, accumulating descriptor-fetch and
    /// PTW-write-back charges into `pending` instead of charging the
    /// clock per step. This is the simulator's hottest loop; none of the
    /// accumulated charges records a trace event and no caller observes
    /// the clock mid-reference, so deferring them is attribution-exact.
    ///
    /// Flush discipline: every fault return flushes `pending` *before*
    /// charging the fault, so the fault event's timestamp sees the
    /// translation work already on the clock — byte-identical to the
    /// unbatched charge sequence. A successful return leaves `pending`
    /// unflushed so [`Processor::read`]/[`Processor::write`] can fold
    /// the core access into the same single meter attribution.
    fn translate_batched(
        &mut self,
        mem: &mut MainMemory,
        clock: &mut Clock,
        cost: &CostModel,
        va: VirtAddr,
        mode: AccessMode,
        pending: &mut RefCharges,
    ) -> Result<AbsAddr, Fault> {
        let fault = |clock: &mut Clock, pending: &mut RefCharges, f: Fault| {
            clock.charge_reference(cost, std::mem::take(pending));
            clock.charge_fault(cost);
            Err(f)
        };

        let Some(dbr) = self.select_dbr(va.segno) else {
            return fault(clock, pending, Fault::BadDescriptor { va });
        };

        // Associative-memory probe: a hit answers without touching the
        // descriptor tables, so neither descriptor fetch is charged.
        if self.features.associative_memory {
            if let Some(entry) = self.tlb.lookup(dbr.base, va.segno, va.pageno()) {
                let abs = entry.frame.base().add(u64::from(va.offset_in_page()));
                if entry.permits(mode) && mem.contains(abs) {
                    if mode == AccessMode::Write && !entry.modified {
                        // The walk would have set the modified bit in the
                        // PTW; do the same write-back so the core image
                        // stays byte-identical with the cache off.
                        entry.modified = true;
                        let ptw_addr = entry.ptw_addr;
                        let mut ptw = Ptw::decode(mem.read(ptw_addr));
                        ptw.used = true;
                        ptw.modified = true;
                        mem.write(ptw_addr, ptw.encode());
                        pending.ptw_updates += 1;
                    }
                    self.locked_descriptor_reg = None;
                    return Ok(abs);
                }
                // Cached access bits refuse the mode: fall through to the
                // full walk, which re-checks everything against the live
                // descriptors and raises the correct fault.
            }
        }

        if va.segno >= dbr.len {
            return fault(clock, pending, Fault::MissingSegment { va });
        }
        let sdw_addr = dbr.base.add(va.segno as u64);
        if !mem.contains(sdw_addr) {
            return fault(clock, pending, Fault::BadDescriptor { va });
        }
        pending.descriptor_fetches += 1;
        let sdw = Sdw::decode(mem.read(sdw_addr));
        if !sdw.present {
            return fault(clock, pending, Fault::MissingSegment { va });
        }
        if !sdw.permits(mode) {
            return fault(clock, pending, Fault::AccessViolation { va });
        }
        let pageno = va.pageno();
        if pageno >= sdw.bound_pages {
            return fault(clock, pending, Fault::BoundsViolation { va });
        }
        let ptw_addr = sdw.page_table.add(pageno as u64);
        if !mem.contains(ptw_addr) {
            return fault(clock, pending, Fault::BadDescriptor { va });
        }
        pending.descriptor_fetches += 1;
        let mut ptw = Ptw::decode(mem.read(ptw_addr));

        if self.features.descriptor_lock && ptw.locked {
            self.locked_descriptor_reg = Some(ptw_addr);
            return fault(
                clock,
                pending,
                Fault::LockedDescriptor {
                    va,
                    descriptor: ptw_addr,
                },
            );
        }
        if !ptw.present {
            if self.features.quota_trap && ptw.quota_trap {
                return fault(
                    clock,
                    pending,
                    Fault::QuotaTrap {
                        va,
                        descriptor: ptw_addr,
                    },
                );
            }
            let locked_by_hw = if self.features.descriptor_lock {
                ptw.locked = true;
                mem.write(ptw_addr, ptw.encode());
                pending.ptw_updates += 1;
                true
            } else {
                false
            };
            return fault(
                clock,
                pending,
                Fault::MissingPage {
                    va,
                    descriptor: ptw_addr,
                    locked_by_hw,
                },
            );
        }

        // Maintain the hardware-set reference bits.
        let dirty = mode == AccessMode::Write;
        if !ptw.used || (dirty && !ptw.modified) {
            ptw.used = true;
            ptw.modified |= dirty;
            mem.write(ptw_addr, ptw.encode());
            pending.ptw_updates += 1;
        }

        let frame_base = ptw.frame.base();
        let abs = frame_base.add(va.offset_in_page() as u64);
        if !mem.contains(abs) {
            return fault(clock, pending, Fault::BadDescriptor { va });
        }
        if self.features.associative_memory {
            self.tlb.fill(TlbEntry {
                asid: dbr.base,
                segno: va.segno,
                pageno,
                sdw_addr,
                ptw_addr,
                frame: ptw.frame,
                read: sdw.read,
                write: sdw.write,
                execute: sdw.execute,
                modified: ptw.modified,
                lru: 0,
            });
        }
        // A completed translation clears the locked-descriptor register.
        self.locked_descriptor_reg = None;
        Ok(abs)
    }

    /// Reads one word through address translation, charging a core access.
    ///
    /// # Errors
    ///
    /// Propagates any translation fault.
    pub fn read(
        &mut self,
        mem: &mut MainMemory,
        clock: &mut Clock,
        cost: &CostModel,
        va: VirtAddr,
    ) -> Result<Word, Fault> {
        let mut pending = RefCharges::default();
        let abs = self.translate_batched(mem, clock, cost, va, AccessMode::Read, &mut pending)?;
        pending.core_accesses += 1;
        clock.charge_reference(cost, pending);
        Ok(mem.read(abs))
    }

    /// Writes one word through address translation, charging a core access.
    ///
    /// # Errors
    ///
    /// Propagates any translation fault.
    pub fn write(
        &mut self,
        mem: &mut MainMemory,
        clock: &mut Clock,
        cost: &CostModel,
        va: VirtAddr,
        value: Word,
    ) -> Result<(), Fault> {
        let mut pending = RefCharges::default();
        let abs = self.translate_batched(mem, clock, cost, va, AccessMode::Write, &mut pending)?;
        pending.core_accesses += 1;
        clock.charge_reference(cost, pending);
        mem.write(abs, value);
        Ok(())
    }

    /// Consumes and returns the wakeup-waiting switch (clearing it).
    ///
    /// The wait primitive calls this: a `true` means a notification
    /// arrived since the locked-descriptor exception and the process
    /// should not block.
    pub fn take_wakeup_waiting(&mut self) -> bool {
        std::mem::take(&mut self.wakeup_waiting)
    }

    /// Counts one completed user operation against this processor.
    pub fn retire_op(&mut self) {
        self.ops_retired += 1;
    }
}

/// Number of words a descriptor segment with `n` SDWs occupies.
pub fn descriptor_segment_words(n: u32) -> u64 {
    u64::from(n)
}

/// Number of words a page table with `n` PTWs occupies.
pub fn page_table_words(n: u32) -> u64 {
    u64::from(n)
}

/// Number of whole pages needed to hold `words` words.
pub fn pages_for_words(words: u64) -> u32 {
    words.div_ceil(PAGE_WORDS as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MainMemory, Clock, CostModel) {
        (MainMemory::new(32), Clock::new(), CostModel::default())
    }

    /// Hand-builds a one-segment address space: descriptor table at frame
    /// 0, page table at frame 1, data pages at frames 2..2+pages.
    fn build_space(mem: &mut MainMemory, pages: u32, present: bool) -> DescBase {
        let pt_base = FrameNo(1).base();
        for p in 0..pages {
            let ptw = Ptw {
                frame: FrameNo(2 + p),
                present,
                ..Ptw::default()
            };
            mem.write(pt_base.add(p as u64), ptw.encode());
        }
        let sdw = Sdw {
            page_table: pt_base,
            bound_pages: pages,
            read: true,
            write: true,
            execute: false,
            present: true,
            software: false,
        };
        let base = FrameNo(0).base();
        mem.write(base, sdw.encode());
        DescBase { base, len: 1 }
    }

    #[test]
    fn sdw_ptw_encode_decode_round_trip() {
        let sdw = Sdw {
            page_table: AbsAddr(0o123456),
            bound_pages: 257,
            read: true,
            write: false,
            execute: true,
            present: true,
            software: true,
        };
        assert_eq!(Sdw::decode(sdw.encode()), sdw);
        let ptw = Ptw {
            frame: FrameNo(4095),
            quota_trap: true,
            locked: true,
            used: false,
            modified: true,
            present: false,
            wired: true,
        };
        assert_eq!(Ptw::decode(ptw.encode()), ptw);
    }

    #[test]
    fn translate_and_read_write_round_trip() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 2, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(dbr);
        let va = VirtAddr::new(0, PAGE_WORDS as u32 + 7);
        cpu.write(&mut mem, &mut clock, &cost, va, Word::new(0o55))
            .unwrap();
        assert_eq!(
            cpu.read(&mut mem, &mut clock, &cost, va).unwrap(),
            Word::new(0o55)
        );
        // The word landed in frame 3 (second page) at offset 7.
        assert_eq!(mem.read(FrameNo(3).base().add(7)), Word::new(0o55));
    }

    #[test]
    fn write_sets_used_and_modified_bits() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(dbr);
        cpu.write(
            &mut mem,
            &mut clock,
            &cost,
            VirtAddr::new(0, 0),
            Word::new(1),
        )
        .unwrap();
        let ptw = Ptw::decode(mem.read(FrameNo(1).base()));
        assert!(ptw.used && ptw.modified);
    }

    #[test]
    fn read_sets_used_but_not_modified() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(dbr);
        cpu.read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 3))
            .unwrap();
        let ptw = Ptw::decode(mem.read(FrameNo(1).base()));
        assert!(ptw.used && !ptw.modified);
    }

    #[test]
    fn missing_page_without_lock_feature() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, false);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(dbr);
        let err = cpu
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap_err();
        match err {
            Fault::MissingPage { locked_by_hw, .. } => assert!(!locked_by_hw),
            other => panic!("expected missing page, got {other}"),
        }
        // Without the feature the lock bit stays clear.
        assert!(!Ptw::decode(mem.read(FrameNo(1).base())).locked);
        assert_eq!(clock.faults(), 1);
    }

    #[test]
    fn missing_page_with_lock_feature_sets_lock_bit() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, false);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.dbr_user = Some(dbr);
        let err = cpu
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap_err();
        match err {
            Fault::MissingPage {
                locked_by_hw,
                descriptor,
                ..
            } => {
                assert!(locked_by_hw);
                assert!(Ptw::decode(mem.read(descriptor)).locked);
            }
            other => panic!("expected missing page, got {other}"),
        }
        // A second processor touching the same page now takes the
        // locked-descriptor exception instead of a duplicate page fault.
        let mut cpu2 = Processor::new(ProcessorId(1), HwFeatures::KERNEL_PROPOSED);
        cpu2.dbr_user = Some(dbr);
        let err2 = cpu2
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap_err();
        assert!(matches!(err2, Fault::LockedDescriptor { .. }));
        assert!(cpu2.locked_descriptor_reg.is_some());
    }

    #[test]
    fn quota_trap_bit_raises_quota_fault_only_with_feature() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, false);
        // Mark the page never-before-used.
        let ptw_addr = FrameNo(1).base();
        let mut ptw = Ptw::decode(mem.read(ptw_addr));
        ptw.quota_trap = true;
        mem.write(ptw_addr, ptw.encode());

        let mut old = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        old.dbr_user = Some(dbr);
        let f = old
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap_err();
        assert!(
            matches!(f, Fault::MissingPage { .. }),
            "old hardware sees a page fault"
        );

        let mut new = Processor::new(ProcessorId(1), HwFeatures::KERNEL_PROPOSED);
        new.dbr_user = Some(dbr);
        let f = new
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap_err();
        assert!(
            matches!(f, Fault::QuotaTrap { .. }),
            "new hardware distinguishes quota"
        );
    }

    #[test]
    fn dual_dbr_routes_low_segnos_to_system_space() {
        let (mut mem, mut clock, cost) = setup();
        // System space: segment 0 maps frame 2. User space: segment 0
        // would map frame 3, but segno 0 < limit must hit the system one.
        let sys_pt = FrameNo(1).base();
        mem.write(
            sys_pt,
            Ptw {
                frame: FrameNo(2),
                present: true,
                ..Ptw::default()
            }
            .encode(),
        );
        let sys_sdw = Sdw {
            page_table: sys_pt,
            bound_pages: 1,
            read: true,
            write: true,
            execute: true,
            present: true,
            software: false,
        };
        mem.write(FrameNo(0).base(), sys_sdw.encode());

        let user_pt = FrameNo(4).base();
        mem.write(
            user_pt,
            Ptw {
                frame: FrameNo(3),
                present: true,
                ..Ptw::default()
            }
            .encode(),
        );
        let user_sdw = Sdw {
            page_table: user_pt,
            ..sys_sdw
        };
        mem.write(FrameNo(5).base(), user_sdw.encode());

        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.dbr_system = Some(DescBase {
            base: FrameNo(0).base(),
            len: 1,
        });
        cpu.dbr_user = Some(DescBase {
            base: FrameNo(5).base(),
            len: 1,
        });
        cpu.system_segno_limit = 1;

        mem.write(FrameNo(2).base(), Word::new(0o111));
        mem.write(FrameNo(3).base(), Word::new(0o222));
        let got = cpu
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap();
        assert_eq!(
            got,
            Word::new(0o111),
            "segno 0 translated via the system space"
        );
    }

    #[test]
    fn access_and_bounds_checks() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(dbr);
        let exec = cpu.translate(
            &mut mem,
            &mut clock,
            &cost,
            VirtAddr::new(0, 0),
            AccessMode::Execute,
        );
        assert!(matches!(exec, Err(Fault::AccessViolation { .. })));
        let oob = cpu.read(
            &mut mem,
            &mut clock,
            &cost,
            VirtAddr::new(0, PAGE_WORDS as u32),
        );
        assert!(matches!(oob, Err(Fault::BoundsViolation { .. })));
        let noseg = cpu.read(&mut mem, &mut clock, &cost, VirtAddr::new(9, 0));
        assert!(matches!(noseg, Err(Fault::MissingSegment { .. })));
    }

    #[test]
    fn wakeup_waiting_switch_is_take_once() {
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.wakeup_waiting = true;
        assert!(cpu.take_wakeup_waiting());
        assert!(!cpu.take_wakeup_waiting());
    }

    #[test]
    fn locked_descriptor_reg_clears_on_next_successful_translation() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 2, true);
        // Lock page 0's descriptor by hand.
        let ptw_addr = FrameNo(1).base();
        let mut ptw = Ptw::decode(mem.read(ptw_addr));
        ptw.locked = true;
        mem.write(ptw_addr, ptw.encode());

        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.dbr_user = Some(dbr);
        let err = cpu
            .read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap_err();
        assert!(matches!(err, Fault::LockedDescriptor { .. }));
        assert_eq!(cpu.locked_descriptor_reg, Some(ptw_addr));

        // A successful translation (page 1) must clear the register:
        // the stale address otherwise survives across process switches.
        cpu.read(
            &mut mem,
            &mut clock,
            &cost,
            VirtAddr::new(0, PAGE_WORDS as u32),
        )
        .unwrap();
        assert_eq!(cpu.locked_descriptor_reg, None);
    }

    #[test]
    fn tlb_hit_skips_descriptor_fetches() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.dbr_user = Some(dbr);
        let va = VirtAddr::new(0, 3);
        cpu.read(&mut mem, &mut clock, &cost, va).unwrap();
        let after_walk = clock.descriptor_fetches();
        assert_eq!(after_walk, 2, "cold reference pays the full walk");
        cpu.read(&mut mem, &mut clock, &cost, va).unwrap();
        assert_eq!(
            clock.descriptor_fetches(),
            after_walk,
            "warm reference pays no descriptor fetch"
        );
        assert_eq!(cpu.tlb.stats().hits, 1);
    }

    #[test]
    fn tlb_off_walks_every_time() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(
            ProcessorId(0),
            HwFeatures {
                associative_memory: false,
                ..HwFeatures::KERNEL_PROPOSED
            },
        );
        cpu.dbr_user = Some(dbr);
        let va = VirtAddr::new(0, 3);
        cpu.read(&mut mem, &mut clock, &cost, va).unwrap();
        cpu.read(&mut mem, &mut clock, &cost, va).unwrap();
        assert_eq!(clock.descriptor_fetches(), 4);
        assert_eq!(cpu.tlb.stats().lookups, 0);
    }

    #[test]
    fn tlb_write_hit_sets_modified_bit_in_core() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.dbr_user = Some(dbr);
        let va = VirtAddr::new(0, 3);
        // Fill via a read: PTW has used but not modified.
        cpu.read(&mut mem, &mut clock, &cost, va).unwrap();
        assert!(!Ptw::decode(mem.read(FrameNo(1).base())).modified);
        // Write hit must write the modified bit back, charged as a
        // descriptor update.
        let before = clock.ptw_updates();
        cpu.write(&mut mem, &mut clock, &cost, va, Word::new(4))
            .unwrap();
        let ptw = Ptw::decode(mem.read(FrameNo(1).base()));
        assert!(ptw.used && ptw.modified);
        assert_eq!(clock.ptw_updates(), before + 1);
        // A second write is already cached as modified: no extra update.
        cpu.write(&mut mem, &mut clock, &cost, va, Word::new(5))
            .unwrap();
        assert_eq!(clock.ptw_updates(), before + 1);
    }

    #[test]
    fn reference_bit_write_back_charges_the_clock() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::BASE_1974);
        cpu.dbr_user = Some(dbr);
        let before = clock.now();
        cpu.read(&mut mem, &mut clock, &cost, VirtAddr::new(0, 0))
            .unwrap();
        // Two descriptor fetches + one used-bit write-back + the access.
        assert_eq!(
            clock.now() - before,
            2 * cost.descriptor_fetch + cost.ptw_update + cost.core_access
        );
        assert_eq!(clock.ptw_updates(), 1);
    }

    #[test]
    fn tlb_permission_mismatch_falls_through_to_the_walk_fault() {
        let (mut mem, mut clock, cost) = setup();
        let dbr = build_space(&mut mem, 1, true);
        let mut cpu = Processor::new(ProcessorId(0), HwFeatures::KERNEL_PROPOSED);
        cpu.dbr_user = Some(dbr);
        let va = VirtAddr::new(0, 0);
        cpu.read(&mut mem, &mut clock, &cost, va).unwrap();
        // Execute is not permitted: the cached entry must not grant it.
        let err = cpu
            .translate(&mut mem, &mut clock, &cost, va, AccessMode::Execute)
            .unwrap_err();
        assert!(matches!(err, Fault::AccessViolation { .. }));
    }

    #[test]
    fn pages_for_words_rounds_up() {
        assert_eq!(pages_for_words(0), 0);
        assert_eq!(pages_for_words(1), 1);
        assert_eq!(pages_for_words(PAGE_WORDS as u64), 1);
        assert_eq!(pages_for_words(PAGE_WORDS as u64 + 1), 2);
    }
}
