//! Primary (core) memory.
//!
//! Main memory is a flat array of 36-bit words, viewed by the rest of the
//! system as a sequence of 1024-word *page frames*. The memory itself does
//! no allocation or protection; ownership of frames is a software matter
//! (the page-frame manager in the new design, page control in the old).
//!
//! Descriptor segments and page tables are ordinary data in this memory:
//! the processor reads translation words out of core exactly the way the
//! paper's supervisor modules do, which is what makes the map and
//! address-space dependencies in the dependency analysis *real* rather
//! than notional.

use crate::word::Word;

/// Words per page / page frame (the Multics page size).
pub const PAGE_WORDS: usize = 1024;

/// An absolute (physical) word address in primary memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AbsAddr(pub u64);

impl AbsAddr {
    /// The frame this absolute address falls in.
    pub const fn frame(self) -> FrameNo {
        FrameNo((self.0 / PAGE_WORDS as u64) as u32)
    }

    /// Word offset within the frame.
    pub const fn offset(self) -> usize {
        (self.0 % PAGE_WORDS as u64) as usize
    }

    /// Absolute address `n` words beyond this one.
    pub const fn add(self, n: u64) -> AbsAddr {
        AbsAddr(self.0 + n)
    }
}

impl core::fmt::Display for AbsAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "@{:o}", self.0)
    }
}

/// A page-frame number: frame `n` covers absolute words
/// `n*1024 .. (n+1)*1024`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FrameNo(pub u32);

impl FrameNo {
    /// Absolute address of the first word of the frame.
    pub const fn base(self) -> AbsAddr {
        AbsAddr(self.0 as u64 * PAGE_WORDS as u64)
    }
}

/// Primary memory: `frames * PAGE_WORDS` 36-bit words.
#[derive(Debug, Clone)]
pub struct MainMemory {
    words: Vec<Word>,
}

impl MainMemory {
    /// Creates a memory of `frames` zeroed page frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero — a machine without core is not a machine.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "main memory must have at least one frame");
        Self {
            words: vec![Word::ZERO; frames * PAGE_WORDS],
        }
    }

    /// Number of page frames.
    pub fn frames(&self) -> usize {
        self.words.len() / PAGE_WORDS
    }

    /// Total words of core.
    pub fn size_words(&self) -> usize {
        self.words.len()
    }

    /// True if `addr` names a word that exists.
    pub fn contains(&self, addr: AbsAddr) -> bool {
        (addr.0 as usize) < self.words.len()
    }

    /// Reads the word at an absolute address.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside of core; software is expected to
    /// never generate such an address (the simulator treats it as a wiring
    /// error, not a recoverable fault).
    pub fn read(&self, addr: AbsAddr) -> Word {
        self.words[self.index(addr)]
    }

    /// Writes the word at an absolute address.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside of core.
    pub fn write(&mut self, addr: AbsAddr, value: Word) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Reads a whole frame into a boxed page buffer.
    pub fn read_frame(&self, frame: FrameNo) -> Box<[Word; PAGE_WORDS]> {
        let base = frame.base().0 as usize;
        let mut page = Box::new([Word::ZERO; PAGE_WORDS]);
        page.copy_from_slice(&self.words[base..base + PAGE_WORDS]);
        page
    }

    /// Overwrites a whole frame from a page buffer.
    pub fn write_frame(&mut self, frame: FrameNo, page: &[Word; PAGE_WORDS]) {
        let base = frame.base().0 as usize;
        self.words[base..base + PAGE_WORDS].copy_from_slice(page);
    }

    /// Zeroes every word of a frame.
    pub fn zero_frame(&mut self, frame: FrameNo) {
        let base = frame.base().0 as usize;
        for w in &mut self.words[base..base + PAGE_WORDS] {
            *w = Word::ZERO;
        }
    }

    /// True if every word of the frame is zero.
    ///
    /// This is the scan the paper's page-removal algorithm performs to
    /// decide whether a page about to be removed can revert to a zero-page
    /// flag in the file map (and stop being charged for).
    pub fn frame_is_zero(&self, frame: FrameNo) -> bool {
        let base = frame.base().0 as usize;
        self.words[base..base + PAGE_WORDS]
            .iter()
            .all(|w| w.is_zero())
    }

    fn index(&self, addr: AbsAddr) -> usize {
        let i = addr.0 as usize;
        assert!(
            i < self.words.len(),
            "absolute address {addr} outside of {} words of core",
            self.words.len()
        );
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_base_and_split() {
        let f = FrameNo(3);
        assert_eq!(f.base(), AbsAddr(3 * PAGE_WORDS as u64));
        let a = AbsAddr(3 * PAGE_WORDS as u64 + 5);
        assert_eq!(a.frame(), f);
        assert_eq!(a.offset(), 5);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = MainMemory::new(2);
        let a = AbsAddr(1500);
        m.write(a, Word::new(0o1234));
        assert_eq!(m.read(a), Word::new(0o1234));
    }

    #[test]
    fn new_memory_is_zero() {
        let m = MainMemory::new(4);
        assert!(m.frame_is_zero(FrameNo(0)));
        assert!(m.frame_is_zero(FrameNo(3)));
        assert_eq!(m.frames(), 4);
        assert_eq!(m.size_words(), 4 * PAGE_WORDS);
    }

    #[test]
    fn frame_zero_scan_detects_nonzero() {
        let mut m = MainMemory::new(1);
        assert!(m.frame_is_zero(FrameNo(0)));
        m.write(AbsAddr(1023), Word::new(1));
        assert!(!m.frame_is_zero(FrameNo(0)));
        m.zero_frame(FrameNo(0));
        assert!(m.frame_is_zero(FrameNo(0)));
    }

    #[test]
    fn frame_copy_round_trip() {
        let mut m = MainMemory::new(2);
        m.write(AbsAddr(10), Word::new(42));
        let page = m.read_frame(FrameNo(0));
        m.write_frame(FrameNo(1), &page);
        assert_eq!(m.read(AbsAddr(PAGE_WORDS as u64 + 10)), Word::new(42));
    }

    #[test]
    #[should_panic(expected = "outside of")]
    fn out_of_range_read_panics() {
        let m = MainMemory::new(1);
        m.read(AbsAddr(PAGE_WORDS as u64));
    }
}
