//! The canonical Reed–Kanodia construction: a bounded producer/consumer
//! channel built from two eventcounts and two sequencers.
//!
//! Reed and Kanodia's paper presents the N-slot ring buffer as the
//! showcase for eventcount synchronization: producers take tickets from
//! an `in` sequencer and await room (`out_count >= ticket − N + 1`);
//! consumers take tickets from an `out` sequencer and await data
//! (`in_count >= ticket + 1`). No semaphore, no mutual exclusion around
//! the data (each ticket owns its slot exclusively), and neither side
//! ever learns the other's identity.

use crate::threaded::{EventCount, Sequencer};
use std::sync::Mutex;

/// A bounded multi-producer multi-consumer channel synchronized purely
/// by eventcounts and sequencers.
///
/// # Examples
///
/// ```
/// use mx_sync::channel::EcChannel;
/// use std::sync::Arc;
///
/// let ch = Arc::new(EcChannel::new(4));
/// let tx = Arc::clone(&ch);
/// let producer = std::thread::spawn(move || {
///     for i in 0..100 {
///         tx.send(i);
///     }
/// });
/// let sum: u64 = (0..100).map(|_| ch.recv()).sum();
/// producer.join().unwrap();
/// assert_eq!(sum, (0..100).sum());
/// ```
#[derive(Debug)]
pub struct EcChannel<T> {
    slots: Vec<Mutex<Option<T>>>,
    in_seq: Sequencer,
    out_seq: Sequencer,
    in_count: EventCount,
    out_count: EventCount,
}

impl<T> EcChannel<T> {
    /// A channel with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-slot channel cannot carry anything");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            in_seq: Sequencer::new(),
            out_seq: Sequencer::new(),
            in_count: EventCount::new(),
            out_count: EventCount::new(),
        }
    }

    /// Capacity fixed at creation.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sends a value, blocking while the ring is full.
    pub fn send(&self, value: T) {
        let ticket = self.in_seq.ticket();
        // Wait until the slot this ticket owns has been drained: the
        // consumer `ticket - capacity` must have finished.
        if ticket >= self.slots.len() as u64 {
            self.out_count
                .await_value(ticket - self.slots.len() as u64 + 1);
        }
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        *slot.lock().expect("slot lock poisoned") = Some(value);
        // Reed-Kanodia ordering step: advances happen in ticket order,
        // so `in_count = k` certifies slots 0..k are all filled.
        self.in_count.await_value(ticket);
        self.in_count.advance();
    }

    /// Receives the next value, blocking while the ring is empty.
    pub fn recv(&self) -> T {
        let ticket = self.out_seq.ticket();
        self.in_count.await_value(ticket + 1);
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        let value = slot
            .lock()
            .expect("slot lock poisoned")
            .take()
            .expect("producer filled this slot");
        // Ordering step, as on the producer side.
        self.out_count.await_value(ticket);
        self.out_count.advance();
        value
    }

    /// Messages sent so far (the `in` eventcount, monotone).
    pub fn sent(&self) -> u64 {
        self.in_count.read()
    }

    /// Messages received so far (the `out` eventcount, monotone).
    pub fn received(&self) -> u64 {
        self.out_count.read()
    }
}

/// A reusable N-party barrier built on one eventcount and a sequencer:
/// each arrival takes a ticket and awaits the count reaching the next
/// multiple of N.
#[derive(Debug)]
pub struct EcBarrier {
    parties: u64,
    arrivals: Sequencer,
    released: EventCount,
}

impl EcBarrier {
    /// A barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: u64) -> Self {
        assert!(parties > 0);
        Self {
            parties,
            arrivals: Sequencer::new(),
            released: EventCount::new(),
        }
    }

    /// Arrives at the barrier; returns once all parties of this round
    /// have arrived. Returns `true` for the last arrival of the round
    /// (the one that released the others).
    pub fn wait(&self) -> bool {
        let ticket = self.arrivals.ticket();
        let round_end = (ticket / self.parties + 1) * self.parties;
        let last = ticket + 1 == round_end;
        if last {
            // Release the whole round: advance by the full party count
            // so every waiter's threshold is crossed.
            for _ in 0..self.parties {
                self.released.advance();
            }
        } else {
            self.released.await_value(round_end);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_threaded_send_recv() {
        let ch = EcChannel::new(2);
        ch.send(1);
        ch.send(2);
        assert_eq!(ch.recv(), 1);
        assert_eq!(ch.recv(), 2);
        assert_eq!(ch.sent(), 2);
        assert_eq!(ch.received(), 2);
    }

    #[test]
    fn producer_blocks_until_consumer_drains() {
        let ch = Arc::new(EcChannel::new(2));
        let tx = Arc::clone(&ch);
        let producer = thread::spawn(move || {
            for i in 0..50u64 {
                tx.send(i);
            }
        });
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(ch.recv());
        }
        producer.join().unwrap();
        assert_eq!(
            got,
            (0..50).collect::<Vec<_>>(),
            "order preserved through a 2-slot ring"
        );
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let ch = Arc::new(EcChannel::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let ch = Arc::clone(&ch);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    ch.send(p * 1000 + i);
                }
            }));
        }
        for _ in 0..4 {
            let ch = Arc::clone(&ch);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    total.fetch_add(ch.recv(), Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect: u64 = (0..4)
            .map(|p| (0..100).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn barrier_synchronizes_rounds() {
        let parties = 4;
        let barrier = Arc::new(EcBarrier::new(parties));
        let phase = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..parties {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            handles.push(thread::spawn(move || {
                let mut lasts = 0;
                for round in 0..10u64 {
                    // Everyone must observe the same round's phase value.
                    assert_eq!(phase.load(Ordering::SeqCst) / parties, round);
                    phase.fetch_add(1, Ordering::SeqCst);
                    if barrier.wait() {
                        lasts += 1;
                    }
                }
                lasts
            }));
        }
        let lasts: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(lasts, 10, "exactly one releaser per round");
        assert_eq!(phase.load(Ordering::SeqCst), parties * 10);
    }
}
