//! The real-memory message queue between processor-multiplexing levels.
//!
//! The paper: two-level process proposals elsewhere "omitted a key
//! complicating factor: events discovered by low-level virtual processors
//! must be signalled to user level processes, and communicating such
//! signals requires access to the state of the user-level receiving
//! process, which state by design is not guaranteed to be in the real
//! memory accessible to the low-level virtual processor. … The design
//! involves placing a special, real memory message queue between the
//! lower-level and higher-level processor multiplexers" (Reed, 1976).
//!
//! [`MessageQueue`] models that queue: a *bounded* buffer whose storage
//! is permanently resident (fixed capacity chosen at system
//! initialization), a **non-blocking** `put` — the low level can never
//! afford to wait on the high level, so a full queue is an error the
//! sender handles — and a `take` used by the user-process manager, which
//! *is* allowed to wait (via an eventcount advanced on every put).

/// Errors from the bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue's fixed real-memory buffer is full; the low-level sender
    /// must retry or drop — it must never block on the upper level.
    Full,
    /// Nothing queued.
    Empty,
}

impl core::fmt::Display for QueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueueError::Full => write!(f, "real-memory message queue full"),
            QueueError::Empty => write!(f, "real-memory message queue empty"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A bounded FIFO whose capacity is fixed at creation — the real-memory
/// message queue between the virtual-processor level and the user-process
/// level.
///
/// The queue never allocates after construction, mirroring its
/// permanently resident storage in the design.
#[derive(Debug, Clone)]
pub struct MessageQueue<T> {
    buf: Vec<Option<T>>,
    head: usize,
    len: usize,
    /// Messages ever enqueued; pairs with an eventcount in the kernel so
    /// the user-process manager can await "queue count > what I've seen".
    puts: u64,
    /// Messages dropped because the queue was full (observability for
    /// the failure-injection tests).
    rejected: u64,
    /// Deepest the queue has ever been (observability for the load
    /// harness: how close the fixed real-memory buffer came to filling).
    high_watermark: usize,
}

impl<T> MessageQueue<T> {
    /// A queue holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can signal nothing");
        Self {
            buf: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            puts: 0,
            rejected: 0,
            high_watermark: 0,
        }
    }

    /// Capacity fixed at creation.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if a `put` would fail.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Total successful puts over the queue's lifetime (the value the
    /// paired eventcount mirrors).
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Messages rejected because the buffer was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The deepest the queue has ever been — how close the fixed
    /// real-memory buffer came to filling under load.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Restarts the high-watermark observation from the current depth.
    ///
    /// An epoch boundary (a recovery boot, say) wants "how deep did the
    /// queue get *this* epoch", not the all-time maximum — without a
    /// reset every post-crash epoch inherits the pre-crash peak. Only
    /// the watermark restarts: `puts` pairs with an eventcount and
    /// `rejected` is a lifetime loss count, so both stay cumulative.
    pub fn reset_high_watermark(&mut self) {
        self.high_watermark = self.len;
    }

    /// Enqueues a message without blocking.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] if the fixed buffer has no room; the message
    /// is returned untouched inside the error path convention (the caller
    /// still owns nothing — the value is dropped and counted, matching a
    /// low-level sender that cannot retain state).
    pub fn put(&mut self, msg: T) -> Result<(), QueueError> {
        if self.is_full() {
            self.rejected += 1;
            return Err(QueueError::Full);
        }
        let tail = (self.head + self.len) % self.buf.len();
        self.buf[tail] = Some(msg);
        self.len += 1;
        self.puts += 1;
        self.high_watermark = self.high_watermark.max(self.len);
        Ok(())
    }

    /// Dequeues the oldest message.
    ///
    /// # Errors
    ///
    /// [`QueueError::Empty`] if nothing is queued.
    pub fn take(&mut self) -> Result<T, QueueError> {
        if self.len == 0 {
            return Err(QueueError::Empty);
        }
        let msg = self.buf[self.head].take().expect("occupied slot");
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = MessageQueue::new(4);
        for i in 0..4 {
            q.put(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.take().unwrap(), i);
        }
        assert_eq!(q.take(), Err(QueueError::Empty));
    }

    #[test]
    fn put_to_full_queue_is_nonblocking_error() {
        let mut q = MessageQueue::new(2);
        q.put('a').unwrap();
        q.put('b').unwrap();
        assert_eq!(q.put('c'), Err(QueueError::Full));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.puts(), 2);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let mut q = MessageQueue::new(2);
        for round in 0..10 {
            q.put(round).unwrap();
            assert_eq!(q.take().unwrap(), round);
        }
        assert_eq!(q.puts(), 10);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_fixed() {
        let q: MessageQueue<u8> = MessageQueue::new(3);
        assert_eq!(q.capacity(), 3);
    }

    #[test]
    fn high_watermark_tracks_the_deepest_fill() {
        let mut q = MessageQueue::new(4);
        q.put(1).unwrap();
        q.put(2).unwrap();
        q.take().unwrap();
        assert_eq!(q.high_watermark(), 2, "peak, not current depth");
        q.put(3).unwrap();
        q.put(4).unwrap();
        q.put(5).unwrap();
        assert_eq!(q.high_watermark(), 4);
        while q.take().is_ok() {}
        assert_eq!(q.high_watermark(), 4, "draining never lowers the peak");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = MessageQueue::<u8>::new(0);
    }

    #[test]
    fn watermark_reset_restarts_from_current_depth() {
        let mut q = MessageQueue::new(4);
        q.put(1).unwrap();
        q.put(2).unwrap();
        q.put(3).unwrap();
        q.take().unwrap();
        q.take().unwrap();
        assert_eq!(q.high_watermark(), 3, "pre-epoch peak");
        q.reset_high_watermark();
        assert_eq!(q.high_watermark(), 1, "restarts at the live depth");
        q.put(4).unwrap();
        assert_eq!(q.high_watermark(), 2, "tracks only the new epoch");
        assert_eq!(q.puts(), 4, "lifetime put count is untouched");
    }
}
