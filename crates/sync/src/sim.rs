//! Deterministic eventcounts for the single-threaded machine simulator.
//!
//! The virtual-processor manager needs `await`/`advance`/`ticket`
//! primitives whose wakeups it can observe and schedule deterministically.
//! [`EventTable`] owns every eventcount and sequencer in the (simulated)
//! permanently resident core; `advance` returns the identities of the
//! waiters that became runnable so the caller — and only the caller's
//! *scheduler*, never the advancing module — decides what runs next.
//!
//! The key Reed–Kanodia property is visible in the types: `advance`
//! takes no waiter identities, and the returned [`WaiterId`]s are opaque
//! tokens the scheduler registered, so the discoverer of an event learns
//! nothing about who was awaiting it.

use crate::policy::{ChoicePoint, FifoPolicy, SchedulePolicy};
use std::collections::BTreeMap;

/// Names an eventcount (or sequencer) within an [`EventTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EcId(pub u32);

/// An opaque token identifying a registered waiter (the virtual-processor
/// manager uses virtual-processor indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WaiterId(pub u32);

#[derive(Debug, Clone, Default)]
struct EventCountState {
    value: u64,
    /// Waiters keyed by (threshold, waiter) so wakeups drain in threshold
    /// order deterministically.
    waiters: BTreeMap<(u64, WaiterId), ()>,
}

#[derive(Debug, Clone, Default)]
struct SequencerState {
    next: u64,
}

/// The table of all simulator eventcounts and sequencers.
///
/// Lives (conceptually) in permanently resident core: the modules that use
/// it depend only on the core-segment manager and the hardware, which is
/// what lets the virtual-processor manager sit at the bottom of the
/// dependency lattice.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    counts: Vec<EventCountState>,
    sequencers: Vec<SequencerState>,
}

impl EventTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new eventcount starting at zero.
    pub fn create(&mut self) -> EcId {
        self.counts.push(EventCountState::default());
        EcId(self.counts.len() as u32 - 1)
    }

    /// Creates a new sequencer starting at zero.
    pub fn create_sequencer(&mut self) -> EcId {
        self.sequencers.push(SequencerState::default());
        EcId(self.sequencers.len() as u32 - 1)
    }

    /// Reads the current value of an eventcount.
    ///
    /// # Panics
    ///
    /// Panics if `ec` was not created by this table.
    pub fn read(&self, ec: EcId) -> u64 {
        self.counts[ec.0 as usize].value
    }

    /// Takes the next ticket from a sequencer.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was not created by this table.
    pub fn ticket(&mut self, seq: EcId) -> u64 {
        let s = &mut self.sequencers[seq.0 as usize];
        let t = s.next;
        s.next += 1;
        t
    }

    /// Registers `waiter` as awaiting `ec >= threshold`.
    ///
    /// Returns `true` if the condition already holds (the waiter must not
    /// block — this is the software analogue of the wakeup-waiting
    /// switch); otherwise the waiter is parked until a later `advance`
    /// crosses the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `ec` was not created by this table.
    pub fn await_value(&mut self, ec: EcId, threshold: u64, waiter: WaiterId) -> bool {
        let state = &mut self.counts[ec.0 as usize];
        if state.value >= threshold {
            return true;
        }
        state.waiters.insert((threshold, waiter), ());
        false
    }

    /// Withdraws a parked waiter (e.g. the process was destroyed).
    ///
    /// Returns `true` if the waiter was found and removed.
    ///
    /// # Panics
    ///
    /// Panics if `ec` was not created by this table.
    pub fn cancel(&mut self, ec: EcId, waiter: WaiterId) -> bool {
        let state = &mut self.counts[ec.0 as usize];
        let keys: Vec<_> = state
            .waiters
            .keys()
            .filter(|(_, w)| *w == waiter)
            .copied()
            .collect();
        for k in &keys {
            state.waiters.remove(k);
        }
        !keys.is_empty()
    }

    /// Advances the eventcount by one and returns every waiter whose
    /// threshold is now met, in deterministic (threshold, id) order.
    ///
    /// The advancing module receives opaque tokens only; it hands them to
    /// the scheduler and learns nothing else about the waiting processes.
    ///
    /// # Panics
    ///
    /// Panics if `ec` was not created by this table.
    pub fn advance(&mut self, ec: EcId) -> Vec<WaiterId> {
        self.advance_with(ec, &mut FifoPolicy)
    }

    /// [`EventTable::advance`] with the wakeup-drain order decided by a
    /// [`SchedulePolicy`].
    ///
    /// Every eligible waiter is released — the Reed–Kanodia guarantee is
    /// not negotiable — but the *order* in which they are handed back is
    /// a genuine scheduling freedom, and this is its choice point. The
    /// policy is consulted once per remaining eligible waiter (skipping
    /// singleton sets); [`crate::policy::FifoPolicy`] reproduces the
    /// plain `advance` order exactly.
    ///
    /// # Panics
    ///
    /// Panics if `ec` was not created by this table.
    pub fn advance_with(&mut self, ec: EcId, policy: &mut dyn SchedulePolicy) -> Vec<WaiterId> {
        let state = &mut self.counts[ec.0 as usize];
        state.value += 1;
        let now = state.value;
        let mut eligible: Vec<WaiterId> = state
            .waiters
            .range(..=(now, WaiterId(u32::MAX)))
            .map(|((_, w), ())| *w)
            .collect();
        state.waiters.retain(|(t, _), ()| *t > now);
        let mut ready = Vec::with_capacity(eligible.len());
        while eligible.len() > 1 {
            let ids: Vec<u32> = eligible.iter().map(|w| w.0).collect();
            let idx = policy
                .choose(ChoicePoint::Wakeup(ec), &ids)
                .min(eligible.len() - 1);
            ready.push(eligible.remove(idx));
        }
        ready.extend(eligible);
        ready
    }

    /// Waiters whose threshold is *already* met but who are still
    /// parked — the lost-wakeup oracle. A correct table is empty here at
    /// all times: `advance` releases every eligible waiter atomically,
    /// and `await_value` refuses to park a satisfied one (the
    /// wakeup-waiting switch).
    pub fn eligible_parked(&self) -> Vec<(EcId, WaiterId, u64)> {
        let mut lost = Vec::new();
        for (i, state) in self.counts.iter().enumerate() {
            for ((threshold, w), ()) in state.waiters.range(..=(state.value, WaiterId(u32::MAX))) {
                lost.push((EcId(i as u32), *w, *threshold));
            }
        }
        lost
    }

    /// Whether `waiter` is parked on any eventcount in the table.
    ///
    /// A scheduler entity that is blocked but registered nowhere can
    /// never be woken — the stranded-waiter oracle uses this.
    pub fn is_registered(&self, waiter: WaiterId) -> bool {
        self.counts
            .iter()
            .any(|s| s.waiters.keys().any(|(_, w)| *w == waiter))
    }

    /// Number of waiters currently parked on an eventcount.
    ///
    /// # Panics
    ///
    /// Panics if `ec` was not created by this table.
    pub fn waiter_count(&self, ec: EcId) -> usize {
        self.counts[ec.0 as usize].waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_increments_and_read_observes() {
        let mut t = EventTable::new();
        let ec = t.create();
        assert_eq!(t.read(ec), 0);
        t.advance(ec);
        t.advance(ec);
        assert_eq!(t.read(ec), 2);
    }

    #[test]
    fn await_already_satisfied_does_not_park() {
        let mut t = EventTable::new();
        let ec = t.create();
        t.advance(ec);
        assert!(t.await_value(ec, 1, WaiterId(9)));
        assert_eq!(t.waiter_count(ec), 0);
    }

    #[test]
    fn advance_wakes_only_met_thresholds_in_order() {
        let mut t = EventTable::new();
        let ec = t.create();
        assert!(!t.await_value(ec, 1, WaiterId(3)));
        assert!(!t.await_value(ec, 1, WaiterId(1)));
        assert!(!t.await_value(ec, 2, WaiterId(2)));
        let woke = t.advance(ec);
        assert_eq!(
            woke,
            vec![WaiterId(1), WaiterId(3)],
            "threshold 1 in id order"
        );
        assert_eq!(t.waiter_count(ec), 1);
        let woke = t.advance(ec);
        assert_eq!(woke, vec![WaiterId(2)]);
        assert_eq!(t.waiter_count(ec), 0);
    }

    #[test]
    fn cancel_removes_a_parked_waiter() {
        let mut t = EventTable::new();
        let ec = t.create();
        t.await_value(ec, 5, WaiterId(7));
        assert!(t.cancel(ec, WaiterId(7)));
        assert!(!t.cancel(ec, WaiterId(7)));
        for _ in 0..5 {
            assert!(t.advance(ec).is_empty());
        }
    }

    #[test]
    fn sequencer_tickets_are_unique_and_ordered() {
        let mut t = EventTable::new();
        let s = t.create_sequencer();
        let tickets: Vec<_> = (0..5).map(|_| t.ticket(s)).collect();
        assert_eq!(tickets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn advance_with_fifo_matches_plain_advance() {
        let mut a = EventTable::new();
        let mut b = EventTable::new();
        for t in [&mut a, &mut b] {
            let ec = t.create();
            t.await_value(ec, 1, WaiterId(3));
            t.await_value(ec, 1, WaiterId(1));
            t.await_value(ec, 2, WaiterId(2));
        }
        assert_eq!(
            a.advance(EcId(0)),
            b.advance_with(EcId(0), &mut crate::policy::FifoPolicy)
        );
    }

    #[test]
    fn advance_with_policy_reorders_but_releases_everyone() {
        #[derive(Debug)]
        struct Last;
        impl crate::policy::SchedulePolicy for Last {
            fn choose(&mut self, _: crate::policy::ChoicePoint, c: &[u32]) -> usize {
                c.len() - 1
            }
        }
        let mut t = EventTable::new();
        let ec = t.create();
        t.await_value(ec, 1, WaiterId(0));
        t.await_value(ec, 1, WaiterId(1));
        t.await_value(ec, 1, WaiterId(2));
        let woke = t.advance_with(ec, &mut Last);
        assert_eq!(woke, vec![WaiterId(2), WaiterId(1), WaiterId(0)]);
        assert_eq!(t.waiter_count(ec), 0, "order changed, exactness did not");
    }

    #[test]
    fn out_of_range_policy_choice_is_clamped() {
        #[derive(Debug)]
        struct Wild;
        impl crate::policy::SchedulePolicy for Wild {
            fn choose(&mut self, _: crate::policy::ChoicePoint, _: &[u32]) -> usize {
                usize::MAX
            }
        }
        let mut t = EventTable::new();
        let ec = t.create();
        t.await_value(ec, 1, WaiterId(0));
        t.await_value(ec, 1, WaiterId(1));
        assert_eq!(t.advance_with(ec, &mut Wild).len(), 2);
    }

    #[test]
    fn eligible_parked_flags_only_lost_wakeups() {
        let mut t = EventTable::new();
        let ec = t.create();
        t.await_value(ec, 2, WaiterId(5));
        assert!(t.eligible_parked().is_empty(), "threshold not met yet");
        assert!(t.is_registered(WaiterId(5)));
        assert!(!t.is_registered(WaiterId(6)));
        t.advance(ec);
        t.advance(ec);
        assert!(
            t.eligible_parked().is_empty(),
            "a correct advance leaves no eligible waiter behind"
        );
    }

    #[test]
    fn distinct_eventcounts_are_independent() {
        let mut t = EventTable::new();
        let a = t.create();
        let b = t.create();
        t.await_value(a, 1, WaiterId(0));
        assert!(
            t.advance(b).is_empty(),
            "advancing b must not wake a's waiter"
        );
        assert_eq!(t.advance(a), vec![WaiterId(0)]);
    }
}
