//! Pluggable schedule policies for the simulator's choice points.
//!
//! The deterministic simulator makes exactly two kinds of scheduling
//! decision, and before this module both were hard-coded:
//!
//! * which runnable virtual processor the dispatcher picks next
//!   (historically: the run-queue front — FIFO round-robin), and
//! * the order in which an `advance` drains the waiters whose thresholds
//!   it met (historically: `(threshold, id)` order).
//!
//! [`SchedulePolicy`] turns both into consultable choice points so a
//! schedule-exploration harness (`mx-explore`) can substitute seeded
//! random, priority-fuzzing, or exhaustive-enumeration policies. The
//! default [`FifoPolicy`] always picks candidate 0, which reproduces the
//! historical order byte-for-byte — every pinned figure in
//! EXPERIMENTS.md is generated under it.
//!
//! A decision is only a *choice point* when more than one candidate
//! exists; callers do not consult the policy for singleton sets, so a
//! recorded schedule contains only the positions where the interleaving
//! could actually branch.

/// Where in the simulator a scheduling choice is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoicePoint {
    /// Choosing the next virtual processor from the run queue. The
    /// candidates are VP indices in current queue order (front first).
    Dispatch,
    /// Choosing which eligible waiter an `advance` of the given
    /// eventcount releases next. The candidates are waiter ids in
    /// `(threshold, id)` order.
    Wakeup(crate::sim::EcId),
    /// Choosing which inter-machine wire link delivers its head frame
    /// next (the fleet orchestrator's delivery point). The candidates
    /// are link ids (`src * machines + dst`) in ascending order; frames
    /// within one link stay FIFO, so only cross-link order branches.
    Wire,
}

/// A source of scheduling decisions.
///
/// Implementations must be deterministic functions of their own state
/// and the arguments — the exploration harness relies on a policy
/// replaying identically from the same seed or choice string.
pub trait SchedulePolicy: std::fmt::Debug {
    /// Picks one of `candidates` (never empty; all ids distinct) and
    /// returns its index. Returning an out-of-range index is a policy
    /// bug; callers clamp it to the last candidate rather than panic.
    fn choose(&mut self, point: ChoicePoint, candidates: &[u32]) -> usize;
}

/// The historical hard-coded order: always the first candidate.
///
/// Under this policy the dispatcher is FIFO round-robin and wakeups
/// drain in `(threshold, id)` order — exactly the behavior that existed
/// before the choice points were extracted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn choose(&mut self, _point: ChoicePoint, _candidates: &[u32]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::EcId;

    #[test]
    fn fifo_always_picks_the_front() {
        let mut p = FifoPolicy;
        assert_eq!(p.choose(ChoicePoint::Dispatch, &[4, 2, 9]), 0);
        assert_eq!(p.choose(ChoicePoint::Wakeup(EcId(3)), &[7, 1]), 0);
        assert_eq!(p.choose(ChoicePoint::Wire, &[3, 5]), 0);
    }
}
