//! Eventcount/sequencer synchronization (Reed and Kanodia, 1977).
//!
//! The paper's two-level process implementation depends on a new
//! synchronizing protocol, "based on eventcounts, that controls
//! information flow between processes and does not require that the
//! discoverer of an event have knowledge of the identity of the processes
//! awaiting that event." This crate provides that protocol in two forms:
//!
//! * [`sim`] — a deterministic, single-threaded form used inside the
//!   machine simulator by the virtual-processor manager;
//! * [`threaded`] — a real multi-thread form built on `std::sync`,
//!   demonstrating that the protocol stands alone as a library;
//! * [`queue`] — the *real-memory message queue* Reed placed between the
//!   lower-level and higher-level processor multiplexers, through which
//!   events discovered by low-level virtual processors are signalled to
//!   user-level processes whose states may not be in real memory.
//!
//! An *eventcount* is a monotone counter: `advance` increments it,
//! `read` observes it, and `await` blocks until it reaches a value. A
//! *sequencer* issues unique, totally ordered tickets. Together they
//! replace semaphores without requiring the signaller to know the
//! waiters — which is exactly the property the kernel's dependency
//! discipline needs (no dependency from the discoverer of an event on
//! the managers of the processes awaiting it), and which also limits
//! information flow: `advance` carries one bit, upward only.

pub mod channel;
pub mod policy;
pub mod queue;
pub mod sim;
pub mod threaded;

pub use channel::{EcBarrier, EcChannel};
pub use policy::{ChoicePoint, FifoPolicy, SchedulePolicy};
pub use queue::{MessageQueue, QueueError};
pub use sim::{EcId, EventTable, WaiterId};
pub use threaded::{EventCount, Sequencer};
