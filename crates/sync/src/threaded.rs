//! Threaded eventcounts and sequencers.
//!
//! A faithful multi-thread implementation of the Reed–Kanodia primitives,
//! demonstrating that the protocol the kernel design depends on also
//! stands alone as a general synchronization library. Broadcast wakeup is
//! inherent: `advance` notifies *all* waiters whose thresholds are met
//! without knowing who they are, and each re-checks its own condition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A monotone event counter usable from many threads.
///
/// # Examples
///
/// ```
/// use mx_sync::EventCount;
/// use std::sync::Arc;
///
/// let ec = Arc::new(EventCount::new());
/// let ec2 = Arc::clone(&ec);
/// let waiter = std::thread::spawn(move || ec2.await_value(1));
/// ec.advance();
/// waiter.join().unwrap();
/// assert_eq!(ec.read(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EventCount {
    value: Mutex<u64>,
    cond: Condvar,
}

impl EventCount {
    /// A new eventcount at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the current value.
    ///
    /// The value is monotone, so a reader may only ever under-estimate —
    /// the property that makes eventcounts safe to read without mutual
    /// exclusion in the original design.
    pub fn read(&self) -> u64 {
        *self.value.lock().expect("eventcount lock poisoned")
    }

    /// Increments the count and wakes every thread whose awaited
    /// threshold is now met. Returns the new value.
    pub fn advance(&self) -> u64 {
        let mut v = self.value.lock().expect("eventcount lock poisoned");
        *v += 1;
        let now = *v;
        drop(v);
        self.cond.notify_all();
        now
    }

    /// Blocks until the count reaches `threshold`. Returns the value
    /// observed when the wait completed (>= `threshold`).
    pub fn await_value(&self, threshold: u64) -> u64 {
        let mut v = self.value.lock().expect("eventcount lock poisoned");
        while *v < threshold {
            v = self.cond.wait(v).expect("eventcount lock poisoned");
        }
        *v
    }

    /// Like [`EventCount::await_value`] but gives up after `timeout`.
    ///
    /// Returns `Some(value)` on success, `None` on timeout.
    pub fn await_value_timeout(&self, threshold: u64, timeout: Duration) -> Option<u64> {
        let deadline = std::time::Instant::now() + timeout;
        let mut v = self.value.lock().expect("eventcount lock poisoned");
        while *v < threshold {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, result) = self
                .cond
                .wait_timeout(v, deadline - now)
                .expect("eventcount lock poisoned");
            v = guard;
            if result.timed_out() {
                return if *v >= threshold { Some(*v) } else { None };
            }
        }
        Some(*v)
    }
}

/// A ticket dispenser: totally ordered, duplicate-free values.
///
/// Paired with an [`EventCount`], a sequencer builds a fair mutual
/// exclusion (take a ticket, await the count reaching it) — the pattern
/// Reed and Kanodia proposed as the structured replacement for
/// semaphore-based supervisors.
#[derive(Debug, Default)]
pub struct Sequencer {
    next: AtomicU64,
}

impl Sequencer {
    /// A new sequencer whose first ticket is 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the next ticket.
    pub fn ticket(&self) -> u64 {
        self.next.fetch_add(1, Ordering::SeqCst)
    }
}

/// A fair mutual-exclusion region built from a sequencer and an
/// eventcount, as in the Reed–Kanodia paper.
///
/// # Examples
///
/// ```
/// use mx_sync::threaded::EventcountMutex;
/// let m = EventcountMutex::new(0u64);
/// m.with(|v| *v += 1);
/// assert_eq!(m.with(|v| *v), 1);
/// ```
#[derive(Debug, Default)]
pub struct EventcountMutex<T> {
    seq: Sequencer,
    done: EventCount,
    data: Mutex<T>,
}

impl<T> EventcountMutex<T> {
    /// Wraps `data` in a ticket-ordered critical region.
    pub fn new(data: T) -> Self {
        Self {
            seq: Sequencer::new(),
            done: EventCount::new(),
            data: Mutex::new(data),
        }
    }

    /// Runs `f` inside the critical region, in strict ticket order.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let my_turn = self.seq.ticket();
        self.done.await_value(my_turn);
        let result = {
            let mut guard = self.data.lock().expect("data lock poisoned");
            f(&mut guard)
        };
        self.done.advance();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn advance_and_read() {
        let ec = EventCount::new();
        assert_eq!(ec.read(), 0);
        assert_eq!(ec.advance(), 1);
        assert_eq!(ec.advance(), 2);
        assert_eq!(ec.read(), 2);
    }

    #[test]
    fn await_returns_immediately_when_satisfied() {
        let ec = EventCount::new();
        ec.advance();
        assert_eq!(ec.await_value(1), 1);
        assert_eq!(ec.await_value(0), 1);
    }

    #[test]
    fn waiters_are_woken_across_threads() {
        let ec = Arc::new(EventCount::new());
        let mut handles = Vec::new();
        for i in 1..=4 {
            let ec = Arc::clone(&ec);
            handles.push(thread::spawn(move || ec.await_value(i)));
        }
        for _ in 0..4 {
            ec.advance();
        }
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
    }

    #[test]
    fn timeout_elapses_without_advance() {
        let ec = EventCount::new();
        assert_eq!(ec.await_value_timeout(1, Duration::from_millis(20)), None);
        ec.advance();
        assert_eq!(
            ec.await_value_timeout(1, Duration::from_millis(20)),
            Some(1)
        );
    }

    #[test]
    fn sequencer_is_duplicate_free_under_contention() {
        let seq = Arc::new(Sequencer::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let seq = Arc::clone(&seq);
            handles.push(thread::spawn(move || {
                (0..100).map(|_| seq.ticket()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..800).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn eventcount_mutex_counts_exactly() {
        let m = Arc::new(EventcountMutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..250 {
                    m.with(|v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.with(|v| *v), 2000);
    }

    #[test]
    fn discoverer_needs_no_waiter_identities() {
        // The producer only advances; it holds no handle to any consumer.
        let ec = Arc::new(EventCount::new());
        let producer = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || {
                for _ in 0..10 {
                    ec.advance();
                }
            })
        };
        let consumer = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || ec.await_value(10))
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 10);
    }
}
