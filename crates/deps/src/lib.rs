//! Dependency-structure analysis for type-extended systems.
//!
//! The paper's organizational rationale: make every module an object
//! manager, classify every way one module can depend on another into
//! **five kinds** — component, map, program, address space, interpreter —
//! and require the "depends on" relation to be loop-free so "system
//! correctness \[can\] be established iteratively, one module at a time."
//!
//! This crate is the analysis half of that rationale: a [`ModuleGraph`]
//! whose edges carry a [`DepKind`], Tarjan strongly-connected-component
//! detection, cycle enumeration with kind-labelled explanations,
//! topological layering for loop-free graphs, ASCII/DOT rendering (the
//! machinery behind the reproduction of Figures 2, 3 and 4), and the
//! audit-cost metric (how much must be believed to believe one module).
//!
//! The two supervisor implementations (`mx-legacy`, `mx-kernel`) declare
//! their real structure through this API; nothing here is specific to
//! Multics.

pub mod advisor;
pub mod graph;
pub mod render;
pub mod runtime;

pub use advisor::{simple_cycles, suggest_breaks, BreakPlan};
pub use graph::{DepEdge, DepKind, ModuleGraph, ModuleId};
pub use render::{render_ascii, render_dot};
pub use runtime::{DeclaredPair, GateReport, RuntimeLattice};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let mut g = ModuleGraph::new();
        let a = g.add_module("a", "manager of a-objects");
        let b = g.add_module("b", "manager of b-objects");
        g.depend(a, b, DepKind::Component, "a-objects are built of b-objects");
        assert!(g.is_loop_free());
        let dot = render_dot(&g);
        assert!(dot.contains("a\" -> \"b"));
    }
}
