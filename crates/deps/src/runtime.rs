//! Lifting *observed* meter edges into the dependency analyses.
//!
//! `crates/deps` renders the lattice a design *declares*; this module
//! checks the lattice the running system *obeys*. The hardware meter
//! (`mx_hw::meter`) records every scope crossing as a caller→callee
//! invocation edge and every tagged cross-subsystem mutation as a
//! writer→owner shared-data edge, into a bounded [`EdgeSet`] ledger.
//! Here that ledger is lifted into a [`ModuleGraph`] — so the existing
//! SCC/loop/audit machinery applies unchanged — and diffed against a
//! [`RuntimeLattice`]: the subsystem pairs the design permits.
//!
//! Three findings come out of the diff, kept separate because they mean
//! different things:
//!
//! * **undeclared edges** — the running system crossed a boundary the
//!   design forbids; for the kernel design this fails CI;
//! * **loops** — mutual dependence among the *observed* edges, the
//!   paper's disqualifier for module-at-a-time certification;
//! * **unexercised declared edges** — the battery never drove a crossing
//!   the design permits; not a violation, but a coverage gap the gate
//!   reports so it can only ratchet down.
//!
//! Intra-subsystem (self) edges are ignored throughout: a module calling
//! or mutating itself is internal structure, not an inter-module
//! dependency. The declared pairs are *kind-blind* — a pair admits both
//! invocation and shared-data crossings — because the observed kinds are
//! a measurement artifact of where the tags sit, while the pair itself
//! is what the certification argument audits.

use crate::graph::{DepKind, ModuleGraph};
use mx_hw::{EdgeKind, EdgeSet, ObservedEdge, Subsystem};

/// One permitted subsystem pair in a [`RuntimeLattice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclaredPair {
    /// The subsystem allowed to cross.
    pub from: Subsystem,
    /// The subsystem it may cross into.
    pub to: Subsystem,
    /// Why the design permits this crossing (shown in coverage reports).
    pub note: String,
}

/// The runtime projection of a declared dependency lattice: which
/// ordered subsystem pairs may appear in the observed edge ledger.
///
/// This is coarser than the Figure-4 module graph (several paper
/// modules meter under one [`Subsystem`]) and finer than "anything
/// goes": it is exactly the granularity the meter can observe, so the
/// gate never reports a violation the ledger cannot attribute.
#[derive(Debug, Clone, Default)]
pub struct RuntimeLattice {
    name: String,
    pairs: Vec<DeclaredPair>,
}

impl RuntimeLattice {
    /// An empty lattice with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pairs: Vec::new(),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares that `from` may cross into `to`.
    ///
    /// Self-pairs need not be declared (self edges are never checked);
    /// duplicate declarations are rejected to keep coverage counts
    /// meaningful.
    pub fn allow(&mut self, from: Subsystem, to: Subsystem, note: impl Into<String>) {
        assert!(
            !self.contains(from, to),
            "pair {from} -> {to} declared twice"
        );
        self.pairs.push(DeclaredPair {
            from,
            to,
            note: note.into(),
        });
    }

    /// True if the ordered pair is declared (self-pairs are always
    /// admitted).
    pub fn contains(&self, from: Subsystem, to: Subsystem) -> bool {
        from == to || self.pairs.iter().any(|p| p.from == from && p.to == to)
    }

    /// The declared pairs, in declaration order.
    pub fn pairs(&self) -> &[DeclaredPair] {
        &self.pairs
    }

    /// The declared pairs as a [`ModuleGraph`] over all subsystems, so
    /// the lattice itself can be checked loop-free before any run.
    pub fn declared_graph(&self) -> ModuleGraph {
        let mut g = subsystem_graph();
        for p in &self.pairs {
            g.depend(
                crate::graph::ModuleId(p.from.index()),
                crate::graph::ModuleId(p.to.index()),
                DepKind::Call,
                p.note.clone(),
            );
        }
        g
    }
}

/// A graph with one module per [`Subsystem`], in `Subsystem::ALL` order,
/// so `ModuleId(i)` ↔ `Subsystem::ALL[i]`.
fn subsystem_graph() -> ModuleGraph {
    let mut g = ModuleGraph::new();
    for s in Subsystem::ALL {
        g.add_module(s.name(), "runtime subsystem (meter scope label)");
    }
    g
}

/// Lifts the observed ledger into a [`ModuleGraph`], dropping self
/// edges. Invocation edges become [`DepKind::Call`], shared-data edges
/// [`DepKind::SharedData`] — both "improper" kinds, fittingly: an
/// *observed* crossing is exactly the explicit-call / shared-writable
/// dependency the paper's classification flags for elimination.
pub fn observed_graph(edges: &EdgeSet) -> ModuleGraph {
    let mut g = subsystem_graph();
    for e in edges.edges() {
        if e.from == e.to {
            continue;
        }
        let kind = match e.kind {
            EdgeKind::Invoke => DepKind::Call,
            EdgeKind::SharedData => DepKind::SharedData,
        };
        g.depend(
            crate::graph::ModuleId(e.from.index()),
            crate::graph::ModuleId(e.to.index()),
            kind,
            format!("observed x{}", e.count),
        );
    }
    g
}

/// The verdict of diffing one observed ledger against one declared
/// lattice.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Name of the lattice checked against.
    pub lattice: String,
    /// All observed cross-subsystem edges (self edges dropped), in
    /// ledger order.
    pub observed: Vec<ObservedEdge>,
    /// Observed edges whose (from, to) pair the lattice does not
    /// declare — violations.
    pub undeclared: Vec<ObservedEdge>,
    /// Mutual-dependence components among the observed edges, each a
    /// sorted subsystem list.
    pub loops: Vec<Vec<Subsystem>>,
    /// Declared pairs never exercised by the run — coverage gaps.
    pub unexercised: Vec<DeclaredPair>,
    /// Per-subsystem audit-set sizes computed from observed
    /// reachability: how many subsystems must be believed correct to
    /// certify each one, measured from the run rather than the diagram.
    pub audit: Vec<(Subsystem, usize)>,
}

impl GateReport {
    /// True when the run stayed inside the declared lattice: no
    /// undeclared edges and no loops. Coverage gaps do not spoil
    /// cleanliness.
    pub fn is_clean(&self) -> bool {
        self.undeclared.is_empty() && self.loops.is_empty()
    }

    /// Count of observed edges the lattice declares (the complement of
    /// `undeclared` within `observed`).
    pub fn exercised(&self) -> usize {
        self.observed.len() - self.undeclared.len()
    }

    /// The observed cross edges as sorted, count-free `from->to` lines —
    /// the stable form pinned by golden-snapshot tests.
    pub fn edge_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .observed
            .iter()
            .map(|e| format!("{}->{}", e.from.name(), e.to.name()))
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Diffs an observed ledger against a declared lattice.
pub fn check(lattice: &RuntimeLattice, edges: &EdgeSet) -> GateReport {
    let observed: Vec<ObservedEdge> = edges
        .edges()
        .into_iter()
        .filter(|e| e.from != e.to)
        .collect();
    let undeclared: Vec<ObservedEdge> = observed
        .iter()
        .filter(|e| !lattice.contains(e.from, e.to))
        .cloned()
        .collect();
    let g = observed_graph(edges);
    let loops: Vec<Vec<Subsystem>> = g
        .loops()
        .into_iter()
        .map(|comp| comp.into_iter().map(|m| Subsystem::ALL[m.0]).collect())
        .collect();
    let exercised: std::collections::BTreeSet<(usize, usize)> = observed
        .iter()
        .map(|e| (e.from.index(), e.to.index()))
        .collect();
    let unexercised: Vec<DeclaredPair> = lattice
        .pairs()
        .iter()
        .filter(|p| !exercised.contains(&(p.from.index(), p.to.index())))
        .cloned()
        .collect();
    let audit: Vec<(Subsystem, usize)> = g
        .audit_costs()
        .into_iter()
        .map(|(m, c)| (Subsystem::ALL[m.0], c))
        .collect();
    GateReport {
        lattice: lattice.name.clone(),
        observed,
        undeclared,
        loops,
        unexercised,
        audit,
    }
}

/// Renders a gate report for the experiment log: verdict, violations
/// first, then coverage and the measured audit sets.
pub fn render_report(r: &GateReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "lattice gate [{}]: {} observed cross edges, {} undeclared, {} loops -> {}\n",
        r.lattice,
        r.observed.len(),
        r.undeclared.len(),
        r.loops.len(),
        if r.is_clean() { "CLEAN" } else { "VIOLATION" }
    ));
    for e in &r.undeclared {
        out.push_str(&format!(
            "  undeclared: {} -> {} [{}] x{}\n",
            e.from.name(),
            e.to.name(),
            e.kind.name(),
            e.count
        ));
    }
    for l in &r.loops {
        let names: Vec<&str> = l.iter().map(|s| s.name()).collect();
        out.push_str(&format!("  loop: {}\n", names.join(" <-> ")));
    }
    if !r.unexercised.is_empty() {
        out.push_str(&format!(
            "  unexercised declared pairs ({}):\n",
            r.unexercised.len()
        ));
        for p in &r.unexercised {
            out.push_str(&format!(
                "    {} -> {} ({})\n",
                p.from.name(),
                p.to.name(),
                p.note
            ));
        }
    }
    out.push_str("  audit sets (observed reachability):\n");
    for (s, c) in &r.audit {
        out.push_str(&format!("    {:<18} {}\n", s.name(), c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lattice() -> RuntimeLattice {
        let mut l = RuntimeLattice::new("tiny");
        l.allow(Subsystem::UserDomain, Subsystem::PageControl, "page faults");
        l.allow(Subsystem::PageControl, Subsystem::Disk, "page reads/writes");
        l
    }

    #[test]
    fn a_run_inside_the_lattice_is_clean() {
        let l = tiny_lattice();
        let mut e = EdgeSet::new();
        e.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::PageControl,
        );
        e.record(EdgeKind::Invoke, Subsystem::PageControl, Subsystem::Disk);
        e.record(EdgeKind::Invoke, Subsystem::Disk, Subsystem::Disk); // self: ignored
        let r = check(&l, &e);
        assert!(r.is_clean(), "{}", render_report(&r));
        assert_eq!(r.observed.len(), 2);
        assert!(r.unexercised.is_empty());
        assert_eq!(
            r.edge_names(),
            vec!["page_control->disk", "user_domain->page_control"]
        );
    }

    #[test]
    fn an_undeclared_edge_is_a_violation_with_attribution() {
        let l = tiny_lattice();
        let mut e = EdgeSet::new();
        e.record(
            EdgeKind::Invoke,
            Subsystem::PageControl,
            Subsystem::AnsweringService,
        );
        let r = check(&l, &e);
        assert!(!r.is_clean());
        assert_eq!(r.undeclared.len(), 1);
        assert_eq!(r.undeclared[0].from, Subsystem::PageControl);
        assert_eq!(r.undeclared[0].to, Subsystem::AnsweringService);
        assert!(render_report(&r).contains("undeclared: page_control -> answering_service"));
    }

    #[test]
    fn observed_loops_are_reported_even_if_both_edges_are_declared() {
        let mut l = tiny_lattice();
        l.allow(Subsystem::Disk, Subsystem::PageControl, "a declared tangle");
        let mut e = EdgeSet::new();
        e.record(EdgeKind::Invoke, Subsystem::PageControl, Subsystem::Disk);
        e.record(
            EdgeKind::SharedData,
            Subsystem::Disk,
            Subsystem::PageControl,
        );
        let r = check(&l, &e);
        assert!(!r.is_clean(), "loops disqualify even declared pairs");
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.loops[0], vec![Subsystem::PageControl, Subsystem::Disk]);
    }

    #[test]
    fn unexercised_pairs_are_coverage_not_violations() {
        let l = tiny_lattice();
        let mut e = EdgeSet::new();
        e.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::PageControl,
        );
        let r = check(&l, &e);
        assert!(r.is_clean());
        assert_eq!(r.unexercised.len(), 1);
        assert_eq!(r.unexercised[0].to, Subsystem::Disk);
        assert!(render_report(&r).contains("unexercised declared pairs (1)"));
    }

    #[test]
    fn audit_sets_follow_observed_reachability() {
        let l = tiny_lattice();
        let mut e = EdgeSet::new();
        e.record(
            EdgeKind::Invoke,
            Subsystem::UserDomain,
            Subsystem::PageControl,
        );
        e.record(EdgeKind::Invoke, Subsystem::PageControl, Subsystem::Disk);
        let r = check(&l, &e);
        let cost = |s: Subsystem| r.audit.iter().find(|(m, _)| *m == s).unwrap().1;
        assert_eq!(cost(Subsystem::UserDomain), 2, "reaches page_control, disk");
        assert_eq!(cost(Subsystem::PageControl), 1);
        assert_eq!(cost(Subsystem::Disk), 0);
        assert_eq!(
            cost(Subsystem::Scheduler),
            0,
            "never observed, nothing assumed"
        );
    }

    #[test]
    fn declared_graph_supports_loop_checks() {
        let l = tiny_lattice();
        assert!(l.declared_graph().is_loop_free());
        let mut tangled = tiny_lattice();
        tangled.allow(Subsystem::Disk, Subsystem::UserDomain, "upward");
        assert!(!tangled.declared_graph().is_loop_free());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declarations_are_rejected() {
        let mut l = tiny_lattice();
        l.allow(Subsystem::UserDomain, Subsystem::PageControl, "again");
    }
}
