//! Rendering module graphs as ASCII reports and DOT.
//!
//! These renderings are what the `repro` binary prints for Figures 2, 3
//! and 4: the module list, each dependency with its kind, the loops with
//! their explanatory notes, and (for loop-free graphs) the layering.

use crate::graph::{ModuleGraph, ModuleId};

/// Renders the graph as a human-readable ASCII report.
pub fn render_ascii(g: &ModuleGraph) -> String {
    let mut out = String::new();
    match g.layers() {
        Ok(layers) => {
            out.push_str("structure: LOOP-FREE (a dependency lattice)\n");
            for (i, layer) in layers.iter().enumerate().rev() {
                let names: Vec<&str> = layer.iter().map(|m| g.name(*m)).collect();
                out.push_str(&format!("  layer {i}: {}\n", names.join(", ")));
            }
        }
        Err(loops) => {
            out.push_str(&format!("structure: {} DEPENDENCY LOOP(S)\n", loops.len()));
            for (i, comp) in loops.iter().enumerate() {
                let names: Vec<&str> = comp.iter().map(|m| g.name(*m)).collect();
                out.push_str(&format!("  loop {}: {{{}}}\n", i + 1, names.join(", ")));
                for e in g.loop_edges(comp) {
                    out.push_str(&format!(
                        "    {} -> {} [{}] {}\n",
                        g.name(e.from),
                        g.name(e.to),
                        e.kind.label(),
                        e.note
                    ));
                }
            }
        }
    }
    out.push_str("dependencies:\n");
    for e in g.edges() {
        out.push_str(&format!(
            "  {} -> {} [{}] {}\n",
            g.name(e.from),
            g.name(e.to),
            e.kind.label(),
            e.note
        ));
    }
    out
}

/// Renders the graph in Graphviz DOT syntax; improper edges are dashed.
pub fn render_dot(g: &ModuleGraph) -> String {
    let mut out = String::from("digraph deps {\n  rankdir=BT;\n");
    for m in g.module_ids() {
        out.push_str(&format!("  \"{}\" [label=\"{}\"];\n", g.name(m), g.name(m)));
    }
    for e in g.edges() {
        let style = if e.kind.is_proper() {
            "solid"
        } else {
            "dashed"
        };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\", style={}];\n",
            g.name(e.from),
            g.name(e.to),
            e.kind.label(),
            style
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders a one-line-per-module audit-cost table.
pub fn render_audit_costs(g: &ModuleGraph) -> String {
    let mut out = String::from("module                        modules assumed correct\n");
    for (m, cost) in g.audit_costs() {
        out.push_str(&format!("{:<30}{}\n", g.name(m), cost));
    }
    out
}

/// Convenience: the names of a component, joined.
pub fn component_names(g: &ModuleGraph, comp: &[ModuleId]) -> String {
    comp.iter()
        .map(|m| g.name(*m))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;

    fn looped() -> ModuleGraph {
        let mut g = ModuleGraph::new();
        let a = g.add_module("page-control", "");
        let b = g.add_module("process-control", "");
        g.depend(a, b, DepKind::Call, "waits on missing page");
        g.depend(b, a, DepKind::Component, "process states paged");
        g
    }

    #[test]
    fn ascii_reports_loops_with_notes() {
        let s = render_ascii(&looped());
        assert!(s.contains("1 DEPENDENCY LOOP"));
        assert!(s.contains("waits on missing page"));
        assert!(s.contains("[component]"));
    }

    #[test]
    fn ascii_reports_layers_when_loop_free() {
        let mut g = ModuleGraph::new();
        let a = g.add_module("top", "");
        let b = g.add_module("bottom", "");
        g.depend(a, b, DepKind::Component, "");
        let s = render_ascii(&g);
        assert!(s.contains("LOOP-FREE"));
        assert!(s.contains("layer 0: bottom"));
        assert!(s.contains("layer 1: top"));
    }

    #[test]
    fn dot_marks_improper_edges_dashed() {
        let s = render_dot(&looped());
        assert!(s.contains("style=dashed"));
        assert!(s.contains("style=solid"));
        assert!(s.starts_with("digraph"));
    }

    #[test]
    fn audit_cost_table_lists_every_module() {
        let s = render_audit_costs(&looped());
        assert!(s.contains("page-control"));
        assert!(s.contains("process-control"));
    }
}
