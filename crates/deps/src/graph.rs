//! The module dependency graph and its analyses.

use std::collections::BTreeSet;

/// The paper's five kinds of inter-module dependency, plus the two
/// "improper" kinds one encounters in systems designed by other
/// principles (the paper: explicit dependencies due to procedure calls
/// or awaited replies, and implicit dependencies due to direct sharing
/// of writable data, "do not fit naturally into this classification …
/// the goal is their elimination").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// M depends on the managers of the objects that are the components
    /// of the objects M defines.
    Component,
    /// M depends on the managers of the objects in which M's
    /// name-mapping tables are stored.
    Map,
    /// M's algorithms and temporary storage are contained in objects
    /// whose managers M depends on.
    Program,
    /// The address space in which M executes is an object whose manager
    /// M depends on.
    AddressSpace,
    /// M requires an interpreter (a virtual processor) to execute.
    Interpreter,
    /// Improper: an explicit procedure call (or awaited reply) into
    /// another module, outside the object-manager interface discipline.
    Call,
    /// Improper: direct sharing of writable data with another module.
    SharedData,
}

impl DepKind {
    /// All seven kinds, in declaration order.
    pub const ALL: [DepKind; 7] = [
        DepKind::Component,
        DepKind::Map,
        DepKind::Program,
        DepKind::AddressSpace,
        DepKind::Interpreter,
        DepKind::Call,
        DepKind::SharedData,
    ];

    /// True for the five kinds that fit the type-extension rationale.
    pub fn is_proper(self) -> bool {
        !matches!(self, DepKind::Call | DepKind::SharedData)
    }

    /// Short label used in renderings.
    pub fn label(self) -> &'static str {
        match self {
            DepKind::Component => "component",
            DepKind::Map => "map",
            DepKind::Program => "program",
            DepKind::AddressSpace => "addr-space",
            DepKind::Interpreter => "interpreter",
            DepKind::Call => "call",
            DepKind::SharedData => "shared-data",
        }
    }
}

/// Index of a module within a [`ModuleGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub usize);

/// One labelled dependency edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// The depending module.
    pub from: ModuleId,
    /// The module depended upon.
    pub to: ModuleId,
    /// Classification of the dependency.
    pub kind: DepKind,
    /// Why this dependency exists (shown in figures and loop reports).
    pub note: String,
}

#[derive(Debug, Clone)]
struct Module {
    name: String,
    description: String,
}

/// A directed multigraph of modules and kind-labelled dependencies.
#[derive(Debug, Clone, Default)]
pub struct ModuleGraph {
    modules: Vec<Module>,
    edges: Vec<DepEdge>,
}

impl ModuleGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a module (an object manager) and returns its id.
    pub fn add_module(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
    ) -> ModuleId {
        self.modules.push(Module {
            name: name.into(),
            description: description.into(),
        });
        ModuleId(self.modules.len() - 1)
    }

    /// Declares that `from` depends on `to`.
    ///
    /// Self-dependencies are legal to *declare* (a module participating
    /// in the implementation of its own execution environment is exactly
    /// the pathology the paper hunts), and show up as singleton loops.
    pub fn depend(&mut self, from: ModuleId, to: ModuleId, kind: DepKind, note: impl Into<String>) {
        assert!(from.0 < self.modules.len() && to.0 < self.modules.len());
        self.edges.push(DepEdge {
            from,
            to,
            kind,
            note: note.into(),
        });
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// All edges, in declaration order.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// The name of a module.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different graph.
    pub fn name(&self, m: ModuleId) -> &str {
        &self.modules[m.0].name
    }

    /// The description of a module.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different graph.
    pub fn description(&self, m: ModuleId) -> &str {
        &self.modules[m.0].description
    }

    /// Looks a module up by name.
    pub fn find(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name == name)
            .map(ModuleId)
    }

    /// Iterates module ids in insertion order.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.modules.len()).map(ModuleId)
    }

    /// Edges leaving `m`, deduplicated by target, in target order.
    pub fn successors(&self, m: ModuleId) -> Vec<ModuleId> {
        let mut s: BTreeSet<ModuleId> = BTreeSet::new();
        for e in &self.edges {
            if e.from == m {
                s.insert(e.to);
            }
        }
        s.into_iter().collect()
    }

    /// Strongly connected components, each sorted, listed in reverse
    /// topological order of the condensation (Tarjan's algorithm).
    pub fn sccs(&self) -> Vec<Vec<ModuleId>> {
        let n = self.modules.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut result: Vec<Vec<ModuleId>> = Vec::new();

        // Iterative Tarjan to avoid recursion limits on large graphs.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                self.successors(ModuleId(v))
                    .into_iter()
                    .map(|m| m.0)
                    .collect()
            })
            .collect();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut frames = vec![Frame::Enter(start)];
            while let Some(frame) = frames.pop() {
                match frame {
                    Frame::Enter(v) => {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        frames.push(Frame::Resume(v, 0));
                    }
                    Frame::Resume(v, mut i) => {
                        let mut descended = false;
                        while i < succ[v].len() {
                            let w = succ[v][i];
                            i += 1;
                            if index[w] == usize::MAX {
                                frames.push(Frame::Resume(v, i));
                                frames.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if on_stack[w] {
                                low[v] = low[v].min(index[w]);
                            }
                        }
                        if descended {
                            continue;
                        }
                        if low[v] == index[v] {
                            let mut comp = Vec::new();
                            loop {
                                let w = stack.pop().expect("tarjan stack");
                                on_stack[w] = false;
                                comp.push(ModuleId(w));
                                if w == v {
                                    break;
                                }
                            }
                            comp.sort();
                            result.push(comp);
                        }
                        // Propagate lowlink to the parent Resume frame.
                        if let Some(Frame::Resume(p, _)) = frames.last() {
                            let p = *p;
                            low[p] = low[p].min(low[v]);
                        }
                    }
                }
            }
        }
        result
    }

    /// The SCCs containing more than one module, or a module with a
    /// self-edge — the dependency loops.
    pub fn loops(&self) -> Vec<Vec<ModuleId>> {
        self.sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || self.edges.iter().any(|e| e.from == c[0] && e.to == c[0]))
            .collect()
    }

    /// True if the dependency relation generates a lattice-compatible
    /// structure: no loops at all.
    pub fn is_loop_free(&self) -> bool {
        self.loops().is_empty()
    }

    /// The edges internal to a loop, with their kinds — the explanation
    /// of *why* the modules are mutually dependent.
    pub fn loop_edges(&self, comp: &[ModuleId]) -> Vec<&DepEdge> {
        let set: BTreeSet<ModuleId> = comp.iter().copied().collect();
        self.edges
            .iter()
            .filter(|e| set.contains(&e.from) && set.contains(&e.to))
            .collect()
    }

    /// Longest-path layering of a loop-free graph: layer 0 depends on
    /// nothing; each module's layer is 1 + max layer of its dependencies.
    ///
    /// # Errors
    ///
    /// Returns the loops if the graph has any (layering is undefined).
    pub fn layers(&self) -> Result<Vec<Vec<ModuleId>>, Vec<Vec<ModuleId>>> {
        let loops = self.loops();
        if !loops.is_empty() {
            return Err(loops);
        }
        let n = self.modules.len();
        let mut layer = vec![0usize; n];
        // SCCs come out in reverse topological order: dependencies first.
        for comp in self.sccs() {
            let v = comp[0].0;
            let mut l = 0;
            for e in &self.edges {
                if e.from.0 == v {
                    l = l.max(layer[e.to.0] + 1);
                }
            }
            layer[v] = l;
        }
        let max_layer = layer.iter().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max_layer + 1];
        for v in 0..n {
            out[layer[v]].push(ModuleId(v));
        }
        Ok(out)
    }

    /// The set of modules whose correct operation must be assumed to
    /// establish the correct operation of `m` (transitive closure of
    /// "depends on", excluding `m` itself unless it is in a loop).
    pub fn assumed_by(&self, m: ModuleId) -> BTreeSet<ModuleId> {
        let mut seen = BTreeSet::new();
        let mut work = vec![m];
        while let Some(v) = work.pop() {
            for s in self.successors(v) {
                if seen.insert(s) {
                    work.push(s);
                }
            }
        }
        seen.remove(&m);
        let in_loop = self.successors(m).contains(&m)
            || self.loops().iter().any(|c| c.contains(&m) && c.len() > 1);
        if in_loop {
            seen.insert(m);
        }
        seen
    }

    /// The audit-cost metric: for each module, how many modules must be
    /// believed correct before it can be certified. Loop-free designs
    /// permit module-at-a-time auditing; loops force whole components to
    /// be audited together.
    pub fn audit_costs(&self) -> Vec<(ModuleId, usize)> {
        self.module_ids()
            .map(|m| (m, self.assumed_by(m).len()))
            .collect()
    }

    /// Count of improper edges ([`DepKind::Call`]/[`DepKind::SharedData`]).
    pub fn improper_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.kind.is_proper()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (ModuleGraph, Vec<ModuleId>) {
        let mut g = ModuleGraph::new();
        let ids: Vec<_> = (0..4).map(|i| g.add_module(format!("m{i}"), "")).collect();
        for w in ids.windows(2) {
            g.depend(w[0], w[1], DepKind::Component, "chain");
        }
        (g, ids)
    }

    #[test]
    fn a_chain_is_loop_free_with_one_module_per_layer() {
        let (g, ids) = chain();
        assert!(g.is_loop_free());
        let layers = g.layers().unwrap();
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0], vec![ids[3]], "the bottom depends on nothing");
        assert_eq!(layers[3], vec![ids[0]]);
    }

    #[test]
    fn a_cycle_is_detected_as_one_scc() {
        let (mut g, ids) = chain();
        g.depend(ids[3], ids[0], DepKind::Interpreter, "back edge");
        assert!(!g.is_loop_free());
        let loops = g.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0], ids);
        assert!(g.layers().is_err());
    }

    #[test]
    fn self_dependency_is_a_loop() {
        let mut g = ModuleGraph::new();
        let a = g.add_module("a", "");
        g.depend(a, a, DepKind::Map, "stores its own map");
        assert!(!g.is_loop_free());
        assert_eq!(g.loops(), vec![vec![a]]);
    }

    #[test]
    fn two_independent_cycles_are_separate_loops() {
        let mut g = ModuleGraph::new();
        let a = g.add_module("a", "");
        let b = g.add_module("b", "");
        let c = g.add_module("c", "");
        let d = g.add_module("d", "");
        g.depend(a, b, DepKind::Call, "");
        g.depend(b, a, DepKind::Call, "");
        g.depend(c, d, DepKind::Map, "");
        g.depend(d, c, DepKind::Program, "");
        let loops = g.loops();
        assert_eq!(loops.len(), 2);
        assert!(loops.contains(&vec![a, b]));
        assert!(loops.contains(&vec![c, d]));
    }

    #[test]
    fn loop_edges_explain_the_component() {
        let mut g = ModuleGraph::new();
        let pc = g.add_module("page-control", "");
        let proc = g.add_module("process-control", "");
        g.depend(pc, proc, DepKind::Call, "give processor away on page fault");
        g.depend(
            proc,
            pc,
            DepKind::Component,
            "process states live in segments/pages",
        );
        let loops = g.loops();
        let edges = g.loop_edges(&loops[0]);
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().any(|e| e.note.contains("page fault")));
    }

    #[test]
    fn assumed_by_is_the_transitive_closure() {
        let (g, ids) = chain();
        assert_eq!(g.assumed_by(ids[0]).len(), 3);
        assert_eq!(g.assumed_by(ids[3]).len(), 0);
    }

    #[test]
    fn loop_members_assume_themselves() {
        let mut g = ModuleGraph::new();
        let a = g.add_module("a", "");
        let b = g.add_module("b", "");
        g.depend(a, b, DepKind::Call, "");
        g.depend(b, a, DepKind::Call, "");
        assert!(
            g.assumed_by(a).contains(&a),
            "a's correctness rests on a itself"
        );
        assert_eq!(g.assumed_by(a).len(), 2);
    }

    #[test]
    fn audit_cost_grows_with_depth() {
        let (g, ids) = chain();
        let costs = g.audit_costs();
        assert_eq!(costs[ids[0].0].1, 3);
        assert_eq!(costs[ids[3].0].1, 0);
    }

    #[test]
    fn improper_edges_counted() {
        let mut g = ModuleGraph::new();
        let a = g.add_module("a", "");
        let b = g.add_module("b", "");
        g.depend(a, b, DepKind::Call, "");
        g.depend(a, b, DepKind::Component, "");
        assert_eq!(g.improper_edge_count(), 1);
    }

    #[test]
    fn diamond_layers_take_longest_path() {
        let mut g = ModuleGraph::new();
        let top = g.add_module("top", "");
        let mid = g.add_module("mid", "");
        let bot = g.add_module("bot", "");
        g.depend(top, mid, DepKind::Component, "");
        g.depend(mid, bot, DepKind::Component, "");
        g.depend(top, bot, DepKind::Map, "");
        let layers = g.layers().unwrap();
        assert_eq!(layers[0], vec![bot]);
        assert_eq!(layers[1], vec![mid]);
        assert_eq!(layers[2], vec![top]);
    }

    #[test]
    fn find_by_name() {
        let (g, ids) = chain();
        assert_eq!(g.find("m2"), Some(ids[2]));
        assert_eq!(g.find("nope"), None);
    }
}
