//! The loop-breaking advisor.
//!
//! The paper's method: once the dependencies are classified, "the goal
//! is their elimination and evolution to a design in which all
//! dependencies fit naturally into this scheme." This module mechanizes
//! the first step the designers took by hand — finding which edges,
//! removed or re-engineered, open the loops — and ranks candidates the
//! way the paper's experience suggests: improper edges (calls into
//! higher modules, shared writable data) first, since those are the
//! ones type extension says should not exist at all.

use crate::graph::{DepEdge, DepKind, ModuleGraph};

/// One suggestion: removing these edges makes the graph loop-free.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakPlan {
    /// Indices into [`ModuleGraph::edges`] of the edges to eliminate.
    pub edges: Vec<usize>,
    /// How many of them are improper (cheaper to justify removing).
    pub improper: usize,
}

/// Enumerates the simple cycles of the graph (bounded by `limit`), each
/// as a module sequence `m0 -> m1 -> … -> m0`.
///
/// Uses a DFS restricted to one strongly connected component at a time;
/// fine for module graphs (dozens of nodes), not for arbitrary input.
pub fn simple_cycles(g: &ModuleGraph, limit: usize) -> Vec<Vec<crate::graph::ModuleId>> {
    let mut out = Vec::new();
    for comp in g.loops() {
        let in_comp: std::collections::BTreeSet<_> = comp.iter().copied().collect();
        for &start in &comp {
            // DFS from `start`, only visiting ids >= start to avoid
            // reporting each cycle once per member.
            let mut stack = vec![(start, vec![start])];
            while let Some((node, path)) = stack.pop() {
                if out.len() >= limit {
                    return out;
                }
                for next in g.successors(node) {
                    if !in_comp.contains(&next) || next < start {
                        continue;
                    }
                    if next == start {
                        out.push(path.clone());
                    } else if !path.contains(&next) && path.len() < 8 {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
    }
    out
}

/// Proposes a set of edges whose removal makes the graph loop-free,
/// preferring improper edges ([`DepKind::Call`] upward,
/// [`DepKind::SharedData`]) — the ones the rationale says to eliminate.
///
/// Greedy: repeatedly remove the in-loop edge that participates in the
/// most simple cycles, improper edges weighted double. Not minimal in
/// general, but deterministic and small on module graphs.
pub fn suggest_breaks(g: &ModuleGraph) -> BreakPlan {
    let mut removed: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for _ in 0..g.edges().len() {
        let work = prune(g, &removed);
        if work.is_loop_free() {
            break;
        }
        let cycles = simple_cycles(&work, 256);
        // Score the surviving original edges by cycle participation,
        // improper edges weighted double.
        let mut best: Option<(u64, usize)> = None;
        for (i, e) in g.edges().iter().enumerate() {
            if removed.contains(&i) {
                continue;
            }
            let mut s = 0u64;
            for cyc in &cycles {
                for w in 0..cyc.len() {
                    let from = cyc[w];
                    let to = cyc[(w + 1) % cyc.len()];
                    if e.from == from && e.to == to {
                        s += 1;
                    }
                }
            }
            if s == 0 {
                continue;
            }
            if !e.kind.is_proper() {
                s *= 2;
            }
            if best
                .map(|(bs, bi)| (s, usize::MAX - i) > (bs, usize::MAX - bi))
                .unwrap_or(true)
            {
                best = Some((s, i));
            }
        }
        let Some((_, victim)) = best else { break };
        removed.insert(victim);
    }
    let improper = removed
        .iter()
        .filter(|i| !g.edges()[**i].kind.is_proper())
        .count();
    BreakPlan {
        edges: removed.into_iter().collect(),
        improper,
    }
}

/// A copy of `g` without the edges whose indices are in `removed`.
fn prune(g: &ModuleGraph, removed: &std::collections::BTreeSet<usize>) -> ModuleGraph {
    let mut out = ModuleGraph::new();
    for m in g.module_ids() {
        out.add_module(g.name(m), g.description(m));
    }
    for (i, e) in g.edges().iter().enumerate() {
        if !removed.contains(&i) {
            out.depend(e.from, e.to, e.kind, e.note.clone());
        }
    }
    out
}

/// Renders a break plan as advice.
pub fn render_plan(g: &ModuleGraph, plan: &BreakPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "to make the structure loop-free, eliminate {} dependencies ({} improper):\n",
        plan.edges.len(),
        plan.improper
    ));
    for &i in &plan.edges {
        let e: &DepEdge = &g.edges()[i];
        let how = match e.kind {
            DepKind::SharedData => "give the data an owner and an interface",
            DepKind::Call => "invert with hardware reporting or an upward signal",
            DepKind::Map | DepKind::Program | DepKind::AddressSpace => {
                "move the storage into core segments"
            }
            DepKind::Interpreter => "interpose a fixed lower level of virtual processors",
            DepKind::Component => "re-layer the object types",
        };
        out.push_str(&format!(
            "  {} -> {} [{}] ({})\n      fix: {}\n",
            g.name(e.from),
            g.name(e.to),
            e.kind.label(),
            e.note,
            how
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;

    fn tangled() -> ModuleGraph {
        let mut g = ModuleGraph::new();
        let a = g.add_module("a", "");
        let b = g.add_module("b", "");
        let c = g.add_module("c", "");
        g.depend(a, b, DepKind::Component, "clean");
        g.depend(b, c, DepKind::Component, "clean");
        g.depend(c, a, DepKind::SharedData, "the tangle");
        g
    }

    #[test]
    fn cycles_are_enumerated_once() {
        let g = tangled();
        let cycles = simple_cycles(&g, 16);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn the_improper_edge_is_the_suggested_break() {
        let g = tangled();
        let plan = suggest_breaks(&g);
        assert_eq!(plan.edges.len(), 1);
        assert_eq!(plan.improper, 1);
        assert_eq!(g.edges()[plan.edges[0]].note, "the tangle");
        let text = render_plan(&g, &plan);
        assert!(text.contains("give the data an owner"));
    }

    #[test]
    fn the_plan_actually_opens_the_loops() {
        let g = tangled();
        let plan = suggest_breaks(&g);
        let mut pruned = ModuleGraph::new();
        for m in g.module_ids() {
            pruned.add_module(g.name(m), "");
        }
        for (i, e) in g.edges().iter().enumerate() {
            if !plan.edges.contains(&i) {
                pruned.depend(e.from, e.to, e.kind, "");
            }
        }
        assert!(pruned.is_loop_free());
    }

    #[test]
    fn figure_3_advice_targets_the_papers_edges() {
        let g = mx_legacy_like();
        let plan = suggest_breaks(&g);
        assert!(!plan.edges.is_empty());
        // After applying the plan the tangle opens.
        let mut pruned = ModuleGraph::new();
        for m in g.module_ids() {
            pruned.add_module(g.name(m), "");
        }
        for (i, e) in g.edges().iter().enumerate() {
            if !plan.edges.contains(&i) {
                pruned.depend(e.from, e.to, e.kind, "");
            }
        }
        assert!(pruned.is_loop_free());
    }

    /// A figure-3-shaped tangle without depending on mx-legacy.
    fn mx_legacy_like() -> ModuleGraph {
        let mut g = ModuleGraph::new();
        let dc = g.add_module("directory", "");
        let sc = g.add_module("segment", "");
        let pc = g.add_module("page", "");
        let prc = g.add_module("process", "");
        g.depend(dc, sc, DepKind::Component, "");
        g.depend(sc, pc, DepKind::Component, "");
        g.depend(pc, prc, DepKind::Call, "yield");
        g.depend(prc, sc, DepKind::Component, "states in segments");
        g.depend(pc, sc, DepKind::SharedData, "AST");
        g.depend(sc, dc, DepKind::SharedData, "hierarchy shape");
        g
    }
}
