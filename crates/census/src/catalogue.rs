//! The census subject: a catalogue of supervisor modules.

/// Where a module's code lives, which determines whether an auditor must
/// read it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Inside the innermost protection boundary ("ring zero programs").
    RingZero,
    /// In an outer supervisor ring, still part of the kernel for audit
    /// purposes.
    OuterRing,
    /// Running in a trusted process (e.g. the Answering Service).
    TrustedProcess,
    /// Ordinary user-domain code: outside the kernel, not audited.
    UserDomain,
}

impl Region {
    /// True if code in this region is part of the security kernel — the
    /// code "that could in principle compromise security".
    pub fn in_kernel(self) -> bool {
        !matches!(self, Region::UserDomain)
    }
}

/// Source language of a module, with the paper's measured conversion
/// behaviour: recoding assembly in PL/I shrinks source lines by slightly
/// more than a factor of two (while roughly doubling object code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// PL/I — the census's uniform measure.
    Pli,
    /// 6180 assembly (ALM).
    Assembly,
}

/// One module of the supervisor, as the census sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRecord {
    /// Module name.
    pub name: String,
    /// Which region the code lives in.
    pub region: Region,
    /// Source language.
    pub language: Language,
    /// Source lines as written.
    pub source_lines: u32,
    /// Words of generated object code (used for "% of object code"
    /// statistics).
    pub object_words: u32,
    /// Distinct entry points.
    pub entry_points: u32,
    /// Entry points callable from the user domain (gates).
    pub user_gates: u32,
    /// Free-form tags the transformations select on (e.g. `"linker"`,
    /// `"network"`, `"general-purpose-only"`).
    pub tags: Vec<String>,
}

impl ModuleRecord {
    /// True if the module carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Source lines expressed in the census's uniform PL/I-equivalent
    /// measure: assembly modules count at the size they would have if
    /// recoded (source ÷ `shrink`, with the paper's factor of two).
    pub fn pli_equivalent_lines(&self, shrink_factor_permille: u32) -> u32 {
        match self.language {
            Language::Pli => self.source_lines,
            Language::Assembly => {
                (u64::from(self.source_lines) * u64::from(shrink_factor_permille) / 1000) as u32
            }
        }
    }
}

/// A complete census subject at a point in time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Catalogue {
    /// Label, e.g. "Multics, start of project (1974)".
    pub label: String,
    /// Every module.
    pub modules: Vec<ModuleRecord>,
}

impl Catalogue {
    /// An empty catalogue with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            modules: Vec::new(),
        }
    }

    /// Adds a module record.
    pub fn push(&mut self, m: ModuleRecord) {
        self.modules.push(m);
    }

    /// Iterates modules in a region.
    pub fn in_region(&self, region: Region) -> impl Iterator<Item = &ModuleRecord> {
        self.modules.iter().filter(move |m| m.region == region)
    }

    /// Total source lines in a region.
    pub fn source_lines_in(&self, region: Region) -> u32 {
        self.in_region(region).map(|m| m.source_lines).sum()
    }

    /// Total source lines that an auditor must read — everything in the
    /// kernel regions.
    pub fn kernel_source_lines(&self) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.region.in_kernel())
            .map(|m| m.source_lines)
            .sum()
    }

    /// Kernel size in the uniform PL/I-equivalent measure.
    pub fn kernel_pli_equivalent_lines(&self, shrink_factor_permille: u32) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.region.in_kernel())
            .map(|m| m.pli_equivalent_lines(shrink_factor_permille))
            .sum()
    }

    /// Total kernel entry points.
    pub fn kernel_entry_points(&self) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.region.in_kernel())
            .map(|m| m.entry_points)
            .sum()
    }

    /// Kernel entry points callable by the user (gates).
    pub fn kernel_user_gates(&self) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.region.in_kernel())
            .map(|m| m.user_gates)
            .sum()
    }

    /// Total kernel object-code words.
    pub fn kernel_object_words(&self) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.region.in_kernel())
            .map(|m| m.object_words)
            .sum()
    }

    /// Kernel source lines carrying a tag.
    pub fn kernel_lines_tagged(&self, tag: &str) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.region.in_kernel() && m.has_tag(tag))
            .map(|m| m.source_lines)
            .sum()
    }

    /// Finds a module by name.
    pub fn find(&self, name: &str) -> Option<&ModuleRecord> {
        self.modules.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, region: Region, lang: Language, lines: u32) -> ModuleRecord {
        ModuleRecord {
            name: name.into(),
            region,
            language: lang,
            source_lines: lines,
            object_words: lines * 3,
            entry_points: 10,
            user_gates: 2,
            tags: vec![],
        }
    }

    #[test]
    fn kernel_counts_ring_zero_outer_ring_and_trusted() {
        let mut c = Catalogue::new("t");
        c.push(record("a", Region::RingZero, Language::Pli, 100));
        c.push(record("b", Region::OuterRing, Language::Pli, 50));
        c.push(record("c", Region::TrustedProcess, Language::Pli, 25));
        c.push(record("d", Region::UserDomain, Language::Pli, 1000));
        assert_eq!(c.kernel_source_lines(), 175);
        assert_eq!(c.kernel_entry_points(), 30);
        assert_eq!(c.kernel_user_gates(), 6);
    }

    #[test]
    fn pli_equivalent_halves_assembly() {
        let m = record("asm", Region::RingZero, Language::Assembly, 1000);
        assert_eq!(m.pli_equivalent_lines(500), 500);
        let p = record("pli", Region::RingZero, Language::Pli, 1000);
        assert_eq!(p.pli_equivalent_lines(500), 1000);
    }

    #[test]
    fn tagged_line_totals() {
        let mut c = Catalogue::new("t");
        let mut m = record("net", Region::RingZero, Language::Pli, 700);
        m.tags.push("network".into());
        c.push(m);
        c.push(record("other", Region::RingZero, Language::Pli, 300));
        assert_eq!(c.kernel_lines_tagged("network"), 700);
        assert_eq!(c.kernel_lines_tagged("nope"), 0);
    }

    #[test]
    fn find_by_name() {
        let mut c = Catalogue::new("t");
        c.push(record("x", Region::RingZero, Language::Pli, 1));
        assert!(c.find("x").is_some());
        assert!(c.find("y").is_none());
    }
}
