//! The project plan — Figure 1 as data.
//!
//! Six boxes from "Multics" to "Certified Kernel/Multics", with the
//! status the paper reports (boxes 1–3 complete when the Air Force
//! suspended work in October 1976; 4 in progress; 5–6 planned).

/// Completion status of a plan box as of the paper's writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStatus {
    /// Carried through to completion.
    Completed,
    /// Under way but unfinished.
    InProgress,
    /// Described but not begun.
    Planned,
}

/// One box of Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanBox {
    /// Box number in the figure.
    pub number: u32,
    /// What the box does.
    pub title: &'static str,
    /// What it produces.
    pub output: &'static str,
    /// Box numbers this one consumes.
    pub inputs: Vec<u32>,
    /// Status at the time of the paper.
    pub status: PlanStatus,
}

/// The full plan of Figure 1.
pub fn project_plan() -> Vec<PlanBox> {
    vec![
        PlanBox {
            number: 1,
            title: "Add Access Isolation Mechanism (AIM) to Multics",
            output: "Multics with AIM",
            inputs: vec![],
            status: PlanStatus::Completed,
        },
        PlanBox {
            number: 2,
            title: "Install for practical experience with AIM functions",
            output: "operational experience (AFDSC, then the standard product)",
            inputs: vec![1],
            status: PlanStatus::Completed,
        },
        PlanBox {
            number: 3,
            title: "Experiment with alternative internal structures",
            output: "simplifying ideas proven by trial implementation",
            inputs: vec![1],
            status: PlanStatus::Completed,
        },
        PlanBox {
            number: 4,
            title: "Devise formal specifications for Multics supervisor",
            output: "specifications for Kernel/Multics",
            inputs: vec![1, 3],
            status: PlanStatus::InProgress,
        },
        PlanBox {
            number: 5,
            title: "Reimplement the central supervisor (type extension, EUCLID)",
            output: "implemented Kernel/Multics",
            inputs: vec![3, 4],
            status: PlanStatus::Planned,
        },
        PlanBox {
            number: 6,
            title: "Certify compliance with specifications",
            output: "certified Kernel/Multics",
            inputs: vec![4, 5],
            status: PlanStatus::Planned,
        },
    ]
}

/// Renders the plan as an indented ASCII figure.
pub fn render_plan() -> String {
    let mut out = String::from("Figure 1 -- Plan for a certifiable security kernel for Multics\n");
    for b in project_plan() {
        let status = match b.status {
            PlanStatus::Completed => "DONE",
            PlanStatus::InProgress => "in progress",
            PlanStatus::Planned => "planned",
        };
        let inputs = if b.inputs.is_empty() {
            String::from("Multics")
        } else {
            b.inputs
                .iter()
                .map(|i| format!("box {i}"))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        out.push_str(&format!(
            "  [{}] {} \n      from: {}  ->  {}   ({})\n",
            b.number, b.title, inputs, b.output, status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_boxes_with_first_three_complete() {
        let plan = project_plan();
        assert_eq!(plan.len(), 6);
        for b in &plan[..3] {
            assert_eq!(
                b.status,
                PlanStatus::Completed,
                "box {} should be done",
                b.number
            );
        }
        assert_eq!(plan[3].status, PlanStatus::InProgress);
    }

    #[test]
    fn inputs_reference_earlier_boxes_only() {
        for b in project_plan() {
            for i in &b.inputs {
                assert!(*i < b.number, "box {} consumes later box {i}", b.number);
            }
        }
    }

    #[test]
    fn render_mentions_every_box() {
        let s = render_plan();
        for n in 1..=6 {
            assert!(s.contains(&format!("[{n}]")));
        }
        assert!(s.contains("EUCLID"));
    }
}
