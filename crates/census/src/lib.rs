//! Kernel-size census engine and the Multics 1973/1977 catalogue.
//!
//! The paper's evaluation of kernel *size* is a census: count the source
//! lines that must be believed for security (ring-zero programs plus the
//! trusted processes such as the Answering Service), then measure how much
//! each restructuring project removes. "The most useful and consistent
//! measure of the kernel size seems to be the number of source lines that
//! would exist had the system been coded uniformly in PL/I."
//!
//! This crate makes that census *runnable*: a [`Catalogue`] of module
//! records (region, language, source lines, entry points, gates, object
//! code), a set of [`Transform`]s that model the restructuring projects
//! (extracting a subsystem to the user domain leaving a residue; recoding
//! assembly in PL/I), and report builders that regenerate the paper's
//! size table, entry-point statistics, growth history, and the
//! file-store specialization estimate. The historical numbers live in
//! [`multics`], encoded as data, so every figure the paper quotes is the
//! *output* of the engine rather than a constant in a report.

pub mod catalogue;
pub mod multics;
pub mod plan;
pub mod report;
pub mod transform;

pub use catalogue::{Catalogue, Language, ModuleRecord, Region};
pub use plan::{project_plan, PlanBox, PlanStatus};
pub use report::{entry_point_stats, size_table, EntryPointStats, SizeTable};
pub use transform::{Reduction, Transform};
