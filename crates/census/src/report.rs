//! Report builders: the size table, entry-point statistics, growth, and
//! the specialization estimate.

use crate::catalogue::{Catalogue, Region};
use crate::transform::{Reduction, Transform};

/// The paper's kernel-size table, regenerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeTable {
    /// Ring-zero source lines at the start.
    pub start_ring_zero: u32,
    /// Answering-Service (trusted process) lines at the start.
    pub start_answering_service: u32,
    /// Kernel total at the start.
    pub start_total: u32,
    /// One row per restructuring project.
    pub reductions: Vec<Reduction>,
    /// Sum of all reductions.
    pub total_reduction: u32,
    /// Kernel lines remaining after all projects.
    pub final_total: u32,
}

impl core::fmt::Display for SizeTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Kernel Size, Start of Project")?;
        writeln!(f, "  {:>6}K ring 0", self.start_ring_zero / 1000)?;
        writeln!(
            f,
            "  {:>6}K Answering Service",
            self.start_answering_service / 1000
        )?;
        writeln!(f, "  {:>6}K TOTAL", self.start_total / 1000)?;
        writeln!(f)?;
        writeln!(f, "Reductions")?;
        for r in &self.reductions {
            writeln!(f, "  {:<24}{}K", r.label, r.lines_removed / 1000)?;
        }
        writeln!(f, "  {:<24}{}K", "TOTAL", self.total_reduction / 1000)?;
        writeln!(f)?;
        writeln!(
            f,
            "Resulting kernel: {}K source lines",
            self.final_total / 1000
        )
    }
}

/// Applies `transforms` to a copy of `catalogue` and builds the table.
pub fn size_table(catalogue: &Catalogue, transforms: &[Transform]) -> SizeTable {
    let mut working = catalogue.clone();
    let start_ring_zero = working.source_lines_in(Region::RingZero);
    let start_answering_service = working.source_lines_in(Region::TrustedProcess)
        + working.source_lines_in(Region::OuterRing);
    let start_total = working.kernel_source_lines();
    let reductions: Vec<Reduction> = transforms.iter().map(|t| t.apply(&mut working)).collect();
    let total_reduction = reductions.iter().map(|r| r.lines_removed).sum();
    SizeTable {
        start_ring_zero,
        start_answering_service,
        start_total,
        reductions,
        total_reduction,
        final_total: working.kernel_source_lines(),
    }
}

/// Entry-point statistics for one extraction project.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryPointStats {
    /// Project tag examined.
    pub tag: String,
    /// Percent of kernel object code the tagged modules carry.
    pub object_code_pct: f64,
    /// Percent of kernel entry points removed by extracting them.
    pub entry_point_pct: f64,
    /// Percent of user-callable gates removed.
    pub user_gate_pct: f64,
}

/// Computes, for the modules tagged `tag`, the share of ring-zero
/// supervisor object code, entry points, and user gates they represent —
/// the statistics the paper reports for the linker extraction
/// (5% / 2.5% / 11%). The scope is ring zero because that is the
/// population the paper's 1,200-entry / 157-gate counts describe.
pub fn entry_point_stats(catalogue: &Catalogue, tag: &str) -> EntryPointStats {
    let kernel = |f: &dyn Fn(&crate::catalogue::ModuleRecord) -> u32| -> (u32, u32) {
        let total: u32 = catalogue.in_region(Region::RingZero).map(f).sum();
        let tagged: u32 = catalogue
            .in_region(Region::RingZero)
            .filter(|m| m.has_tag(tag))
            .map(f)
            .sum();
        (tagged, total)
    };
    let pct = |(tagged, total): (u32, u32)| {
        if total == 0 {
            0.0
        } else {
            tagged as f64 / total as f64 * 100.0
        }
    };
    EntryPointStats {
        tag: tag.to_string(),
        object_code_pct: pct(kernel(&|m| m.object_words)),
        entry_point_pct: pct(kernel(&|m| m.entry_points)),
        user_gate_pct: pct(kernel(&|m| m.user_gates)),
    }
}

/// The file-store specialization estimate: how much more of the (already
/// reduced) kernel could go if the system served only network file
/// storage, with no general-purpose user programming. The paper: "at most
/// another 15 to 25%".
pub fn specialization_estimate(catalogue: &Catalogue, transforms: &[Transform]) -> f64 {
    let mut working = catalogue.clone();
    for t in transforms {
        t.apply(&mut working);
    }
    let remaining = working.kernel_source_lines();
    let removable = working.kernel_lines_tagged("general-purpose-only");
    if remaining == 0 {
        0.0
    } else {
        removable as f64 / remaining as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multics::{standard_transforms, start_of_project};

    #[test]
    fn the_papers_size_table_is_reproduced_exactly() {
        let table = size_table(&start_of_project(), &standard_transforms());
        assert_eq!(table.start_ring_zero, 44_000);
        assert_eq!(table.start_answering_service, 10_000);
        assert_eq!(table.start_total, 54_000);
        let rows: Vec<(&str, u32)> = table
            .reductions
            .iter()
            .map(|r| (r.label.as_str(), r.lines_removed))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Linker", 2000),
                ("Name Manager", 1000),
                ("Answering Service", 9000),
                ("Network I/O", 6000),
                ("Initialization", 2000),
                ("Exclusive use of PL/I", 8000),
            ]
        );
        assert_eq!(table.total_reduction, 28_000);
        assert_eq!(
            table.final_total, 26_000,
            "roughly half the starting kernel"
        );
    }

    #[test]
    fn table_display_matches_the_papers_shape() {
        let table = size_table(&start_of_project(), &standard_transforms());
        let s = format!("{table}");
        assert!(s.contains("44K ring 0"));
        assert!(s.contains("10K Answering Service"));
        assert!(s.contains("54K TOTAL"));
        assert!(s.contains("Exclusive use of PL/I   8K"));
        assert!(s.contains("TOTAL                   28K"));
    }

    #[test]
    fn linker_entry_point_statistics() {
        let stats = entry_point_stats(&start_of_project(), "linker");
        assert!(
            (4.0..=6.0).contains(&stats.object_code_pct),
            "linker object share {:.1}% (paper: 5%)",
            stats.object_code_pct
        );
        assert!(
            (2.0..=3.0).contains(&stats.entry_point_pct),
            "linker entry share {:.2}% (paper: 2.5%)",
            stats.entry_point_pct
        );
        assert!(
            (10.0..=12.0).contains(&stats.user_gate_pct),
            "linker gate share {:.1}% (paper: 11%)",
            stats.user_gate_pct
        );
    }

    #[test]
    fn specialization_saves_15_to_25_percent_more() {
        let pct = specialization_estimate(&start_of_project(), &standard_transforms());
        assert!(
            (15.0..=25.0).contains(&pct),
            "specialization estimate {pct:.1}%"
        );
    }

    #[test]
    fn transforms_do_not_mutate_the_input_catalogue() {
        let c = start_of_project();
        let _ = size_table(&c, &standard_transforms());
        assert_eq!(c.kernel_source_lines(), 54_000);
    }
}
