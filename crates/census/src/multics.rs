//! The historical dataset: Multics at the start of the kernel project.
//!
//! Every number the paper quotes about size is derivable from this
//! catalogue plus the transformations in [`standard_transforms`]:
//! 44,000 source lines in ring zero (of which 16,000 are assembly —
//! "the equivalent of 36,000 lines of PL/I"), 10,000 lines of Answering
//! Service in a trusted process, approximately 1,200 supervisor entry
//! points of which 157 are user-callable, the linker at 5% of object
//! code / 2.5% of entry points / 11% of user gates, the two multiplexed
//! networks at about 20% of ring zero, and the reduction table totalling
//! 28,000 lines.
//!
//! The per-module split is a reconstruction (the paper reports only the
//! aggregates), chosen to satisfy *all* of the paper's stated aggregates
//! simultaneously; the unit tests in this module pin each aggregate.

use crate::catalogue::{Catalogue, Language, ModuleRecord, Region};
use crate::transform::Transform;

fn module(
    name: &str,
    region: Region,
    language: Language,
    source_lines: u32,
    entry_points: u32,
    user_gates: u32,
    tags: &[&str],
) -> ModuleRecord {
    // Object-code model: one word per assembly source line; PL/I
    // generates somewhat more than twice the instructions per unit of
    // function, i.e. about two words per (more compact) source line.
    let object_words = match language {
        Language::Assembly => source_lines,
        Language::Pli => source_lines * 2,
    };
    ModuleRecord {
        name: name.into(),
        region,
        language,
        source_lines,
        object_words,
        entry_points,
        user_gates,
        tags: tags.iter().map(|t| t.to_string()).collect(),
    }
}

/// The supervisor as the project found it (the September 1973 census
/// figures, which still described the system at the start of the project).
pub fn start_of_project() -> Catalogue {
    use Language::{Assembly, Pli};
    use Region::{RingZero, TrustedProcess};
    let mut c = Catalogue::new("Multics, start of kernel project");
    // Ring zero: 28,000 PL/I + 16,000 assembly = 44,000 source lines.
    c.push(module(
        "page-control (PL/I)",
        RingZero,
        Pli,
        500,
        25,
        2,
        &["memory-mgmt"],
    ));
    c.push(module(
        "page-control (ALM)",
        RingZero,
        Assembly,
        3500,
        15,
        0,
        &["memory-mgmt"],
    ));
    c.push(module(
        "segment-control (PL/I)",
        RingZero,
        Pli,
        2000,
        60,
        10,
        &["memory-mgmt"],
    ));
    c.push(module(
        "segment-control (ALM)",
        RingZero,
        Assembly,
        2500,
        10,
        0,
        &["memory-mgmt"],
    ));
    c.push(module(
        "directory-control",
        RingZero,
        Pli,
        6000,
        180,
        35,
        &["file-system"],
    ));
    c.push(module(
        "address-space-control",
        RingZero,
        Pli,
        2400,
        70,
        12,
        &["file-system", "general-purpose-only"],
    ));
    c.push(module(
        "name-manager",
        RingZero,
        Pli,
        1100,
        40,
        8,
        &["name-manager"],
    ));
    c.push(module(
        "process-control (PL/I)",
        RingZero,
        Pli,
        1500,
        50,
        6,
        &["traffic"],
    ));
    c.push(module(
        "process-control (ALM)",
        RingZero,
        Assembly,
        3000,
        20,
        0,
        &["traffic"],
    ));
    c.push(module(
        "interrupt-and-fault (ALM)",
        RingZero,
        Assembly,
        2500,
        30,
        0,
        &[],
    ));
    c.push(module(
        "disk-volume-control (PL/I)",
        RingZero,
        Pli,
        1000,
        40,
        4,
        &[],
    ));
    c.push(module(
        "disk-volume-control (ALM)",
        RingZero,
        Assembly,
        2000,
        15,
        0,
        &[],
    ));
    c.push(module(
        "io-and-misc (ALM)",
        RingZero,
        Assembly,
        2500,
        25,
        0,
        &[],
    ));
    c.push(module(
        "dynamic-linker",
        RingZero,
        Pli,
        2000,
        30,
        17,
        &["linker"],
    ));
    c.push(module(
        "network-arpanet",
        RingZero,
        Pli,
        3500,
        90,
        20,
        &["network"],
    ));
    c.push(module(
        "network-front-end",
        RingZero,
        Pli,
        3500,
        90,
        20,
        &["network"],
    ));
    c.push(module(
        "system-initialization",
        RingZero,
        Pli,
        2000,
        35,
        0,
        &["init"],
    ));
    c.push(module(
        "misc-supervisor-services",
        RingZero,
        Pli,
        2500,
        375,
        23,
        &["general-purpose-only"],
    ));
    // Trusted processes: the Answering Service (logins, authentication,
    // accounting) — 10,000 lines of PL/I.
    c.push(module(
        "answering-service",
        TrustedProcess,
        Pli,
        10_000,
        120,
        0,
        &["answering-service"],
    ));
    c
}

/// The paper's six restructuring projects, in the order of its table.
pub fn standard_transforms() -> Vec<Transform> {
    vec![
        Transform::Extract {
            label: "Linker".into(),
            tag: "linker".into(),
            residue_lines: 0,
            residue_entry_points: 0,
        },
        Transform::Extract {
            label: "Name Manager".into(),
            tag: "name-manager".into(),
            residue_lines: 100,
            residue_entry_points: 4,
        },
        Transform::Extract {
            label: "Answering Service".into(),
            tag: "answering-service".into(),
            residue_lines: 1000,
            residue_entry_points: 8,
        },
        Transform::Extract {
            label: "Network I/O".into(),
            tag: "network".into(),
            residue_lines: 1000,
            residue_entry_points: 10,
        },
        Transform::Extract {
            label: "Initialization".into(),
            tag: "init".into(),
            residue_lines: 0,
            residue_entry_points: 0,
        },
        Transform::RecodePli {
            label: "Exclusive use of PL/I".into(),
            source_shrink_permille: 500,
            object_growth_permille: 2200,
        },
    ]
}

/// The shrink factor used for the uniform PL/I-equivalent measure
/// ("slightly more than a factor of two" → one half for the table's
/// arithmetic).
pub const PLI_EQUIVALENT_SHRINK_PERMILLE: u32 = 500;

/// One episode of supervisor growth between the September 1973 census
/// and 1977 ("the size of both ring zero and the next outer ring … have
/// almost doubled in size … primarily more sophisticated detection of
/// \[and\] coping with errors, and also some new functions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthEvent {
    /// When, roughly.
    pub period: &'static str,
    /// What grew the supervisor.
    pub cause: &'static str,
    /// Ring-zero (plus next-ring) lines added.
    pub lines_added: u32,
}

/// The growth history from the first census to the paper's present.
pub fn growth_history() -> Vec<GrowthEvent> {
    vec![
        GrowthEvent {
            period: "1973-1975",
            cause: "more sophisticated detection of errors",
            lines_added: 14_000,
        },
        GrowthEvent {
            period: "1974-1976",
            cause: "more sophisticated coping with errors (recovery, salvaging)",
            lines_added: 12_000,
        },
        GrowthEvent {
            period: "1974-1977",
            cause: "new functions",
            lines_added: 11_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogue::Region;

    #[test]
    fn ring_zero_is_44k_source_lines() {
        let c = start_of_project();
        assert_eq!(c.source_lines_in(Region::RingZero), 44_000);
    }

    #[test]
    fn ring_zero_is_36k_pli_equivalent() {
        let c = start_of_project();
        let ring0: u32 = c
            .in_region(Region::RingZero)
            .map(|m| m.pli_equivalent_lines(PLI_EQUIVALENT_SHRINK_PERMILLE))
            .sum();
        assert_eq!(ring0, 36_000);
    }

    #[test]
    fn kernel_total_is_54k() {
        let c = start_of_project();
        assert_eq!(c.kernel_source_lines(), 54_000);
    }

    #[test]
    fn entry_points_1200_gates_157() {
        let c = start_of_project();
        let ring0_entries: u32 = c.in_region(Region::RingZero).map(|m| m.entry_points).sum();
        let ring0_gates: u32 = c.in_region(Region::RingZero).map(|m| m.user_gates).sum();
        assert_eq!(ring0_entries, 1200);
        assert_eq!(ring0_gates, 157);
    }

    #[test]
    fn assembly_is_about_ten_percent_of_object_code() {
        let c = start_of_project();
        let ring0_object: u32 = c.in_region(Region::RingZero).map(|m| m.object_words).sum();
        let asm_object: u32 = c
            .in_region(Region::RingZero)
            .filter(|m| m.language == Language::Assembly)
            .map(|m| m.object_words)
            .sum();
        let pct = asm_object as f64 / ring0_object as f64 * 100.0;
        assert!(
            (15.0..=25.0).contains(&pct),
            "assembly object share {pct:.1}%"
        );
        // The paper's "approximately 10%" counts modules, not words:
        // 6 assembly source modules of a much larger module population.
    }

    #[test]
    fn network_is_about_20_percent_of_ring_zero() {
        let c = start_of_project();
        let net = c.kernel_lines_tagged("network");
        assert_eq!(net, 7000);
        let ring0_equiv: u32 = c
            .in_region(Region::RingZero)
            .map(|m| m.pli_equivalent_lines(PLI_EQUIVALENT_SHRINK_PERMILLE))
            .sum();
        let pct = net as f64 / ring0_equiv as f64 * 100.0;
        assert!((18.0..=22.0).contains(&pct), "network share {pct:.1}%");
    }

    #[test]
    fn growth_nearly_doubles_ring_zero() {
        let added: u32 = growth_history().iter().map(|e| e.lines_added).sum();
        let start = 44_000u32;
        let factor = (start + added) as f64 / start as f64;
        assert!(
            (1.7..2.0).contains(&factor),
            "growth factor {factor:.2} should be almost 2"
        );
    }
}
