//! Restructuring transformations over a catalogue.
//!
//! Each of the paper's engineering projects is modelled as a program over
//! the module catalogue: *extraction* moves tagged modules out of the
//! kernel into the user domain, optionally leaving a small residue module
//! behind (the network demultiplexer, the sub-1000-line Answering Service
//! core); *recoding* converts every remaining assembly module to PL/I,
//! shrinking source by the measured factor while growing object code.

use crate::catalogue::{Catalogue, Language, ModuleRecord, Region};

/// One restructuring step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transform {
    /// Move every kernel module tagged `tag` to the user domain; if
    /// `residue_lines > 0`, leave behind a kernel module
    /// `"<tag>-residue"` of that many PL/I lines (with
    /// `residue_entry_points` entries, all of them gates).
    Extract {
        /// Human-readable project name for the reduction table row.
        label: String,
        /// Tag selecting the modules to move.
        tag: String,
        /// Kernel lines left behind as a protected residue.
        residue_lines: u32,
        /// Entry points of the residue module.
        residue_entry_points: u32,
    },
    /// Recode every remaining kernel assembly module in PL/I: source
    /// lines shrink by `source_shrink_permille`/1000, object words grow
    /// by `object_growth_permille`/1000.
    RecodePli {
        /// Human-readable project name for the reduction table row.
        label: String,
        /// Source-line multiplier, permille (the paper: slightly more
        /// than a factor of two shrink → 500 reproduces the table's
        /// arithmetic).
        source_shrink_permille: u32,
        /// Object-code multiplier, permille (the paper: somewhat more
        /// than a factor of two growth → 2200).
        object_growth_permille: u32,
    },
}

impl Transform {
    /// The reduction-table row label.
    pub fn label(&self) -> &str {
        match self {
            Transform::Extract { label, .. } | Transform::RecodePli { label, .. } => label,
        }
    }

    /// Applies the transformation in place and reports the kernel-line
    /// reduction it achieved.
    pub fn apply(&self, catalogue: &mut Catalogue) -> Reduction {
        let before = catalogue.kernel_source_lines();
        match self {
            Transform::Extract {
                tag,
                residue_lines,
                residue_entry_points,
                ..
            } => {
                let mut moved_any = false;
                for m in &mut catalogue.modules {
                    if m.region.in_kernel() && m.has_tag(tag) {
                        m.region = Region::UserDomain;
                        moved_any = true;
                    }
                }
                if moved_any && *residue_lines > 0 {
                    catalogue.push(ModuleRecord {
                        name: format!("{tag}-residue"),
                        region: Region::RingZero,
                        language: Language::Pli,
                        source_lines: *residue_lines,
                        object_words: residue_lines * 3,
                        entry_points: *residue_entry_points,
                        user_gates: *residue_entry_points,
                        tags: vec![format!("{tag}-residue")],
                    });
                }
            }
            Transform::RecodePli {
                source_shrink_permille,
                object_growth_permille,
                ..
            } => {
                for m in &mut catalogue.modules {
                    if m.region.in_kernel() && m.language == Language::Assembly {
                        m.source_lines = (u64::from(m.source_lines)
                            * u64::from(*source_shrink_permille)
                            / 1000) as u32;
                        m.object_words = (u64::from(m.object_words)
                            * u64::from(*object_growth_permille)
                            / 1000) as u32;
                        m.language = Language::Pli;
                    }
                }
            }
        }
        let after = catalogue.kernel_source_lines();
        Reduction {
            label: self.label().to_string(),
            lines_removed: before.saturating_sub(after),
        }
    }
}

/// One row of the paper's reduction table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// Project name.
    pub label: String,
    /// Kernel source lines removed.
    pub lines_removed: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Catalogue {
        let mut c = Catalogue::new("t");
        c.push(ModuleRecord {
            name: "net".into(),
            region: Region::RingZero,
            language: Language::Pli,
            source_lines: 7000,
            object_words: 21_000,
            entry_points: 80,
            user_gates: 10,
            tags: vec!["network".into()],
        });
        c.push(ModuleRecord {
            name: "pagectl-asm".into(),
            region: Region::RingZero,
            language: Language::Assembly,
            source_lines: 4000,
            object_words: 4000,
            entry_points: 20,
            user_gates: 0,
            tags: vec![],
        });
        c
    }

    #[test]
    fn extract_moves_tagged_modules_and_leaves_residue() {
        let mut c = base();
        let t = Transform::Extract {
            label: "Network I/O".into(),
            tag: "network".into(),
            residue_lines: 1000,
            residue_entry_points: 6,
        };
        let r = t.apply(&mut c);
        assert_eq!(r.lines_removed, 6000, "7000 out, 1000 residue back");
        assert_eq!(c.find("net").unwrap().region, Region::UserDomain);
        let residue = c.find("network-residue").unwrap();
        assert_eq!(residue.source_lines, 1000);
        assert!(residue.region.in_kernel());
    }

    #[test]
    fn extract_of_absent_tag_changes_nothing() {
        let mut c = base();
        let t = Transform::Extract {
            label: "x".into(),
            tag: "no-such-tag".into(),
            residue_lines: 1000,
            residue_entry_points: 1,
        };
        let r = t.apply(&mut c);
        assert_eq!(r.lines_removed, 0);
        assert!(
            c.find("no-such-tag-residue").is_none(),
            "no residue without extraction"
        );
    }

    #[test]
    fn recode_shrinks_source_and_grows_object() {
        let mut c = base();
        let t = Transform::RecodePli {
            label: "Exclusive use of PL/I".into(),
            source_shrink_permille: 500,
            object_growth_permille: 2200,
        };
        let r = t.apply(&mut c);
        assert_eq!(r.lines_removed, 2000);
        let m = c.find("pagectl-asm").unwrap();
        assert_eq!(m.language, Language::Pli);
        assert_eq!(m.source_lines, 2000);
        assert_eq!(m.object_words, 8800);
    }

    #[test]
    fn recode_leaves_pli_modules_alone() {
        let mut c = base();
        let before = c.find("net").unwrap().clone();
        Transform::RecodePli {
            label: "r".into(),
            source_shrink_permille: 500,
            object_growth_permille: 2200,
        }
        .apply(&mut c);
        assert_eq!(c.find("net").unwrap(), &before);
    }
}
