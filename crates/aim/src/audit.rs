//! The AIM audit log.
//!
//! Every mandatory-access decision the reference monitor makes is
//! recorded. An integrity auditor (the paper's human process, boxes 5–6
//! of the plan) needs exactly this trail: who attempted what flow, with
//! which labels, and what the rule said.

use crate::label::Label;
use crate::monitor::AccessKind;

/// The outcome of a mandatory-access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The flow satisfies the model.
    Grant,
    /// Simple security (no read up) would be violated.
    DenyReadUp,
    /// The ⋆-property (no write down) would be violated.
    DenyWriteDown,
}

impl Decision {
    /// True for [`Decision::Grant`].
    pub fn granted(self) -> bool {
        matches!(self, Decision::Grant)
    }
}

/// One audited decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotone sequence number of the decision.
    pub seq: u64,
    /// Label of the acting subject.
    pub subject: Label,
    /// Label of the object acted upon.
    pub object: Label,
    /// The kind of access attempted.
    pub access: AccessKind,
    /// The decision taken.
    pub decision: Decision,
}

/// An append-only log of audit records.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, assigning the next sequence number.
    pub fn append(
        &mut self,
        subject: Label,
        object: Label,
        access: AccessKind,
        decision: Decision,
    ) -> &AuditRecord {
        let seq = self.records.len() as u64;
        self.records.push(AuditRecord {
            seq,
            subject,
            object,
            access,
            decision,
        });
        self.records.last().expect("just pushed")
    }

    /// Iterates over all records in order.
    pub fn records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// Number of denials recorded.
    pub fn denials(&self) -> usize {
        self.records
            .iter()
            .filter(|r| !r.decision.granted())
            .count()
    }

    /// Number of grants recorded.
    pub fn grants(&self) -> usize {
        self.records.iter().filter(|r| r.decision.granted()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{CompartmentSet, Level};

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let mut log = AuditLog::new();
        let l = Label::new(Level(1), CompartmentSet::empty());
        for _ in 0..3 {
            log.append(l, l, AccessKind::Read, Decision::Grant);
        }
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn grant_and_denial_tallies() {
        let mut log = AuditLog::new();
        let l = Label::BOTTOM;
        log.append(l, l, AccessKind::Read, Decision::Grant);
        log.append(l, l, AccessKind::Read, Decision::DenyReadUp);
        log.append(l, l, AccessKind::Write, Decision::DenyWriteDown);
        assert_eq!(log.grants(), 1);
        assert_eq!(log.denials(), 2);
    }
}
