//! The Access Isolation Mechanism (AIM).
//!
//! Box 1 of the paper's plan (Figure 1): "labelling all information with
//! sensitivity level and compartment names, and adding security checks at
//! all points where information could cross level or compartment
//! boundaries", per the MITRE model of Bell and LaPadula (1973).
//!
//! This crate implements the model: [`Label`]s combining a sensitivity
//! [`Level`] with a [`CompartmentSet`], the dominance lattice over labels,
//! the two mandatory-access rules (simple security: no read up; the
//! ⋆-property: no write down), a [`ReferenceMonitor`] that applies them
//! and records every decision in an [`AuditLog`], and a small
//! flow-tracking facility used by the zero-page accounting experiment to
//! exhibit the confinement violation the paper cites (Lampson, 1973).

pub mod audit;
pub mod flow;
pub mod label;
pub mod monitor;

pub use audit::{AuditLog, AuditRecord, Decision};
pub use flow::{FlowEvent, FlowTracker};
pub use label::{CompartmentSet, Label, Level, MAX_COMPARTMENTS};
pub use monitor::{AccessKind, ReferenceMonitor};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let mut monitor = ReferenceMonitor::new();
        let secret = Label::new(Level(2), CompartmentSet::from_bits(0b01));
        let public = Label::new(Level(0), CompartmentSet::empty());
        assert!(monitor.check(secret, public, AccessKind::Read).is_ok());
        assert!(monitor.check(public, secret, AccessKind::Read).is_err());
        assert_eq!(monitor.audit().records().count(), 2);
    }
}
