//! Information-flow tracking for covert-channel experiments.
//!
//! The paper closes its zero-page accounting case study with a
//! confinement observation: "if a user tries to read from a page
//! containing all zeros, a zero containing page must be allocated, at
//! least temporarily, and the accounting measures must be updated. Thus a
//! read implicitly causes information to be written, perhaps on the other
//! side of a protection boundary, in violation of the confinement goal
//! (Lampson, 1973)."
//!
//! [`FlowTracker`] records *actual* information flows reported by
//! instrumented kernel paths (who wrote what as a consequence of whose
//! action) and checks each against the labels involved, so the experiment
//! can demonstrate that the accounting write is a real downward flow even
//! though every explicit access was granted.

use crate::label::Label;

/// A single observed flow: information moved from a source labelled
/// `from` into a sink labelled `to`, as a side effect of `cause`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEvent {
    /// Label of the domain the information came from.
    pub from: Label,
    /// Label of the domain the information landed in.
    pub to: Label,
    /// Human-readable description of the mechanism (e.g.
    /// "quota-cell used-page count update on implicit zero-page
    /// allocation").
    pub cause: String,
}

impl FlowEvent {
    /// True if the flow is legal under the lattice: the sink's label must
    /// dominate the source's (information may only flow upward).
    pub fn is_lawful(&self) -> bool {
        self.to.dominates(self.from)
    }
}

/// Accumulates observed flows and separates the lawful from the covert.
#[derive(Debug, Clone, Default)]
pub struct FlowTracker {
    events: Vec<FlowEvent>,
}

impl FlowTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed flow.
    pub fn observe(&mut self, from: Label, to: Label, cause: impl Into<String>) {
        self.events.push(FlowEvent {
            from,
            to,
            cause: cause.into(),
        });
    }

    /// All observed flows.
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// The flows that violate the lattice — the covert channels.
    pub fn violations(&self) -> impl Iterator<Item = &FlowEvent> {
        self.events.iter().filter(|e| !e.is_lawful())
    }

    /// Number of unlawful flows observed.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{CompartmentSet, Level};

    fn l(level: u8) -> Label {
        Label::new(Level(level), CompartmentSet::empty())
    }

    #[test]
    fn upward_flow_is_lawful() {
        let e = FlowEvent {
            from: l(0),
            to: l(2),
            cause: "read up-level copy".into(),
        };
        assert!(e.is_lawful());
    }

    #[test]
    fn downward_flow_is_a_violation() {
        let mut t = FlowTracker::new();
        t.observe(l(2), l(0), "accounting side effect");
        t.observe(l(0), l(2), "legal publish");
        assert_eq!(t.violation_count(), 1);
        let v: Vec<_> = t.violations().collect();
        assert_eq!(v[0].cause, "accounting side effect");
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn incomparable_flow_is_also_a_violation() {
        let a = Label::new(Level(1), CompartmentSet::from_bits(0b01));
        let b = Label::new(Level(1), CompartmentSet::from_bits(0b10));
        let e = FlowEvent {
            from: a,
            to: b,
            cause: "cross-compartment".into(),
        };
        assert!(!e.is_lawful());
    }
}
