//! Sensitivity labels: levels, compartments, and the dominance lattice.

/// Maximum number of distinct compartments (bit positions in a
/// [`CompartmentSet`]).
pub const MAX_COMPARTMENTS: u32 = 64;

/// A linearly ordered sensitivity level (e.g. 0 = Unclassified,
/// 1 = Confidential, 2 = Secret, 3 = Top Secret).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Level(pub u8);

impl Level {
    /// The lowest level.
    pub const BOTTOM: Level = Level(0);
}

/// A set of need-to-know compartments, one bit per compartment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompartmentSet(u64);

impl CompartmentSet {
    /// The empty compartment set.
    pub const fn empty() -> Self {
        CompartmentSet(0)
    }

    /// Builds a set from a raw bit mask.
    pub const fn from_bits(bits: u64) -> Self {
        CompartmentSet(bits)
    }

    /// The raw bit mask.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The set with compartment `i` added.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_COMPARTMENTS`.
    pub fn with(self, i: u32) -> Self {
        assert!(i < MAX_COMPARTMENTS, "compartment {i} out of range");
        CompartmentSet(self.0 | (1 << i))
    }

    /// True if compartment `i` is a member.
    pub const fn contains(self, i: u32) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// True if every compartment of `other` is also in `self`.
    pub const fn is_superset(self, other: CompartmentSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union (the join in the compartment half-lattice).
    pub const fn union(self, other: CompartmentSet) -> Self {
        CompartmentSet(self.0 | other.0)
    }

    /// Set intersection (the meet).
    pub const fn intersection(self, other: CompartmentSet) -> Self {
        CompartmentSet(self.0 & other.0)
    }

    /// Number of compartments in the set.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// A full AIM label: sensitivity level plus compartment set.
///
/// Labels form a lattice under [`Label::dominates`]: `a` dominates `b`
/// when `a.level >= b.level` **and** `a.compartments ⊇ b.compartments`.
/// Two labels can be incomparable (neither dominates), which is exactly
/// what makes compartments useful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Label {
    /// Sensitivity level.
    pub level: Level,
    /// Need-to-know compartments.
    pub compartments: CompartmentSet,
}

impl Label {
    /// The lattice bottom: lowest level, no compartments. System-low.
    pub const BOTTOM: Label = Label {
        level: Level::BOTTOM,
        compartments: CompartmentSet::empty(),
    };

    /// Builds a label.
    pub const fn new(level: Level, compartments: CompartmentSet) -> Self {
        Label {
            level,
            compartments,
        }
    }

    /// True if `self` dominates `other` (may observe it, under simple
    /// security).
    pub fn dominates(self, other: Label) -> bool {
        self.level >= other.level && self.compartments.is_superset(other.compartments)
    }

    /// True if the labels are incomparable (neither dominates).
    pub fn incomparable(self, other: Label) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// The least upper bound of two labels.
    pub fn join(self, other: Label) -> Label {
        Label {
            level: self.level.max(other.level),
            compartments: self.compartments.union(other.compartments),
        }
    }

    /// The greatest lower bound of two labels.
    pub fn meet(self, other: Label) -> Label {
        Label {
            level: self.level.min(other.level),
            compartments: self.compartments.intersection(other.compartments),
        }
    }
}

impl core::fmt::Display for Label {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "L{}{{", self.level.0)?;
        let mut first = true;
        for i in 0..MAX_COMPARTMENTS {
            if self.compartments.contains(i) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{i}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(level: u8, bits: u64) -> Label {
        Label::new(Level(level), CompartmentSet::from_bits(bits))
    }

    #[test]
    fn dominance_requires_both_level_and_compartments() {
        assert!(l(2, 0b11).dominates(l(1, 0b01)));
        assert!(!l(2, 0b01).dominates(l(1, 0b10)), "missing compartment");
        assert!(!l(1, 0b11).dominates(l(2, 0b01)), "lower level");
        assert!(l(1, 0b01).dominates(l(1, 0b01)), "dominance is reflexive");
    }

    #[test]
    fn incomparable_labels_exist() {
        let a = l(2, 0b01);
        let b = l(1, 0b10);
        assert!(a.incomparable(b));
        assert!(b.incomparable(a));
        assert!(!a.incomparable(a));
    }

    #[test]
    fn join_is_least_upper_bound() {
        let a = l(2, 0b01);
        let b = l(1, 0b10);
        let j = a.join(b);
        assert!(j.dominates(a) && j.dominates(b));
        assert_eq!(j, l(2, 0b11));
    }

    #[test]
    fn meet_is_greatest_lower_bound() {
        let a = l(2, 0b011);
        let b = l(1, 0b110);
        let m = a.meet(b);
        assert!(a.dominates(m) && b.dominates(m));
        assert_eq!(m, l(1, 0b010));
    }

    #[test]
    fn bottom_is_dominated_by_everything() {
        for lv in 0..4 {
            for bits in [0b0, 0b1, 0b101] {
                assert!(l(lv, bits).dominates(Label::BOTTOM));
            }
        }
    }

    #[test]
    fn compartment_set_operations() {
        let s = CompartmentSet::empty().with(0).with(5);
        assert!(s.contains(0) && s.contains(5) && !s.contains(1));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.is_superset(CompartmentSet::empty()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn compartment_index_bounds_checked() {
        let _ = CompartmentSet::empty().with(64);
    }

    #[test]
    fn display_shows_level_and_compartments() {
        assert_eq!(format!("{}", l(2, 0b101)), "L2{0,2}");
        assert_eq!(format!("{}", Label::BOTTOM), "L0{}");
    }
}
