//! The reference monitor: mandatory-access decisions.
//!
//! Applies the two MITRE-model rules at every information-flow point:
//!
//! * **Simple security** — a subject may *read* an object only if the
//!   subject's label dominates the object's ("no read up");
//! * **⋆-property** — a subject may *write* an object only if the
//!   object's label dominates the subject's ("no write down").
//!
//! Every decision is appended to the [`AuditLog`].

use crate::audit::{AuditLog, Decision};
use crate::label::Label;

/// The direction of an attempted information flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Information flows object → subject.
    Read,
    /// Information flows subject → object.
    Write,
    /// Both directions at once (read-write open); requires label equality
    /// in the strict model.
    ReadWrite,
}

/// A denied flow, reported to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowViolation {
    /// The acting subject's label.
    pub subject: Label,
    /// The object's label.
    pub object: Label,
    /// What was attempted.
    pub access: AccessKind,
    /// Which rule denied it.
    pub decision: Decision,
}

impl core::fmt::Display for FlowViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let rule = match self.decision {
            Decision::DenyReadUp => "simple security (no read up)",
            Decision::DenyWriteDown => "*-property (no write down)",
            Decision::Grant => "granted", // Unreachable in violations.
        };
        write!(
            f,
            "{:?} by subject {} on object {} denied by {}",
            self.access, self.subject, self.object, rule
        )
    }
}

impl std::error::Error for FlowViolation {}

/// The reference monitor: stateless decision function plus audit trail.
#[derive(Debug, Clone, Default)]
pub struct ReferenceMonitor {
    audit: AuditLog,
}

impl ReferenceMonitor {
    /// A monitor with an empty audit log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pure decision function, without auditing.
    pub fn decide(subject: Label, object: Label, access: AccessKind) -> Decision {
        match access {
            AccessKind::Read => {
                if subject.dominates(object) {
                    Decision::Grant
                } else {
                    Decision::DenyReadUp
                }
            }
            AccessKind::Write => {
                if object.dominates(subject) {
                    Decision::Grant
                } else {
                    Decision::DenyWriteDown
                }
            }
            AccessKind::ReadWrite => {
                if !subject.dominates(object) {
                    Decision::DenyReadUp
                } else if !object.dominates(subject) {
                    Decision::DenyWriteDown
                } else {
                    Decision::Grant
                }
            }
        }
    }

    /// Checks a flow, records the decision, and returns it as a result.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowViolation`] describing the rule that denied the
    /// flow.
    pub fn check(
        &mut self,
        subject: Label,
        object: Label,
        access: AccessKind,
    ) -> Result<(), FlowViolation> {
        let decision = Self::decide(subject, object, access);
        self.audit.append(subject, object, access, decision);
        if decision.granted() {
            Ok(())
        } else {
            Err(FlowViolation {
                subject,
                object,
                access,
                decision,
            })
        }
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{CompartmentSet, Level};

    fn l(level: u8, bits: u64) -> Label {
        Label::new(Level(level), CompartmentSet::from_bits(bits))
    }

    #[test]
    fn simple_security_no_read_up() {
        assert!(ReferenceMonitor::decide(l(2, 0), l(1, 0), AccessKind::Read).granted());
        assert_eq!(
            ReferenceMonitor::decide(l(1, 0), l(2, 0), AccessKind::Read),
            Decision::DenyReadUp
        );
        // Compartments deny reads too.
        assert_eq!(
            ReferenceMonitor::decide(l(2, 0b01), l(2, 0b10), AccessKind::Read),
            Decision::DenyReadUp
        );
    }

    #[test]
    fn star_property_no_write_down() {
        assert!(ReferenceMonitor::decide(l(1, 0), l(2, 0), AccessKind::Write).granted());
        assert_eq!(
            ReferenceMonitor::decide(l(2, 0), l(1, 0), AccessKind::Write),
            Decision::DenyWriteDown
        );
    }

    #[test]
    fn read_write_requires_label_equality() {
        assert!(ReferenceMonitor::decide(l(1, 0b1), l(1, 0b1), AccessKind::ReadWrite).granted());
        assert!(!ReferenceMonitor::decide(l(2, 0), l(1, 0), AccessKind::ReadWrite).granted());
        assert!(!ReferenceMonitor::decide(l(1, 0), l(2, 0), AccessKind::ReadWrite).granted());
    }

    #[test]
    fn check_records_every_decision() {
        let mut m = ReferenceMonitor::new();
        let _ = m.check(l(1, 0), l(0, 0), AccessKind::Read);
        let _ = m.check(l(0, 0), l(1, 0), AccessKind::Read);
        assert_eq!(m.audit().grants(), 1);
        assert_eq!(m.audit().denials(), 1);
    }

    #[test]
    fn violation_display_names_the_rule() {
        let mut m = ReferenceMonitor::new();
        let err = m.check(l(0, 0), l(1, 0), AccessKind::Read).unwrap_err();
        assert!(format!("{err}").contains("no read up"));
        let err = m.check(l(1, 0), l(0, 0), AccessKind::Write).unwrap_err();
        assert!(format!("{err}").contains("no write down"));
    }
}
