//! Bounded-preemption depth-first schedule enumeration.
//!
//! The enumerator owns no scheduler state: it replays a forced choice
//! prefix through a [`crate::policies::ReplayPolicy`] (FIFO past the
//! prefix), reads back the full recorded trace, and queues every
//! untried alternative `alt > chosen` at positions *beyond* the prefix.
//! Extending only past the forced prefix and only upward in choice
//! order visits each schedule exactly once (lexicographic DFS), and
//! restricting prefixes to at most `preemption_bound` non-FIFO choices
//! gives the classic bounded-preemption search: with the bound at
//! `usize::MAX` the enumeration is exhaustive.

use crate::policies::{parse_trace, ReplayPolicy};
use crate::scenario::{run_kernel, RunReport, ScenarioKind};
use std::collections::HashSet;

/// Summary of one exploration sweep (any policy).
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Which scenario was swept.
    pub kind: ScenarioKind,
    /// Policy family that drove it.
    pub policy: &'static str,
    /// Schedules actually executed.
    pub schedules: usize,
    /// Distinct full-outcome fingerprints observed.
    pub distinct_outcomes: usize,
    /// Distinct user-visible parity label vectors observed (must stay
    /// at one for a correct design: user results are schedule-free).
    pub distinct_parities: Vec<Vec<String>>,
    /// Every run that violated an oracle (empty = clean sweep).
    pub violations: Vec<RunReport>,
    /// True if `max_runs` cut the enumeration short.
    pub truncated: bool,
}

impl Exploration {
    pub(crate) fn new(kind: ScenarioKind, policy: &'static str) -> Self {
        Self {
            kind,
            policy,
            schedules: 0,
            distinct_outcomes: 0,
            distinct_parities: Vec::new(),
            violations: Vec::new(),
            truncated: false,
        }
    }

    pub(crate) fn absorb(&mut self, report: RunReport, outcomes: &mut HashSet<u64>) {
        self.schedules += 1;
        outcomes.insert(report.fingerprint);
        self.distinct_outcomes = outcomes.len();
        if !self.distinct_parities.contains(&report.parity) {
            self.distinct_parities.push(report.parity.clone());
        }
        if !report.violations.is_empty() {
            self.violations.push(report);
        }
    }
}

/// Exhaustively enumerates schedules of `kind` at `seed` with at most
/// `preemption_bound` deviations from FIFO, capped at `max_runs` runs.
pub fn explore_dfs(
    kind: ScenarioKind,
    seed: u64,
    preemption_bound: usize,
    max_runs: usize,
) -> Exploration {
    let mut exp = Exploration::new(kind, "dfs");
    let mut outcomes = HashSet::new();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if exp.schedules >= max_runs {
            exp.truncated = true;
            break;
        }
        let forced = prefix.len();
        let report = run_kernel(kind, seed, Box::new(ReplayPolicy::new(prefix)));
        let trace = parse_trace(&report.schedule).expect("recorder emits well-formed schedules");
        exp.absorb(report, &mut outcomes);
        for i in forced..trace.len() {
            for alt in (trace[i].chosen + 1)..trace[i].arity {
                let mut next: Vec<usize> = trace[..i].iter().map(|c| c.chosen).collect();
                next.push(alt);
                if next.iter().filter(|&&c| c != 0).count() <= preemption_bound {
                    stack.push(next);
                }
            }
        }
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bound_explores_exactly_the_fifo_schedule() {
        let exp = explore_dfs(ScenarioKind::Handoff, 0, 0, 1_000);
        assert_eq!(exp.schedules, 1, "no deviation allowed: FIFO only");
        assert!(!exp.truncated);
        assert!(exp.violations.is_empty());
    }

    #[test]
    fn bound_one_branches_once_everywhere() {
        let exp = explore_dfs(ScenarioKind::Handoff, 0, 1, 10_000);
        assert!(!exp.truncated);
        assert!(exp.schedules > 1, "the handoff tree branches");
        assert!(exp.violations.is_empty(), "{:?}", exp.violations);
    }
}
