//! The exploration policies and the choice recorder.
//!
//! Every policy implements [`mx_sync::SchedulePolicy`] and is a pure
//! function of its seed (or forced choice list), so a run is replayable
//! from the seed/schedule string alone. The [`Recorder`] wraps any
//! policy and writes each decision into a shared trace; the resulting
//! [`schedule_string`] *is* the schedule — feeding it back through a
//! [`ReplayPolicy`] reproduces the run exactly.

use mx_hw::SplitMix64;
use mx_sync::policy::{ChoicePoint, SchedulePolicy};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One recorded decision at a choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// `true` for a wakeup-drain point, `false` for a dispatch point.
    pub wakeup: bool,
    /// How many candidates were on offer (always ≥ 2: singleton sets
    /// are not choice points).
    pub arity: usize,
    /// The index the policy picked.
    pub chosen: usize,
}

/// A shared handle onto a run's recorded trace.
pub type TraceHandle = Rc<RefCell<Vec<Choice>>>;

/// Renders a trace as the canonical schedule string, e.g. `d1/3.w0/2`:
/// kind, chosen index, `/`, arity — joined with `.`. The empty trace
/// renders as `-` (a run that never hit a branching choice point).
pub fn schedule_string(trace: &[Choice]) -> String {
    if trace.is_empty() {
        return "-".to_string();
    }
    trace
        .iter()
        .map(|c| {
            format!(
                "{}{}/{}",
                if c.wakeup { 'w' } else { 'd' },
                c.chosen,
                c.arity
            )
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// Parses a schedule string back into the forced choice list. Arity
/// and kind markers are carried for readability but only the chosen
/// indices drive a replay. Returns `None` on a malformed string.
pub fn parse_schedule(s: &str) -> Option<Vec<usize>> {
    if s == "-" || s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            let rest = tok.strip_prefix(['d', 'w'])?;
            let (chosen, _arity) = rest.split_once('/')?;
            chosen.parse().ok()
        })
        .collect()
}

/// Parses a schedule string back into full [`Choice`]s (kind, chosen,
/// arity). Returns `None` on a malformed string.
pub fn parse_trace(s: &str) -> Option<Vec<Choice>> {
    if s == "-" || s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            let wakeup = match tok.as_bytes().first()? {
                b'd' => false,
                b'w' => true,
                _ => return None,
            };
            let (chosen, arity) = tok[1..].split_once('/')?;
            Some(Choice {
                wakeup,
                arity: arity.parse().ok()?,
                chosen: chosen.parse().ok()?,
            })
        })
        .collect()
}

/// Wraps a policy and records every decision into a shared trace.
#[derive(Debug)]
pub struct Recorder {
    inner: Box<dyn SchedulePolicy>,
    trace: TraceHandle,
}

impl Recorder {
    /// Wraps `inner`; the returned handle reads the trace after the
    /// wrapped policy has been moved into the scheduler.
    pub fn new(inner: Box<dyn SchedulePolicy>) -> (Self, TraceHandle) {
        let trace: TraceHandle = Rc::new(RefCell::new(Vec::new()));
        (
            Self {
                inner,
                trace: Rc::clone(&trace),
            },
            trace,
        )
    }
}

impl SchedulePolicy for Recorder {
    fn choose(&mut self, point: ChoicePoint, candidates: &[u32]) -> usize {
        let chosen = self
            .inner
            .choose(point, candidates)
            .min(candidates.len() - 1);
        self.trace.borrow_mut().push(Choice {
            wakeup: matches!(point, ChoicePoint::Wakeup(_)),
            arity: candidates.len(),
            chosen,
        });
        chosen
    }
}

/// Uniform seeded-random choices: every candidate equally likely.
#[derive(Debug)]
pub struct SeededRandomPolicy {
    rng: SplitMix64,
}

impl SeededRandomPolicy {
    /// A policy drawing from `SplitMix64::new(seed)`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }
}

impl SchedulePolicy for SeededRandomPolicy {
    fn choose(&mut self, _point: ChoicePoint, candidates: &[u32]) -> usize {
        self.rng.range_usize(0, candidates.len())
    }
}

/// PCT-style priority fuzzing (after Burckhardt et al.'s probabilistic
/// concurrency testing): every scheduling entity gets a random fixed
/// priority on first sight, the highest-priority candidate always wins,
/// and occasional seeded priority-change points reshuffle one entity —
/// which concentrates exploration on few-preemption schedules instead
/// of spreading it uniformly.
#[derive(Debug)]
pub struct PctPolicy {
    rng: SplitMix64,
    priorities: HashMap<u32, u64>,
    /// A priority-change point fires with probability 1/`change_den`.
    change_den: u64,
}

impl PctPolicy {
    /// A PCT policy over `SplitMix64::new(seed)` with change points at
    /// 1-in-8 choice points.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15),
            priorities: HashMap::new(),
            change_den: 8,
        }
    }
}

impl SchedulePolicy for PctPolicy {
    fn choose(&mut self, _point: ChoicePoint, candidates: &[u32]) -> usize {
        for &c in candidates {
            let p = self.rng.next_u64();
            self.priorities.entry(c).or_insert(p);
        }
        if self.rng.chance(1, self.change_den) {
            let victim = candidates[self.rng.range_usize(0, candidates.len())];
            let p = self.rng.next_u64();
            self.priorities.insert(victim, p);
        }
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| self.priorities[*c])
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Replays a forced choice list, then falls back to FIFO (choice 0).
///
/// This is both the replay mechanism (feed a full recorded schedule
/// back in) and the DFS mechanism (feed a prefix in; the tail runs
/// FIFO and the recorder reports where the tree can still branch).
#[derive(Debug)]
pub struct ReplayPolicy {
    forced: Vec<usize>,
    pos: usize,
}

impl ReplayPolicy {
    /// A policy forcing `choices` in order.
    pub fn new(choices: Vec<usize>) -> Self {
        Self {
            forced: choices,
            pos: 0,
        }
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn choose(&mut self, _point: ChoicePoint, candidates: &[u32]) -> usize {
        let c = self.forced.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        c.min(candidates.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_strings_round_trip() {
        let trace = vec![
            Choice {
                wakeup: false,
                arity: 3,
                chosen: 1,
            },
            Choice {
                wakeup: true,
                arity: 2,
                chosen: 0,
            },
        ];
        let s = schedule_string(&trace);
        assert_eq!(s, "d1/3.w0/2");
        assert_eq!(parse_schedule(&s), Some(vec![1, 0]));
        assert_eq!(parse_schedule("-"), Some(vec![]));
        assert_eq!(parse_schedule("bogus"), None);
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let mut a = SeededRandomPolicy::new(7);
        let mut b = SeededRandomPolicy::new(7);
        let cands = [3u32, 5, 9, 11];
        for _ in 0..50 {
            assert_eq!(
                a.choose(ChoicePoint::Dispatch, &cands),
                b.choose(ChoicePoint::Dispatch, &cands)
            );
        }
    }

    #[test]
    fn pct_policy_is_seed_deterministic_and_in_range() {
        let mut a = PctPolicy::new(11);
        let mut b = PctPolicy::new(11);
        let cands = [2u32, 4, 8];
        for _ in 0..100 {
            let x = a.choose(ChoicePoint::Dispatch, &cands);
            assert_eq!(x, b.choose(ChoicePoint::Dispatch, &cands));
            assert!(x < cands.len());
        }
    }

    #[test]
    fn replay_forces_then_falls_back_to_fifo() {
        let mut p = ReplayPolicy::new(vec![2, 1]);
        let cands = [0u32, 1, 2];
        assert_eq!(p.choose(ChoicePoint::Dispatch, &cands), 2);
        assert_eq!(p.choose(ChoicePoint::Dispatch, &cands), 1);
        assert_eq!(p.choose(ChoicePoint::Dispatch, &cands), 0, "FIFO tail");
    }

    #[test]
    fn recorder_captures_every_branching_decision() {
        let (mut rec, trace) = Recorder::new(Box::new(ReplayPolicy::new(vec![1])));
        rec.choose(ChoicePoint::Dispatch, &[0, 1]);
        rec.choose(ChoicePoint::Wakeup(mx_sync::EcId(4)), &[5, 6, 7]);
        let t = trace.borrow();
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].wakeup, t[0].arity, t[0].chosen), (false, 2, 1));
        assert_eq!((t[1].wakeup, t[1].arity, t[1].chosen), (true, 3, 0));
    }
}
