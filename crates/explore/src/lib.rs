//! `mx-explore` — deterministic schedule exploration for the two-level
//! scheduler and the eventcount substrate.
//!
//! The simulator's concurrency is deterministic but *chosen*: the VP
//! dispatcher picks among runnable virtual processors, and an eventcount
//! `advance` drains eligible waiters in some order. Historically both
//! orders were hard-coded FIFO. This crate explores the alternatives:
//!
//! * [`policies`] — the pluggable [`mx_sync::SchedulePolicy`]
//!   implementations: seeded-random, PCT-style priority fuzzing, and
//!   replay of a recorded schedule (FIFO itself lives in `mx-sync` as
//!   the default). A [`policies::Recorder`] captures every decision, so
//!   the printed *schedule string* reproduces any run exactly.
//! * [`scenario`] — paper-relevant concurrency scenarios (eventcount
//!   handoff, S3 upward signals under competition, quota growth races,
//!   page faults vs. the purifier, TLB invalidation vs. translation),
//!   each a pure function of its seed and runnable on **both** designs.
//! * [`oracle`] — the machine-checkable invariants evaluated after
//!   every schedule: meter conservation, per-pack record conservation,
//!   wakeup exactness, dispatch uniqueness, ticket total-order, TLB
//!   tally closure — plus old/new parity on user-visible results.
//! * [`dfs`] — bounded-preemption depth-first enumeration that visits
//!   every schedule of a small scenario exactly once.
//!
//! A violation is fully described by `(scenario, seed, schedule)`;
//! [`replay`] turns that triple back into the failing run.

pub mod dfs;
pub mod oracle;
pub mod policies;
pub mod scenario;

pub use dfs::{explore_dfs, Exploration};
pub use policies::{
    parse_schedule, parse_trace, schedule_string, Choice, PctPolicy, Recorder, ReplayPolicy,
    SeededRandomPolicy, TraceHandle,
};
pub use scenario::{run_kernel, run_legacy, RunReport, ScenarioKind};

use std::collections::HashSet;

/// Mixes a sweep seed into per-run policy seeds (SplitMix64 increment).
fn policy_seed(base: u64, i: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i)
}

/// Sweeps `runs` seeded-random schedules of `kind` at scenario `seed`.
pub fn explore_random(kind: ScenarioKind, seed: u64, runs: usize) -> Exploration {
    let mut exp = Exploration::new(kind, "random");
    let mut outcomes = HashSet::new();
    for i in 0..runs {
        let p = SeededRandomPolicy::new(policy_seed(seed, i as u64));
        exp.absorb(run_kernel(kind, seed, Box::new(p)), &mut outcomes);
    }
    exp
}

/// Sweeps `runs` PCT-style priority-fuzzed schedules of `kind` at
/// scenario `seed`.
pub fn explore_pct(kind: ScenarioKind, seed: u64, runs: usize) -> Exploration {
    let mut exp = Exploration::new(kind, "pct");
    let mut outcomes = HashSet::new();
    for i in 0..runs {
        let p = PctPolicy::new(policy_seed(seed, i as u64));
        exp.absorb(run_kernel(kind, seed, Box::new(p)), &mut outcomes);
    }
    exp
}

/// Replays one schedule from its string form — the whole reproduction
/// recipe for any reported violation.
///
/// # Panics
///
/// Panics if `schedule` is not a well-formed schedule string.
pub fn replay(kind: ScenarioKind, seed: u64, schedule: &str) -> RunReport {
    let forced = parse_schedule(schedule).expect("well-formed schedule string");
    run_kernel(kind, seed, Box::new(ReplayPolicy::new(forced)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sweep_is_deterministic_end_to_end() {
        let a = explore_random(ScenarioKind::Handoff, 3, 8);
        let b = explore_random(ScenarioKind::Handoff, 3, 8);
        assert_eq!(a.schedules, 8);
        assert_eq!(a.distinct_outcomes, b.distinct_outcomes);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn replay_reproduces_a_random_run_exactly() {
        let p = SeededRandomPolicy::new(12345);
        let original = run_kernel(ScenarioKind::Handoff, 9, Box::new(p));
        let replayed = replay(ScenarioKind::Handoff, 9, &original.schedule);
        assert_eq!(replayed.schedule, original.schedule);
        assert_eq!(replayed.fingerprint, original.fingerprint);
        assert_eq!(replayed.outcome, original.outcome);
    }

    #[test]
    fn injected_lost_wakeup_is_caught_and_replayable() {
        // The deliberately broken wakeup must be caught under FIFO and
        // reproduce from nothing but its printed seed/schedule string.
        let bad = run_kernel(ScenarioKind::HandoffLossy, 0, Box::new(mx_sync::FifoPolicy));
        assert!(!bad.violations.is_empty(), "the oracles missed the bug");
        let again = replay(ScenarioKind::HandoffLossy, bad.seed, &bad.schedule);
        assert_eq!(again.violations, bad.violations, "replay reproduces it");
    }
}
