//! Driven concurrency scenarios, runnable on both designs.
//!
//! A scenario is a *pure function of its seed*: the seed expands into a
//! fixed list of [`Op`]s before anything executes, and both the kernel
//! and the 1974 supervisor then execute that same logical list. The
//! schedule policy only reorders the kernel's internal dispatch and
//! wakeup-drain decisions — so the **parity labels** (outcomes of the
//! write/read operations a user can observe) must be identical across
//! every schedule *and* across both designs. Everything a run needs to
//! be reproduced is the `(scenario, seed, schedule)` triple.

use crate::oracle;
use crate::policies::{schedule_string, Recorder, TraceHandle};
use mx_aim::Label;
use mx_hw::meter::EdgeSet;
use mx_hw::{SplitMix64, Word, PAGE_WORDS};
use mx_kernel::vproc::VpId;
use mx_kernel::{Acl, Kernel, KernelConfig, KernelError, UserId};
use mx_legacy::{Acl as LAcl, LegacyError, Supervisor, SupervisorConfig, UserId as LUserId};
use mx_sync::SchedulePolicy;

/// The paper-relevant concurrency scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Pure eventcount handoff on the VP manager alone: one producer
    /// advances, three consumers park at staggered thresholds and take
    /// sequencer tickets when woken. Small enough for exhaustive DFS.
    Handoff,
    /// [`ScenarioKind::Handoff`] driven through a deliberately broken
    /// wakeup that drops the last woken waiter — the injected violation
    /// the oracles must catch (and replay from the seed/schedule alone).
    HandoffLossy,
    /// S3's upward-signal path under competition: two segments growing
    /// across small packs force relocations and upward signals while
    /// the scheduler interleaves.
    Signals,
    /// Quota growth races: two segments under one 4-page quota cell;
    /// exactly the storm of `tests/signals.rs`, under arbitrary
    /// schedules.
    Quota,
    /// Page faults racing the idle-priority purifier in a cramped
    /// frame pool.
    Purifier,
    /// TLB invalidation broadcast (deactivation sweeps) racing
    /// concurrent translations with the associative memory on.
    Tlb,
}

impl ScenarioKind {
    /// The scenarios `repro --only x1` sweeps (the lossy variant is a
    /// self-check, not part of the sweep).
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Handoff,
        ScenarioKind::Signals,
        ScenarioKind::Quota,
        ScenarioKind::Purifier,
        ScenarioKind::Tlb,
    ];

    /// Short stable name (used in reports and replay strings).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Handoff => "handoff",
            ScenarioKind::HandoffLossy => "handoff-lossy",
            ScenarioKind::Signals => "signals",
            ScenarioKind::Quota => "quota",
            ScenarioKind::Purifier => "purifier",
            ScenarioKind::Tlb => "tlb",
        }
    }

    /// Parses a [`ScenarioKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "handoff" => Some(ScenarioKind::Handoff),
            "handoff-lossy" => Some(ScenarioKind::HandoffLossy),
            "signals" => Some(ScenarioKind::Signals),
            "quota" => Some(ScenarioKind::Quota),
            "purifier" => Some(ScenarioKind::Purifier),
            "tlb" => Some(ScenarioKind::Tlb),
            _ => None,
        }
    }

    /// Whether the old design can execute this scenario's op list (the
    /// handoff scenarios exercise the eventcount substrate the 1974
    /// supervisor does not have).
    pub fn has_legacy(self) -> bool {
        !matches!(self, ScenarioKind::Handoff | ScenarioKind::HandoffLossy)
    }
}

/// One logical driver operation. The op list is precomputed from the
/// seed, so both designs execute the identical sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Write `val` to the first word of `page` in segment `seg`.
    Write { seg: usize, page: u32, val: u64 },
    /// Read the first word of `page` in segment `seg`.
    Read { seg: usize, page: u32 },
    /// One scheduler pass (kernel `schedule()`, legacy `dispatch()`).
    Schedule,
    /// Up to `usize` purifier steps (kernel only; legacy has none).
    Purify(usize),
    /// Advance the scenario eventcount (kernel only).
    Advance,
    /// Clean-shutdown sweep: deactivate everything, flush, persist.
    Sync,
}

/// Expands `(kind, seed)` into the fixed op list.
fn ops(kind: ScenarioKind, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00 ^ (kind.name().len() as u64) << 32);
    let mut v = Vec::new();
    let mut written: Vec<(usize, u32)> = Vec::new();
    let push_read = |v: &mut Vec<Op>, rng: &mut SplitMix64, written: &[(usize, u32)]| {
        if let Some(&(seg, page)) = written.get(rng.range_usize(0, written.len().max(1))) {
            v.push(Op::Read { seg, page });
        }
    };
    match kind {
        ScenarioKind::Handoff | ScenarioKind::HandoffLossy => {
            // The handoff scenario is driven structurally, not by ops.
        }
        ScenarioKind::Signals => {
            for i in 0..24 {
                match rng.range_u32(0, 10) {
                    0..=5 => {
                        let seg = rng.range_usize(0, 2);
                        let page = rng.range_u32(0, 10);
                        let val = rng.range_u64(1, 1 << 30);
                        v.push(Op::Write { seg, page, val });
                        written.push((seg, page));
                    }
                    6..=7 => push_read(&mut v, &mut rng, &written),
                    _ => v.push(Op::Schedule),
                }
                if i == 7 || i == 15 {
                    v.push(Op::Advance);
                }
            }
        }
        ScenarioKind::Quota => {
            // Two growers race for one 4-page cell: page numbers advance
            // per segment so every accepted write costs a fresh page.
            let mut next_page = [0u32; 2];
            for i in 0..14 {
                let seg = rng.range_usize(0, 2);
                let page = next_page[seg];
                next_page[seg] += 1;
                let val = rng.range_u64(1, 1 << 30);
                v.push(Op::Write { seg, page, val });
                if rng.chance(1, 3) {
                    v.push(Op::Schedule);
                }
                if i == 6 {
                    v.push(Op::Advance);
                }
            }
        }
        ScenarioKind::Purifier => {
            for i in 0..28 {
                match rng.range_u32(0, 10) {
                    0..=5 => {
                        let page = rng.range_u32(0, 16);
                        let val = rng.range_u64(1, 1 << 30);
                        v.push(Op::Write { seg: 0, page, val });
                        written.push((0, page));
                    }
                    6..=7 => push_read(&mut v, &mut rng, &written),
                    8 => v.push(Op::Purify(1 + rng.range_usize(0, 3))),
                    _ => v.push(Op::Schedule),
                }
                if i == 9 || i == 19 {
                    v.push(Op::Advance);
                }
            }
        }
        ScenarioKind::Tlb => {
            for i in 0..30 {
                match rng.range_u32(0, 10) {
                    0..=4 => {
                        let seg = rng.range_usize(0, 2);
                        let page = rng.range_u32(0, 6);
                        let val = rng.range_u64(1, 1 << 30);
                        v.push(Op::Write { seg, page, val });
                        written.push((seg, page));
                    }
                    5..=8 => push_read(&mut v, &mut rng, &written),
                    _ => v.push(Op::Schedule),
                }
                // The invalidation broadcast mid-stream: everything is
                // deactivated while later ops re-translate.
                if i == 10 {
                    v.push(Op::Sync);
                }
                if i == 20 {
                    v.push(Op::Advance);
                }
            }
        }
    }
    if kind.has_legacy() {
        v.push(Op::Sync);
        // A deterministic read-back tail over everything written, so
        // the parity labels cover final contents, not just op results.
        written.sort_unstable();
        written.dedup();
        for (seg, page) in written {
            v.push(Op::Read { seg, page });
        }
    }
    v
}

/// Everything one explored schedule produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which scenario ran.
    pub kind: ScenarioKind,
    /// The seed the op list was expanded from.
    pub seed: u64,
    /// The recorded schedule string (replayable; `-` under pure FIFO).
    pub schedule: String,
    /// Every label the run emitted (scheduling-sensitive).
    pub outcome: Vec<String>,
    /// The user-visible subset: write/read results. Must be identical
    /// across schedules and across designs.
    pub parity: Vec<String>,
    /// FNV-1a hash of `outcome` — the distinct-schedule-outcome key.
    pub fingerprint: u64,
    /// Oracle violations (empty = the schedule passed).
    pub violations: Vec<String>,
    /// Observed inter-subsystem edges over the whole scenario run.
    pub edges: EdgeSet,
}

/// FNV-1a over the label list.
fn fingerprint(labels: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for l in labels {
        for b in l.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn kernel_error_label(e: &KernelError) -> String {
    match e {
        KernelError::QuotaExceeded { .. } => "quota".into(),
        KernelError::AllPacksFull => "full".into(),
        other => format!("err:{other:?}"),
    }
}

fn legacy_error_label(e: &LegacyError) -> String {
    match e {
        LegacyError::QuotaExceeded { .. } => "quota".into(),
        LegacyError::AllPacksFull => "full".into(),
        other => format!("err:{other:?}"),
    }
}

/// Runs `kind` at `seed` on the kernel under `policy`, returning the
/// full report. Pass [`mx_sync::FifoPolicy`] for the baseline schedule.
pub fn run_kernel(kind: ScenarioKind, seed: u64, policy: Box<dyn SchedulePolicy>) -> RunReport {
    match kind {
        ScenarioKind::Handoff => run_handoff(seed, policy, false),
        ScenarioKind::HandoffLossy => run_handoff(seed, policy, true),
        _ => run_kernel_ops(kind, seed, policy),
    }
}

fn kernel_for(kind: ScenarioKind) -> Kernel {
    let mut k = match kind {
        ScenarioKind::Signals => {
            let mut k = Kernel::boot(KernelConfig {
                packs: 2,
                records_per_pack: 8,
                toc_slots_per_pack: 16,
                root_quota: 128,
                ..KernelConfig::default()
            });
            // A roomy third pack so relocation always has a target.
            k.machine.disks.attach(128, 32);
            k
        }
        ScenarioKind::Quota => {
            let mut k = Kernel::boot(KernelConfig {
                frames: 128,
                packs: 2,
                records_per_pack: 64,
                toc_slots_per_pack: 24,
                pt_slots: 24,
                max_processes: 4,
                root_quota: 500,
                ..KernelConfig::default()
            });
            k.machine.disks.attach(64, 32);
            k
        }
        ScenarioKind::Purifier => Kernel::boot(KernelConfig {
            frames: 48,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 16,
            max_processes: 4,
            root_quota: 500,
            ..KernelConfig::default()
        }),
        ScenarioKind::Tlb => {
            let mut k = Kernel::boot(KernelConfig {
                frames: 128,
                records_per_pack: 256,
                toc_slots_per_pack: 64,
                root_quota: 500,
                ..KernelConfig::default()
            });
            for cpu in &mut k.machine.cpus {
                cpu.features.associative_memory = true;
            }
            k.machine.tlb_clear();
            k
        }
        ScenarioKind::Handoff | ScenarioKind::HandoffLossy => unreachable!("structural scenario"),
    };
    k.register_account("x", UserId(1), 1, Label::BOTTOM);
    k
}

fn supervisor_for(kind: ScenarioKind) -> Supervisor {
    match kind {
        ScenarioKind::Signals => {
            let mut sup = Supervisor::boot(SupervisorConfig {
                packs: 2,
                records_per_pack: 8,
                toc_slots_per_pack: 16,
                root_quota_pages: 128,
                ..SupervisorConfig::default()
            });
            sup.machine.disks.attach(128, 32);
            sup
        }
        ScenarioKind::Quota => {
            let mut sup = Supervisor::boot(SupervisorConfig {
                frames: 128,
                packs: 2,
                records_per_pack: 64,
                toc_slots_per_pack: 24,
                ast_slots: 24,
                max_processes: 4,
                root_quota_pages: 500,
            });
            sup.machine.disks.attach(64, 32);
            sup
        }
        ScenarioKind::Purifier => Supervisor::boot(SupervisorConfig {
            frames: 48,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            ast_slots: 16,
            max_processes: 4,
            root_quota_pages: 500,
            ..SupervisorConfig::default()
        }),
        ScenarioKind::Tlb => Supervisor::boot(SupervisorConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            root_quota_pages: 500,
            ..SupervisorConfig::default()
        }),
        ScenarioKind::Handoff | ScenarioKind::HandoffLossy => unreachable!("kernel-only"),
    }
}

fn run_kernel_ops(kind: ScenarioKind, seed: u64, policy: Box<dyn SchedulePolicy>) -> RunReport {
    let plan = ops(kind, seed);
    let mut k = kernel_for(kind);
    // Two processes so the level-2 scheduler has something to rotate.
    let pid = k.login_residue("x", 1, Label::BOTTOM).expect("login");
    let _pid2 = k.create_process(UserId(1), Label::BOTTOM).expect("proc 2");
    let root = k.root_token();

    // Build the segment population the op list addresses.
    let parent = if kind == ScenarioKind::Quota {
        let dir = k
            .create_entry(
                pid,
                root,
                "capped",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                true,
            )
            .expect("quota dir");
        k.set_quota(pid, dir, 4).expect("set quota");
        dir
    } else {
        root
    };
    let mut segnos = Vec::new();
    for name in ["ga", "gb"] {
        let tok = k
            .create_entry(
                pid,
                parent,
                name,
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .expect("segment");
        segnos.push(k.initiate(pid, tok).expect("initiate"));
    }

    // Two spare user VPs parked on the scenario eventcount: the later
    // `Advance` op becomes an arity-2 wakeup-drain choice point.
    let ec = k.ec_create();
    let spare = [VpId(4), VpId(5)];
    for vp in spare {
        k.vpm.await_value(vp, ec, 1);
    }

    // Only now install the recording policy: boot and setup always run
    // the historical FIFO order, so every schedule explores the same
    // initial state.
    let (rec, trace) = Recorder::new(policy);
    k.set_schedule_policy(Box::new(rec));

    let mut outcome = Vec::new();
    let mut parity = Vec::new();
    for op in &plan {
        match *op {
            Op::Write { seg, page, val } => {
                let label = match k.write_word(
                    pid,
                    segnos[seg],
                    page * PAGE_WORDS as u32,
                    Word::new(val),
                ) {
                    Ok(()) => "w:ok".to_string(),
                    Err(e) => format!("w:{}", kernel_error_label(&e)),
                };
                outcome.push(label.clone());
                parity.push(label);
            }
            Op::Read { seg, page } => {
                let label = match k.read_word(pid, segnos[seg], page * PAGE_WORDS as u32) {
                    Ok(w) => format!("r:{}", w.raw()),
                    Err(e) => format!("r:{}", kernel_error_label(&e)),
                };
                outcome.push(label.clone());
                parity.push(label);
            }
            Op::Schedule => {
                // Which process lands on which VP is schedule-sensitive:
                // it belongs in the outcome, never in the parity labels.
                match k.schedule() {
                    Some(d) => outcome.push(format!("s:p{}v{}", d.pid.0, d.vp.0)),
                    None => outcome.push("s:idle".to_string()),
                }
            }
            Op::Purify(steps) => {
                let done = k.run_purifier(steps).expect("purifier");
                outcome.push(format!("p:{done}"));
            }
            Op::Advance => {
                let woken = k.ec_advance(ec);
                outcome.push(format!("a:{woken}"));
            }
            Op::Sync => {
                k.sync_to_disk().expect("sync");
                outcome.push("y".to_string());
            }
        }
    }

    let mut violations = oracle::check_kernel(&k);
    // The parked spares must have been woken (wakeup exactness end-to-end).
    for vp in spare {
        if k.vpm.state(vp) == mx_kernel::vproc::VpState::Waiting {
            violations.push(format!("spare {vp:?} never woke from the scenario advance"));
        }
    }
    let edges = k.machine.clock.edge_snapshot();
    finish(kind, seed, &trace, outcome, parity, violations, edges)
}

/// Runs the legacy counterpart of `kind` at `seed`. The old design has
/// no schedule hooks — this is the single FIFO baseline whose parity
/// labels every kernel schedule must match.
///
/// # Panics
///
/// Panics for the handoff scenarios ([`ScenarioKind::has_legacy`]).
pub fn run_legacy(kind: ScenarioKind, seed: u64) -> RunReport {
    assert!(kind.has_legacy(), "no legacy counterpart for {kind:?}");
    let plan = ops(kind, seed);
    let mut sup = supervisor_for(kind);
    let pid = sup.create_process(LUserId(1), Label::BOTTOM).expect("proc");
    let _pid2 = sup
        .create_process(LUserId(1), Label::BOTTOM)
        .expect("proc 2");

    let (parent_path, parent_uid) = if kind == ScenarioKind::Quota {
        let uid = sup
            .create_directory_in(sup.root(), "capped", LAcl::owner(LUserId(1)), Label::BOTTOM)
            .expect("quota dir");
        sup.set_quota_directory(pid, "capped", 4)
            .expect("set quota");
        ("capped>".to_string(), uid)
    } else {
        (String::new(), sup.root())
    };
    let mut segnos = Vec::new();
    for name in ["ga", "gb"] {
        sup.create_segment_in(parent_uid, name, LAcl::owner(LUserId(1)), Label::BOTTOM)
            .expect("segment");
        segnos.push(
            sup.initiate(pid, &format!("{parent_path}{name}"))
                .expect("initiate"),
        );
    }

    let mut outcome = Vec::new();
    let mut parity = Vec::new();
    for op in &plan {
        match *op {
            Op::Write { seg, page, val } => {
                let label = match sup.user_write(
                    pid,
                    segnos[seg],
                    page * PAGE_WORDS as u32,
                    Word::new(val),
                ) {
                    Ok(()) => "w:ok".to_string(),
                    Err(e) => format!("w:{}", legacy_error_label(&e)),
                };
                outcome.push(label.clone());
                parity.push(label);
            }
            Op::Read { seg, page } => {
                let label = match sup.user_read(pid, segnos[seg], page * PAGE_WORDS as u32) {
                    Ok(w) => format!("r:{}", w.raw()),
                    Err(e) => format!("r:{}", legacy_error_label(&e)),
                };
                outcome.push(label.clone());
                parity.push(label);
            }
            Op::Schedule => match sup.dispatch() {
                Some(p) => outcome.push(format!("s:p{}", p.0)),
                None => outcome.push("s:idle".to_string()),
            },
            // The old design has no purifier and no eventcounts.
            Op::Purify(_) | Op::Advance => {}
            Op::Sync => {
                sup.sync_to_disk().expect("sync");
                outcome.push("y".to_string());
            }
        }
    }

    let violations = oracle::check_legacy(&sup);
    let fp = fingerprint(&outcome);
    RunReport {
        kind,
        seed,
        schedule: "-".to_string(),
        outcome,
        parity,
        fingerprint: fp,
        violations,
        edges: sup.machine.clock.edge_snapshot(),
    }
}

/// The structural handoff scenario on a bare VP manager: VP 0 produces
/// two advances; VPs 1 and 2 park at threshold 1, VP 3 at threshold 2;
/// each consumer takes one sequencer ticket when it runs and then parks
/// out of the game. Every wakeup and every dispatch among the woken is
/// a choice point, and the whole tree is a few hundred schedules —
/// ideal for exhaustive DFS.
fn run_handoff(seed: u64, policy: Box<dyn SchedulePolicy>, lossy: bool) -> RunReport {
    use mx_kernel::core_segment::CoreSegmentManager;
    use mx_kernel::vproc::{VirtualProcessorManager, VpState};

    let mut csm = CoreSegmentManager::new(0, 4);
    let mut mem = mx_hw::MainMemory::new(8);
    let mut clock = mx_hw::Clock::new();
    let mut vpm = VirtualProcessorManager::new(&mut csm, 4).expect("vpm");
    let ec = vpm.create_eventcount();
    let seq = vpm.create_sequencer();
    let done = vpm.create_eventcount(); // never advanced: the parking lot
    vpm.await_value(VpId(1), ec, 1);
    vpm.await_value(VpId(2), ec, 1);
    vpm.await_value(VpId(3), ec, 2);

    let (rec, trace) = Recorder::new(policy);
    vpm.set_policy(Box::new(rec));

    let mut outcome = Vec::new();
    let mut tickets = Vec::new();
    let mut advances = 0;
    for _ in 0..32 {
        let Some(vp) = vpm.dispatch(&csm, &mut mem, &mut clock) else {
            break;
        };
        if vp == VpId(0) {
            if advances < 2 {
                advances += 1;
                let woken = if lossy {
                    vpm.advance_lossy_for_test(ec)
                } else {
                    vpm.advance(ec)
                };
                outcome.push(format!("adv{advances}:{woken}"));
                if advances == 2 {
                    vpm.await_value(VpId(0), done, 1);
                }
            }
        } else {
            let t = vpm.ticket(seq);
            tickets.push(t);
            outcome.push(format!("v{}t{}", vp.0, t));
            vpm.await_value(vp, done, 1);
        }
    }

    let mut violations = oracle::check_meter(&clock);
    violations.extend(oracle::check_vpm(&vpm));
    violations.extend(oracle::check_tickets(&tickets));
    // Liveness: with a correct advance, every consumer got its ticket.
    if !lossy {
        for vp in [VpId(1), VpId(2), VpId(3)] {
            let parked_out = vpm.state(vp) == VpState::Waiting && tickets.len() == 3;
            if !parked_out {
                violations.push(format!("consumer {vp:?} never completed its handoff"));
            }
        }
    }
    let kind = if lossy {
        ScenarioKind::HandoffLossy
    } else {
        ScenarioKind::Handoff
    };
    let edges = clock.edge_snapshot();
    finish(kind, seed, &trace, outcome, Vec::new(), violations, edges)
}

fn finish(
    kind: ScenarioKind,
    seed: u64,
    trace: &TraceHandle,
    outcome: Vec<String>,
    parity: Vec<String>,
    violations: Vec<String>,
    edges: EdgeSet,
) -> RunReport {
    let schedule = schedule_string(&trace.borrow());
    let fp = fingerprint(&outcome);
    RunReport {
        kind,
        seed,
        schedule,
        outcome,
        parity,
        fingerprint: fp,
        violations,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::SeededRandomPolicy;
    use mx_sync::FifoPolicy;

    fn fifo() -> Box<dyn SchedulePolicy> {
        Box::new(FifoPolicy)
    }

    #[test]
    fn op_expansion_is_a_pure_function_of_the_seed() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ops(kind, 42), ops(kind, 42));
        }
        assert_ne!(ops(ScenarioKind::Signals, 1), ops(ScenarioKind::Signals, 2));
    }

    #[test]
    fn fifo_handoff_is_clean_and_deterministic() {
        let a = run_kernel(ScenarioKind::Handoff, 0, fifo());
        let b = run_kernel(ScenarioKind::Handoff, 0, fifo());
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn lossy_handoff_is_caught_by_the_oracles() {
        let r = run_kernel(ScenarioKind::HandoffLossy, 0, fifo());
        assert!(
            r.violations.iter().any(|v| v.contains("stranded")),
            "expected a stranded-VP violation, got {:?}",
            r.violations
        );
    }

    #[test]
    fn kernel_scenarios_pass_oracles_under_fifo_and_random() {
        for kind in [
            ScenarioKind::Signals,
            ScenarioKind::Quota,
            ScenarioKind::Purifier,
            ScenarioKind::Tlb,
        ] {
            let fifo = run_kernel(kind, 7, fifo());
            assert!(
                fifo.violations.is_empty(),
                "{kind:?}: {:?}",
                fifo.violations
            );
            let rnd = run_kernel(kind, 7, Box::new(SeededRandomPolicy::new(3)));
            assert!(rnd.violations.is_empty(), "{kind:?}: {:?}", rnd.violations);
            assert_eq!(
                fifo.parity, rnd.parity,
                "{kind:?}: user-visible results moved with the schedule"
            );
        }
    }

    #[test]
    fn legacy_parity_on_user_visible_results() {
        for kind in [ScenarioKind::Signals, ScenarioKind::Quota] {
            let kernel = run_kernel(kind, 5, fifo());
            let legacy = run_legacy(kind, 5);
            assert!(
                legacy.violations.is_empty(),
                "{kind:?}: {:?}",
                legacy.violations
            );
            assert_eq!(
                kernel.parity, legacy.parity,
                "{kind:?}: the designs disagree on user-visible results"
            );
        }
    }
}
