//! Machine-checkable invariants evaluated after every explored schedule.
//!
//! Each check returns human-readable violation messages (empty = pass).
//! The invariants are exactly the ones the paper's design argument
//! leans on, so a single surviving violation under *any* schedule is a
//! real bug, not exploration noise:
//!
//! * **meter conservation** — every cycle the clock advanced is
//!   attributed to some subsystem (`Meter::attributed_total`);
//! * **per-pack record conservation** — each pack's allocated record
//!   count equals the records reachable from its table-of-contents file
//!   maps (no leaked and no doubly-owned records);
//! * **wakeup exactness** — no eligible waiter is still parked
//!   (`advance` reached everyone), and no VP waits unregistered (a
//!   wakeup that can never arrive);
//! * **dispatch uniqueness** — no VP sits in the run queue twice;
//! * **ticket total-order** — a sequencer's tickets, collected in issue
//!   order, are exactly `0..n` with no duplicate and no gap;
//! * **TLB tally closure** — `hits + misses == lookups`.

use mx_hw::{Clock, DiskSystem, TlbStats};
use mx_kernel::vproc::VirtualProcessorManager;
use mx_kernel::Kernel;
use mx_legacy::Supervisor;

/// Meter conservation on any clock.
pub fn check_meter(clock: &Clock) -> Vec<String> {
    let attributed = clock.meter().attributed_total();
    let now = clock.now();
    if attributed == now {
        Vec::new()
    } else {
        vec![format!(
            "meter conservation: {attributed} cycles attributed but clock at {now}"
        )]
    }
}

/// Per-pack record conservation on any disk system.
pub fn check_storage(disks: &DiskSystem) -> Vec<String> {
    let mut out = Vec::new();
    for pack in disks.packs() {
        let allocated = pack.allocated_record_nos().len();
        let mapped: usize = pack
            .entries()
            .map(|(_, e)| e.file_map.iter().flatten().count())
            .sum();
        if allocated != mapped {
            out.push(format!(
                "record conservation: pack has {allocated} allocated records but {mapped} mapped from its TOC"
            ));
        }
    }
    out
}

/// Wakeup exactness and dispatch uniqueness on a VP manager.
pub fn check_vpm(vpm: &VirtualProcessorManager) -> Vec<String> {
    let mut out = Vec::new();
    for (ec, waiter, threshold) in vpm.lost_wakeups() {
        out.push(format!(
            "lost wakeup: waiter {waiter:?} still parked on {ec:?} below met threshold {threshold}"
        ));
    }
    for vp in vpm.stranded() {
        out.push(format!(
            "stranded VP: {vp:?} is Waiting but registered on no eventcount"
        ));
    }
    for vp in (0..vpm.count() as u32).map(mx_kernel::vproc::VpId) {
        let n = vpm.queued_count(vp);
        if n > 1 {
            out.push(format!("duplicate dispatch: {vp:?} queued {n} times"));
        }
    }
    out
}

/// Ticket total-order: tickets collected in issue order must be `0..n`.
pub fn check_tickets(tickets: &[u64]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, &t) in tickets.iter().enumerate() {
        if t != i as u64 {
            out.push(format!(
                "ticket order: position {i} holds ticket {t} (duplicate or gap)"
            ));
        }
    }
    out
}

/// TLB tally closure.
pub fn check_tlb(tlb: &TlbStats) -> Vec<String> {
    if tlb.hits + tlb.misses == tlb.lookups {
        Vec::new()
    } else {
        vec![format!(
            "tlb closure: {} hits + {} misses != {} lookups",
            tlb.hits, tlb.misses, tlb.lookups
        )]
    }
}

/// The full kernel-side oracle battery.
pub fn check_kernel(k: &Kernel) -> Vec<String> {
    let mut out = check_meter(&k.machine.clock);
    out.extend(check_storage(&k.machine.disks));
    out.extend(check_vpm(&k.vpm));
    out.extend(check_tlb(&k.machine.tlb_stats()));
    out
}

/// The legacy-side oracle battery (the old design has no VP manager;
/// its scheduler is a plain ready queue).
pub fn check_legacy(sup: &Supervisor) -> Vec<String> {
    let mut out = check_meter(&sup.machine.clock);
    out.extend(check_storage(&sup.machine.disks));
    out.extend(check_tlb(&sup.machine.tlb_stats()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_oracle_accepts_dense_and_rejects_gaps() {
        assert!(check_tickets(&[0, 1, 2, 3]).is_empty());
        assert_eq!(check_tickets(&[0, 2, 1]).len(), 2, "gap then duplicate");
    }

    #[test]
    fn meter_and_storage_hold_on_a_fresh_kernel() {
        let k = Kernel::boot_default();
        assert!(check_kernel(&k).is_empty(), "{:?}", check_kernel(&k));
    }

    #[test]
    fn meter_and_storage_hold_on_a_fresh_supervisor() {
        let sup = Supervisor::boot_default();
        assert!(check_legacy(&sup).is_empty(), "{:?}", check_legacy(&sup));
    }
}
