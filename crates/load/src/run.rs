//! The load engine: one session stream, two designs, one report shape.
//!
//! The engine owns every scheduling-free decision — which session acts
//! next (round robin over the live set), when the scripted scheduler
//! pass happens (every fourth operation), when a finished session's
//! slot is re-offered to the admission queue — and delegates the
//! design-specific work to a [`Driver`]. Both drivers therefore execute
//! the byte-identical logical stream, which is what makes the
//! user-visible parity assertion meaningful.

use crate::hist::Histogram;
use crate::script::{session_script, SessionOp, SessionScript, LIB_SYMBOLS, SHARED_PAGES};
use mx_aim::Label;
use mx_explore::oracle;
use mx_hw::meter::{EdgeSet, MeterSnapshot};
use mx_hw::{Word, PAGE_WORDS};
use mx_kernel::{
    Acl, Kernel, KernelConfig, KernelError, ObjToken, OnlineProgress, ProcessId, UserId,
};
use mx_legacy::{
    AccessRight, Acl as LAcl, LegacyError, LegacyOnlineProgress, ProcessId as LProcessId,
    Supervisor, SupervisorConfig, UserId as LUserId,
};
use mx_sync::SchedulePolicy;
use mx_user::{publish_library, Admission, AnsweringService, NameSpace, UserLinker};

/// What to run: how many sessions, from which seed, on what storage.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Concurrent users scripted (admission caps how many are live).
    pub sessions: usize,
    /// Seed every script expands from.
    pub seed: u64,
    /// Small packs and tight quotas, so grows hit past-quota and
    /// full-pack outcomes; the default sizes storage to the population
    /// and measures scheduling and paging instead.
    pub tight_storage: bool,
    /// With `tight_storage`: keep the tight shard quotas and the small
    /// process table, but give the packs room. The chaos-composition
    /// harness (C1) uses this shape: quota outcomes and admission
    /// pressure stay adversarial, while `AllPacksFull` — whose exact
    /// onset depends on each design's internal record allocations, which
    /// recovery legitimately perturbs — stays out of the user-visible
    /// stream. `>processes` also accumulates one state segment per login
    /// across recovery epochs, which the roomier root quota absorbs.
    pub(crate) headroom: bool,
}

impl LoadSpec {
    /// An ample-storage spec (the L1 scaling sweep shape).
    pub fn new(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            seed,
            tight_storage: false,
            headroom: false,
        }
    }

    /// A tight-storage spec (the differential-fuzz shape).
    pub fn tight(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            seed,
            tight_storage: true,
            headroom: false,
        }
    }

    /// The continuous-operation spec (the C1 chaos-composition shape):
    /// tight quotas and a small process table under a long-horizon run
    /// segmented by crashes, with enough pack room that storage survives
    /// several epochs of recovery traffic.
    pub fn continuous(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            seed,
            tight_storage: true,
            headroom: true,
        }
    }

    fn shards(&self) -> usize {
        if self.tight_storage {
            2
        } else {
            8
        }
    }

    fn shard_quota(&self) -> u32 {
        if self.tight_storage {
            3
        } else {
            // Roomy enough that abandoned sessions' surviving files never
            // starve a shard across the whole population.
            (self.sessions as u32).max(10)
        }
    }

    pub(crate) fn kernel_config(&self) -> KernelConfig {
        if self.tight_storage {
            if self.headroom {
                return KernelConfig {
                    frames: 96,
                    packs: 2,
                    records_per_pack: 64,
                    toc_slots_per_pack: 96,
                    max_processes: 4,
                    root_quota: 512,
                    ..KernelConfig::default()
                };
            }
            KernelConfig {
                frames: 96,
                packs: 2,
                records_per_pack: 12,
                toc_slots_per_pack: 24,
                max_processes: 4,
                root_quota: 96,
                ..KernelConfig::default()
            }
        } else {
            let n = self.sessions as u32;
            KernelConfig {
                records_per_pack: (3 * n).max(1024),
                toc_slots_per_pack: (2 * n).max(256),
                root_quota: (2 * n + 256).max(1500),
                ..KernelConfig::default()
            }
        }
    }

    pub(crate) fn supervisor_config(&self) -> SupervisorConfig {
        if self.tight_storage {
            if self.headroom {
                return SupervisorConfig {
                    frames: 96,
                    packs: 2,
                    records_per_pack: 64,
                    toc_slots_per_pack: 96,
                    ast_slots: 64,
                    max_processes: 4,
                    root_quota_pages: 512,
                };
            }
            SupervisorConfig {
                frames: 96,
                packs: 2,
                records_per_pack: 12,
                toc_slots_per_pack: 24,
                ast_slots: 64,
                max_processes: 4,
                root_quota_pages: 96,
            }
        } else {
            let n = self.sessions as u32;
            SupervisorConfig {
                records_per_pack: (3 * n).max(1024),
                toc_slots_per_pack: (2 * n).max(256),
                root_quota_pages: (2 * n + 256).max(1500),
                ..SupervisorConfig::default()
            }
        }
    }

    /// The overflow pack this spec attaches after boot, if any, as
    /// `(records, toc_slots)`. Recovery re-attaches the same shape.
    pub(crate) fn overflow_pack(&self) -> Option<(u32, u32)> {
        if !self.tight_storage {
            None
        } else if self.headroom {
            // Room for several epochs of relocation targets plus the
            // state segments each recovery's re-logins accrete.
            Some((128, 96))
        } else {
            // A modest overflow pack: relocation has a target, but a
            // heavy seed can still fill everything — the full-pack
            // outcome.
            Some((48, 24))
        }
    }

    pub(crate) fn scripts(&self) -> Vec<SessionScript> {
        (0..self.sessions)
            .map(|i| session_script(self.seed, i, self.shards()))
            .collect()
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards()
    }

    pub(crate) fn shard_quota_pages(&self) -> u32 {
        self.shard_quota()
    }
}

/// Everything one design's run of a [`LoadSpec`] produced.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// `"kernel"` or `"legacy"`.
    pub design: &'static str,
    /// Simulated cycles spent in the load phase (setup excluded).
    pub cycles: u64,
    /// Cycles the shared setup (world build, registration) took.
    pub setup_cycles: u64,
    /// Operations completed (the histogram's sample population).
    pub ops: u64,
    /// Sessions driven to completion (always the full population —
    /// queued logins are admitted as slots free up, never dropped).
    pub sessions: usize,
    /// Sessions that were abandoned and reaped rather than logged out.
    pub abandoned: usize,
    /// Deepest the admission queue got during the login storm.
    pub queued_peak: usize,
    /// The user-visible outcome labels, in execution order. Identical
    /// across designs for the same spec, or the harness has found a bug.
    pub parity: Vec<String>,
    /// Per-operation service-time histogram (cycles).
    pub hist: Histogram,
    /// User operations retired per real processor during the load phase.
    pub per_cpu_ops: Vec<u64>,
    /// Kernel only: total VP-switch intervals spent runnable-but-queued,
    /// and the dispatches that averages over. `(0, 0)` for legacy.
    pub queue_delay: (u64, u64),
    /// Kernel only: peak depth of the real-memory event queue.
    pub event_queue_hwm: usize,
    /// Per-subsystem cycle attribution over the load phase.
    pub meter: MeterSnapshot,
    /// Observed inter-subsystem edges (invocations and shared-data
    /// writes) over the load phase, for the lattice gate.
    pub edges: EdgeSet,
    /// Oracle battery results (meter conservation, per-pack record
    /// conservation, wakeup exactness, TLB closure). Empty = clean.
    pub violations: Vec<String>,
    /// Per-session latency samples in execution order, indexed by the
    /// session index the run was given. The sharded engine uses these to
    /// prove worker-count invariance sample-for-sample, not just in the
    /// bucketed histogram.
    pub user_samples: Vec<Vec<u64>>,
}

impl LoadRun {
    /// Operations retired per million simulated cycles.
    pub fn ops_per_mcycle(&self) -> f64 {
        self.ops as f64 * 1e6 / self.cycles.max(1) as f64
    }

    /// Sessions completed per million simulated cycles.
    pub fn sessions_per_mcycle(&self) -> f64 {
        self.sessions as f64 * 1e6 / self.cycles.max(1) as f64
    }

    /// The cross-design check: both runs' oracle batteries plus
    /// position-by-position user-visible parity. Empty = the designs
    /// agree and both conserved everything.
    pub fn check_pair(kernel: &LoadRun, legacy: &LoadRun) -> Vec<String> {
        let mut out = Vec::new();
        out.extend(kernel.violations.iter().map(|v| format!("kernel: {v}")));
        out.extend(legacy.violations.iter().map(|v| format!("legacy: {v}")));
        if kernel.parity.len() != legacy.parity.len() {
            out.push(format!(
                "parity: kernel emitted {} labels, legacy {}",
                kernel.parity.len(),
                legacy.parity.len()
            ));
        }
        for (i, (k, l)) in kernel.parity.iter().zip(legacy.parity.iter()).enumerate() {
            if k != l {
                out.push(format!(
                    "parity: label {i} differs — kernel '{k}', legacy '{l}'"
                ));
                break;
            }
        }
        out
    }
}

// --------------------------------------------------------- the engine --

/// A script op made concrete by the engine (page picks reduced against
/// the session's actual growth; paths left symbolic for the driver).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Action {
    Link(usize),
    Resolve(ResolveTarget),
    Grow { page: u32, val: u64 },
    ReadOwn { page: u32 },
    ReadShared { page: u32 },
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ResolveTarget {
    Lib,
    Shared,
    Shard(usize),
}

/// The design-specific half of the harness.
pub(crate) trait Driver {
    fn now(&self) -> u64;
    fn queued(&self) -> usize;
    /// Login attempt for session `idx`: true = admitted, false = parked
    /// in the admission queue (slot exhaustion is never an error).
    fn request(&mut self, idx: usize) -> bool;
    /// Admits parked logins while slots last; returns their indices.
    fn admit(&mut self) -> Vec<usize>;
    fn exec(&mut self, idx: usize, shard: usize, action: &Action) -> String;
    /// Ends the session: deletes its file (unless abandoned) and logs
    /// out (reaps, for abandoned sessions). Returns the parity label.
    fn finish(&mut self, idx: usize, shard: usize, abandon: bool) -> String;
    fn schedule(&mut self);
    /// The periodic housekeeping sweep (both designs: deactivate every
    /// active segment, flushing dirty pages and quota cells). Neither
    /// activation table reclaims on demand — the old AST surfaces
    /// `AstFull`, the new page-table pool `TableFull` — so a long-lived
    /// system runs this sweep the way real installations ran theirs.
    fn housekeep(&mut self);
    /// Post-op hook: with an online salvage in progress the driver
    /// advances the repair one step and runs the per-release oracle
    /// battery, so the claim frontier drains concurrently with service.
    /// In ordinary runs it is a no-op.
    fn salvage_tick(&mut self) {}
}

pub(crate) struct Live {
    pub(crate) idx: usize,
    pub(crate) op_ix: usize,
    /// The values the session's own file has successfully grown by, in
    /// page order. `len()` is the classic grown count; keeping the
    /// values lets a recovery harness replay the file's exact contents
    /// when a crash loses the in-flight copy.
    pub(crate) grown_vals: Vec<u64>,
}

impl Live {
    fn fresh(idx: usize) -> Self {
        Self {
            idx,
            op_ix: 0,
            grown_vals: Vec::new(),
        }
    }
}

/// The engine's whole position in the logical stream. Persisting this
/// across a crash/recover boundary — while the driver underneath is torn
/// down and rebuilt — is what lets a segmented run execute the same
/// logical stream as an uninterrupted one.
pub(crate) struct EngineState {
    pub(crate) live: Vec<Live>,
    pub(crate) cursor: usize,
    pub(crate) finished: usize,
    pub(crate) ops: u64,
    pub(crate) queued_peak: usize,
    pub(crate) abandoned: usize,
    pub(crate) parity: Vec<String>,
    pub(crate) hist: Histogram,
    /// Session indices in the order the admission queue released them
    /// (post-storm admissions only) — the fairness record.
    pub(crate) admitted_order: Vec<usize>,
    /// Latency samples per session index, grown lazily as sessions act.
    pub(crate) user_samples: Vec<Vec<u64>>,
}

impl EngineState {
    pub(crate) fn new() -> Self {
        Self {
            live: Vec::new(),
            cursor: 0,
            finished: 0,
            ops: 0,
            queued_peak: 0,
            abandoned: 0,
            parity: Vec::new(),
            hist: Histogram::new(),
            admitted_order: Vec::new(),
            user_samples: Vec::new(),
        }
    }

    /// Records one latency sample for session `idx` (and the histogram).
    fn sample(&mut self, idx: usize, delta: u64) {
        self.hist.record(delta);
        if self.user_samples.len() <= idx {
            self.user_samples.resize_with(idx + 1, Vec::new);
        }
        self.user_samples[idx].push(delta);
    }
}

/// The login storm: every user arrives before anyone acts.
pub(crate) fn storm<D: Driver>(d: &mut D, scripts: &[SessionScript], st: &mut EngineState) {
    for idx in 0..scripts.len() {
        if d.request(idx) {
            st.live.push(Live::fresh(idx));
        }
        st.queued_peak = st.queued_peak.max(d.queued());
    }
}

/// Advances the round-robin engine until the live set drains (returns
/// `true`) or the global op counter reaches `stop_at` (returns `false`,
/// leaving the state resumable). The traversal is exactly the classic
/// one: a cursor sweeps the live vector, wrapping to the front when it
/// falls off the end, so a paused-and-resumed run visits sessions in the
/// same order an uninterrupted run does.
pub(crate) fn drive_until<D: Driver>(
    d: &mut D,
    scripts: &[SessionScript],
    st: &mut EngineState,
    stop_at: Option<u64>,
) -> bool {
    loop {
        if st.live.is_empty() {
            return true;
        }
        if let Some(stop) = stop_at {
            if st.ops >= stop {
                return false;
            }
        }
        if st.cursor >= st.live.len() {
            st.cursor = 0;
        }
        let i = st.cursor;
        let (idx, op_ix, grown) = {
            let s = &st.live[i];
            (s.idx, s.op_ix, s.grown_vals.len() as u32)
        };
        let script = &scripts[idx];
        if op_ix < script.ops.len() {
            let action = match script.ops[op_ix] {
                SessionOp::Link(s) => Some(Action::Link(s)),
                SessionOp::Resolve(t) => Some(Action::Resolve(match t {
                    0 => ResolveTarget::Lib,
                    1 => ResolveTarget::Shared,
                    _ => ResolveTarget::Shard(script.shard),
                })),
                SessionOp::Grow(val) => Some(Action::Grow { page: grown, val }),
                SessionOp::ReadBack(r) if grown > 0 => Some(Action::ReadOwn { page: r % grown }),
                SessionOp::ReadBack(_) => None, // nothing grown yet: skip
                SessionOp::ReadShared(p) => Some(Action::ReadShared { page: p }),
            };
            if let Some(action) = action {
                let before = d.now();
                let label = d.exec(idx, script.shard, &action);
                let delta = d.now() - before;
                st.sample(idx, delta);
                if let Action::Grow { val, .. } = action {
                    if label == "w:ok" {
                        st.live[i].grown_vals.push(val);
                    }
                }
                st.parity.push(label);
                st.ops += 1;
                if st.ops.is_multiple_of(4) {
                    d.schedule();
                }
                d.salvage_tick();
            }
            st.live[i].op_ix += 1;
            st.cursor += 1;
        } else {
            let before = d.now();
            let label = d.finish(idx, script.shard, script.abandon);
            let delta = d.now() - before;
            st.sample(idx, delta);
            st.parity.push(label);
            st.ops += 1;
            if script.abandon {
                st.abandoned += 1;
            }
            st.live.remove(i);
            st.finished += 1;
            if st.finished.is_multiple_of(12) {
                d.housekeep();
            }
            d.salvage_tick();
            // The freed slot goes to the head of the admission queue.
            for idx in d.admit() {
                st.admitted_order.push(idx);
                st.live.push(Live::fresh(idx));
            }
        }
    }
}

fn drive<D: Driver>(d: &mut D, scripts: &[SessionScript]) -> EngineState {
    let mut st = EngineState::new();
    storm(d, scripts, &mut st);
    drive_until(d, scripts, &mut st, None);
    st
}

// ----------------------------------------------------- shared fixtures --

pub(crate) fn account_name(idx: usize) -> String {
    format!("u{idx}")
}

fn account_index(name: &str) -> usize {
    name.strip_prefix('u')
        .and_then(|s| s.parse().ok())
        .expect("load account names are u<idx>")
}

pub(crate) fn symbol(i: usize) -> String {
    format!("sym{i:02}")
}

pub(crate) fn definitions() -> Vec<(String, u32)> {
    (0..LIB_SYMBOLS)
        .map(|i| (symbol(i), 64 + 8 * i as u32))
        .collect()
}

pub(crate) fn shared_word(page: u32) -> u64 {
    0x5EED + u64::from(page)
}

pub(crate) fn file_name(idx: usize) -> String {
    format!("f{idx}")
}

// --------------------------------------------- online-salvage plumbing --

/// Each retry against a `SalvageBusy` barrier gives the salvager one
/// step, so the budget bounds how much repair work a single blocked
/// operation can be asked to wait out. The claim frontier is one
/// directory per step and the finalize tail one sweep per pack; 256
/// steps covers any world this harness builds many times over, so
/// exhaustion means the salvager stopped making progress — reported as
/// a typed violation and a `busy` label, never a hang or a panic.
pub(crate) const SALVAGE_RETRY_BUDGET: u32 = 256;

/// What the engine observed while serving traffic concurrently with an
/// online salvage: the overlap window, the blocked-op figures, and
/// every per-release oracle violation.
#[derive(Debug, Clone, Default)]
pub struct SalvageProbe {
    /// Clock reading when the runner started the online salvage.
    pub begin_at: Option<u64>,
    /// Clock reading when the salvager reported `Done`.
    pub done_at: Option<u64>,
    /// Clock reading when the first post-recovery op completed.
    pub first_op_at: Option<u64>,
    /// Ops completed while the salvage was still in progress.
    pub ops_overlapped: u64,
    /// Ops that hit a `SalvageBusy` barrier at least once.
    pub blocked_ops: u64,
    /// Barrier retries summed over all blocked ops.
    pub retries: u64,
    /// Cycles blocked ops spent from first attempt to completion.
    pub blocked_cycles: u64,
    /// Directories released while the engine drove (includes releases
    /// forced by blocked-op retries during reconciliation).
    pub dirs_released: u32,
    /// Problems in the completed salvage's report.
    pub problems: usize,
    /// Repairs in the completed salvage's report.
    pub repairs: usize,
    /// Per-release battery failures and salvage-path errors.
    pub violations: Vec<String>,
}

/// The serving-half storage check run at every directory release: every
/// record a TOC file map references must be allocated, and no record
/// may be claimed by two file maps. Leaked records — allocated but
/// unreferenced — are legal mid-salvage (the leak sweep runs last), so
/// this is deliberately weaker than the post-salvage full conservation
/// check.
pub(crate) fn check_serving_records(disks: &mx_hw::DiskSystem) -> Vec<String> {
    let mut out = Vec::new();
    for pack in disks.packs() {
        let allocated: std::collections::HashSet<u32> =
            pack.allocated_record_nos().iter().map(|r| r.0).collect();
        let mut seen = std::collections::HashSet::new();
        for (toc, entry) in pack.entries() {
            for rec in entry.file_map.iter().flatten() {
                if !allocated.contains(&rec.0) {
                    out.push(format!(
                        "pack {}: toc {} maps unallocated record {}",
                        pack.id.0, toc.0, rec.0
                    ));
                }
                if !seen.insert(rec.0) {
                    out.push(format!(
                        "pack {}: record {} claimed by two file maps",
                        pack.id.0, rec.0
                    ));
                }
            }
        }
    }
    out
}

/// One kernel salvage step with the per-release battery applied:
/// recheck verdict, meter conservation, serving-half record
/// conservation at every `Released`, and the full oracle battery at
/// `Done`. Shared by the driver's tick and the S1 reconciliation (which
/// steps the salvager before any driver exists).
pub(crate) fn kernel_salvage_step_checked(k: &mut Kernel, probe: &mut SalvageProbe) {
    match k.online_salvage_step() {
        Ok(OnlineProgress::Released {
            dir, recheck_clean, ..
        }) => {
            probe.dirs_released += 1;
            if !recheck_clean {
                probe.violations.push(format!(
                    "released dir uid {} with a failing recheck — \
                     per-directory salvage not idempotent",
                    dir.0
                ));
            }
            for v in oracle::check_meter(&k.machine.clock) {
                probe
                    .violations
                    .push(format!("at release of uid {}: {v}", dir.0));
            }
            for v in check_serving_records(&k.machine.disks) {
                probe
                    .violations
                    .push(format!("at release of uid {}: {v}", dir.0));
            }
        }
        Ok(OnlineProgress::Done { report }) => {
            probe.done_at = Some(k.machine.clock.now());
            probe.problems = report.problems.len();
            probe.repairs = report.repairs.len();
            for v in oracle::check_kernel(k) {
                probe.violations.push(format!("post-salvage: {v}"));
            }
        }
        Ok(OnlineProgress::Finalized { .. }) | Ok(OnlineProgress::Idle) => {}
        Err(e) => probe
            .violations
            .push(format!("online salvage step failed: {e:?}")),
    }
}

/// The legacy mirror of [`kernel_salvage_step_checked`].
pub(crate) fn legacy_salvage_step_checked(sup: &mut Supervisor, probe: &mut SalvageProbe) {
    match sup.online_salvage_step() {
        Ok(LegacyOnlineProgress::Released {
            dir, recheck_clean, ..
        }) => {
            probe.dirs_released += 1;
            if !recheck_clean {
                probe.violations.push(format!(
                    "released dir uid {} with a failing recheck — \
                     per-directory salvage not idempotent",
                    dir.0
                ));
            }
            for v in oracle::check_meter(&sup.machine.clock) {
                probe
                    .violations
                    .push(format!("at release of uid {}: {v}", dir.0));
            }
            for v in check_serving_records(&sup.machine.disks) {
                probe
                    .violations
                    .push(format!("at release of uid {}: {v}", dir.0));
            }
        }
        Ok(LegacyOnlineProgress::Done { report }) => {
            probe.done_at = Some(sup.machine.clock.now());
            probe.problems = report.problems.len();
            probe.repairs = report.repairs.len();
            for v in oracle::check_legacy(sup) {
                probe.violations.push(format!("post-salvage: {v}"));
            }
        }
        Ok(LegacyOnlineProgress::Finalized { .. }) | Ok(LegacyOnlineProgress::Idle) => {}
        Err(e) => probe
            .violations
            .push(format!("online salvage step failed: {e:?}")),
    }
}

// ------------------------------------------------------- kernel driver --

pub(crate) fn klabel(e: &KernelError) -> &'static str {
    match e {
        KernelError::QuotaExceeded { .. } => "quota",
        KernelError::AllPacksFull => "full",
        _ => "err",
    }
}

pub(crate) struct KSession {
    pub(crate) pid: ProcessId,
    pub(crate) ns: NameSpace,
    pub(crate) linker: UserLinker,
    pub(crate) own: Option<(u32, ObjToken)>,
    pub(crate) shared_segno: Option<u32>,
}

/// Per-shard recovery work parked behind the online salvager's
/// quarantine: the wipe of the previous population's files and the
/// replay of surviving sessions' file contents wait until the shard
/// directory is released (or, if the crash cost the entry itself, until
/// it is recreated).
#[derive(Debug, Clone)]
pub(crate) struct KernelDeferred {
    pub(crate) shard: usize,
    pub(crate) drv: ProcessId,
    pub(crate) quota: u32,
    pub(crate) wipe: Vec<usize>,
    pub(crate) restore: Vec<(usize, Vec<u64>)>,
}

pub(crate) struct KernelDriver {
    pub(crate) k: Kernel,
    pub(crate) svc: AnsweringService,
    pub(crate) sessions: Vec<Option<KSession>>,
    pub(crate) shard_toks: Vec<ObjToken>,
    pub(crate) salvage: SalvageProbe,
    pub(crate) deferred: Vec<KernelDeferred>,
}

impl KernelDriver {
    pub(crate) fn open(&mut self, idx: usize, pid: ProcessId) {
        let ns = NameSpace::new(&mut self.k, pid);
        self.sessions[idx] = Some(KSession {
            pid,
            ns,
            linker: UserLinker::new(pid),
            own: None,
            shared_segno: None,
        });
    }

    /// One salvager step (with the release battery) if a salvage is in
    /// progress, then whatever deferred shard work became serviceable.
    fn salvage_advance(&mut self) {
        if self.k.online_salvage_active() {
            kernel_salvage_step_checked(&mut self.k, &mut self.salvage);
        }
        self.attempt_deferred();
    }

    /// Runs every deferred per-shard work item whose directory is out
    /// of quarantine; items still barred stay parked for the next
    /// release.
    pub(crate) fn attempt_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            match self.try_deferred(i) {
                Ok(true) => {
                    self.deferred.remove(i);
                }
                Ok(false) => i += 1,
                Err(msg) => {
                    self.salvage.violations.push(msg);
                    self.deferred.remove(i);
                }
            }
        }
    }

    /// `Ok(true)` = the shard's wipe and restores ran to completion;
    /// `Ok(false)` = the shard is still quarantined.
    fn try_deferred(&mut self, i: usize) -> Result<bool, String> {
        let (shard, drv, quota) = {
            let w = &self.deferred[i];
            (w.shard, w.drv, w.quota)
        };
        match self.k.list_dir(drv, self.shard_toks[shard]) {
            Err(KernelError::SalvageBusy) => return Ok(false),
            Ok(_) => {}
            Err(_) => {
                // The crash (or the salvager clearing a mangled entry)
                // cost us the shard directory itself: recreate and
                // re-cap it. A directory created through the gates is
                // born released, so the work below proceeds.
                let root = self.k.root_token();
                let tok = self
                    .k
                    .create_entry(
                        drv,
                        root,
                        &format!("s{shard}"),
                        Acl::owner(UserId(1)),
                        Label::BOTTOM,
                        true,
                    )
                    .map_err(|e| format!("shard s{shard} recreate: {e:?}"))?;
                self.k
                    .set_quota(drv, tok, quota)
                    .map_err(|e| format!("shard s{shard} quota: {e:?}"))?;
                self.shard_toks[shard] = tok;
            }
        }
        let tok = self.shard_toks[shard];
        let work = self.deferred[i].clone();
        for idx in &work.wipe {
            let _ = self.k.delete_entry(drv, tok, &file_name(*idx));
        }
        for (idx, vals) in &work.restore {
            // A survivor that finished before its shard was released
            // never touches its file again; the wipe alone suffices.
            let Some(pid) = self.sessions[*idx].as_ref().map(|s| s.pid) else {
                continue;
            };
            let ftok = self
                .k
                .create_entry(
                    pid,
                    tok,
                    &file_name(*idx),
                    Acl::owner(UserId(1)),
                    Label::BOTTOM,
                    false,
                )
                .map_err(|e| format!("survivor u{idx} file recreate: {e:?}"))?;
            let segno = self
                .k
                .initiate(pid, ftok)
                .map_err(|e| format!("survivor u{idx} file initiate: {e:?}"))?;
            for (page, &val) in vals.iter().enumerate() {
                self.k
                    .write_word(pid, segno, page as u32 * PAGE_WORDS as u32, Word::new(val))
                    .map_err(|e| format!("survivor u{idx} replay page {page}: {e:?}"))?;
            }
            if let Some(s) = self.sessions[*idx].as_mut() {
                s.own = Some((segno, ftok));
            }
        }
        Ok(true)
    }
}

impl Driver for KernelDriver {
    fn now(&self) -> u64 {
        self.k.machine.clock.now()
    }

    fn queued(&self) -> usize {
        self.svc.queued_logins()
    }

    fn request(&mut self, idx: usize) -> bool {
        let start = self.k.machine.clock.now();
        let mut attempts = 0u32;
        loop {
            match self
                .svc
                .login_or_queue(&mut self.k, &account_name(idx), "pw", Label::BOTTOM)
            {
                Ok(Admission::Admitted(pid)) => {
                    if attempts > 0 {
                        self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                    }
                    self.open(idx, pid);
                    return true;
                }
                Ok(Admission::Queued(_)) => {
                    if attempts > 0 {
                        self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                    }
                    return false;
                }
                Err(KernelError::SalvageBusy) => {
                    attempts += 1;
                    if attempts == 1 {
                        self.salvage.blocked_ops += 1;
                    }
                    if attempts > SALVAGE_RETRY_BUDGET {
                        self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                        self.salvage.violations.push(format!(
                            "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted \
                             logging in u{idx}"
                        ));
                        return false;
                    }
                    self.salvage.retries += 1;
                    self.salvage_advance();
                }
                Err(e) => {
                    // Load accounts always authenticate; anything else
                    // is reported through the probe, never a panic.
                    self.salvage
                        .violations
                        .push(format!("login u{idx} refused: {e:?}"));
                    return false;
                }
            }
        }
    }

    fn admit(&mut self) -> Vec<usize> {
        let admitted = self.svc.admit_waiting(&mut self.k);
        admitted
            .into_iter()
            .map(|(name, pid)| {
                let idx = account_index(&name);
                self.open(idx, pid);
                idx
            })
            .collect()
    }

    fn exec(&mut self, idx: usize, shard: usize, action: &Action) -> String {
        let start = self.k.machine.clock.now();
        let mut attempts = 0u32;
        loop {
            if let Some(label) = self.exec_once(idx, shard, action) {
                if attempts > 0 {
                    self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                }
                return label;
            }
            attempts += 1;
            if attempts == 1 {
                self.salvage.blocked_ops += 1;
            }
            if attempts > SALVAGE_RETRY_BUDGET {
                self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                self.salvage.violations.push(format!(
                    "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted by \
                     session {idx} mid-script"
                ));
                return "busy".to_string();
            }
            self.salvage.retries += 1;
            self.salvage_advance();
        }
    }

    fn finish(&mut self, idx: usize, shard: usize, abandon: bool) -> String {
        let start = self.k.machine.clock.now();
        let mut attempts = 0u32;
        loop {
            if let Some(label) = self.finish_once(idx, shard, abandon) {
                if attempts > 0 {
                    self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                }
                return label;
            }
            attempts += 1;
            if attempts == 1 {
                self.salvage.blocked_ops += 1;
            }
            if attempts > SALVAGE_RETRY_BUDGET {
                self.salvage.blocked_cycles += self.k.machine.clock.now() - start;
                self.salvage.violations.push(format!(
                    "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted by \
                     session {idx} at logout"
                ));
                return "busy".to_string();
            }
            self.salvage.retries += 1;
            self.salvage_advance();
        }
    }

    fn schedule(&mut self) {
        self.k.schedule();
    }

    fn housekeep(&mut self) {
        self.k.sync_to_disk().expect("kernel housekeeping sweep");
    }

    fn salvage_tick(&mut self) {
        if self.salvage.first_op_at.is_none() {
            self.salvage.first_op_at = Some(self.k.machine.clock.now());
        }
        if self.k.online_salvage_active() {
            self.salvage.ops_overlapped += 1;
            self.salvage_advance();
        } else if !self.deferred.is_empty() {
            self.attempt_deferred();
        }
    }
}

impl KernelDriver {
    /// One attempt at an action. `None` means a `SalvageBusy` barrier
    /// was hit: the caller steps the salvager and retries. Every arm is
    /// retry-idempotent — partial effects (a created file, a cleared
    /// `own`) are recorded on the session before the barrier can fire.
    fn exec_once(&mut self, idx: usize, shard: usize, action: &Action) -> Option<String> {
        let shard_tok = self.shard_toks[shard];
        let s = self.sessions[idx].as_mut().expect("live session");
        let k = &mut self.k;
        Some(match *action {
            Action::Link(sym) => match s.linker.link(k, &mut s.ns, ">lib", &symbol(sym)) {
                Ok(l) => format!("l:{}", l.offset),
                Err(KernelError::SalvageBusy) => return None,
                Err(e) => format!("l:{}", klabel(&e)),
            },
            Action::Resolve(target) => {
                let path = match target {
                    ResolveTarget::Lib => ">lib".to_string(),
                    ResolveTarget::Shared => ">shared".to_string(),
                    ResolveTarget::Shard(j) => format!(">s{j}"),
                };
                match s.ns.resolve(k, &path) {
                    Ok(_) => "n:ok".to_string(),
                    Err(KernelError::SalvageBusy) => return None,
                    Err(e) => format!("n:{}", klabel(&e)),
                }
            }
            Action::Grow { page, val } => {
                if s.own.is_none() {
                    let created = k
                        .create_entry(
                            s.pid,
                            shard_tok,
                            &file_name(idx),
                            Acl::owner(UserId(1)),
                            Label::BOTTOM,
                            false,
                        )
                        .and_then(|tok| k.initiate(s.pid, tok).map(|segno| (segno, tok)));
                    match created {
                        Ok(pair) => s.own = Some(pair),
                        Err(KernelError::SalvageBusy) => return None,
                        Err(e) => return Some(format!("w:{}", klabel(&e))),
                    }
                }
                let (segno, _) = s.own.expect("just created");
                match k.write_word(s.pid, segno, page * PAGE_WORDS as u32, Word::new(val)) {
                    Ok(()) => "w:ok".to_string(),
                    Err(e) => format!("w:{}", klabel(&e)),
                }
            }
            Action::ReadOwn { page } => {
                // A survivor whose file restoration is still deferred
                // behind a quarantined shard has grown pages but no
                // segment yet: the op is blocked until the shard's
                // release replays the file.
                let (segno, _) = s.own?;
                match k.read_word(s.pid, segno, page * PAGE_WORDS as u32) {
                    Ok(w) => format!("r:{}", w.raw()),
                    Err(e) => format!("r:{}", klabel(&e)),
                }
            }
            Action::ReadShared { page } => {
                if s.shared_segno.is_none() {
                    match s.ns.initiate(k, ">shared") {
                        Ok(segno) => s.shared_segno = Some(segno),
                        Err(KernelError::SalvageBusy) => return None,
                        Err(e) => return Some(format!("r:{}", klabel(&e))),
                    }
                }
                let segno = s.shared_segno.expect("just initiated");
                match k.read_word(s.pid, segno, page * PAGE_WORDS as u32) {
                    Ok(w) => format!("r:{}", w.raw()),
                    Err(e) => format!("r:{}", klabel(&e)),
                }
            }
        })
    }

    /// One attempt at ending a session; `None` = blocked on a barrier.
    /// The file delete clears `own` on success so a retry that blocks
    /// later (at logout) never re-deletes.
    fn finish_once(&mut self, idx: usize, shard: usize, abandon: bool) -> Option<String> {
        let (pid, own) = {
            let s = self.sessions[idx].as_ref().expect("live session");
            (s.pid, s.own)
        };
        let mut label = if abandon { "reap" } else { "out" }.to_string();
        if !abandon && own.is_some() {
            match self
                .k
                .delete_entry(pid, self.shard_toks[shard], &file_name(idx))
            {
                Ok(()) => {
                    if let Some(s) = self.sessions[idx].as_mut() {
                        s.own = None;
                    }
                }
                Err(KernelError::SalvageBusy) => return None,
                Err(_) => label = "out:err".to_string(),
            }
        }
        // Abandoned sessions are reaped by the service — same logout
        // residue, nobody at the terminal.
        match self.svc.logout(&mut self.k, pid) {
            Ok(_) => {}
            Err(KernelError::SalvageBusy) => return None,
            Err(_) => label = format!("{label}:err"),
        }
        self.sessions[idx] = None;
        Some(label)
    }
}

// ------------------------------------------------------- legacy driver --

pub(crate) fn llabel(e: &LegacyError) -> &'static str {
    match e {
        LegacyError::QuotaExceeded { .. } => "quota",
        LegacyError::AllPacksFull => "full",
        _ => "err",
    }
}

pub(crate) struct LSession {
    pub(crate) pid: LProcessId,
    pub(crate) own_segno: Option<u32>,
    pub(crate) shared_segno: Option<u32>,
}

/// The legacy mirror of [`KernelDeferred`].
#[derive(Debug, Clone)]
pub(crate) struct LegacyDeferred {
    pub(crate) shard: usize,
    pub(crate) drv: LProcessId,
    pub(crate) quota: u32,
    pub(crate) wipe: Vec<usize>,
    pub(crate) restore: Vec<(usize, Vec<u64>)>,
}

pub(crate) struct LegacyDriver {
    pub(crate) sup: Supervisor,
    pub(crate) sessions: Vec<Option<LSession>>,
    pub(crate) pending: std::collections::VecDeque<usize>,
    pub(crate) salvage: SalvageProbe,
    pub(crate) deferred: Vec<LegacyDeferred>,
}

impl LegacyDriver {
    fn salvage_advance(&mut self) {
        if self.sup.online_salvage_active() {
            legacy_salvage_step_checked(&mut self.sup, &mut self.salvage);
        }
        self.attempt_deferred();
    }

    /// See [`KernelDriver::attempt_deferred`].
    pub(crate) fn attempt_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            match self.try_deferred(i) {
                Ok(true) => {
                    self.deferred.remove(i);
                }
                Ok(false) => i += 1,
                Err(msg) => {
                    self.salvage.violations.push(msg);
                    self.deferred.remove(i);
                }
            }
        }
    }

    fn try_deferred(&mut self, i: usize) -> Result<bool, String> {
        let (shard, drv, quota) = {
            let w = &self.deferred[i];
            (w.shard, w.drv, w.quota)
        };
        let path = format!("s{shard}");
        let shard_uid = match self.sup.resolve(drv, &path, AccessRight::Read) {
            Err(LegacyError::SalvageBusy) => return Ok(false),
            Ok((uid, _)) => uid,
            Err(_) => {
                let root = self.sup.root();
                let uid = self
                    .sup
                    .create_directory_in(root, &path, LAcl::owner(LUserId(1)), Label::BOTTOM)
                    .map_err(|e| format!("shard s{shard} recreate: {e:?}"))?;
                self.sup
                    .set_quota_directory(drv, &path, quota)
                    .map_err(|e| format!("shard s{shard} quota: {e:?}"))?;
                uid
            }
        };
        let work = self.deferred[i].clone();
        for idx in &work.wipe {
            let _ = self.sup.delete(drv, &format!("{path}>{}", file_name(*idx)));
        }
        for (idx, vals) in &work.restore {
            let Some(pid) = self.sessions[*idx].as_ref().map(|s| s.pid) else {
                continue;
            };
            self.sup
                .create_segment_in(
                    shard_uid,
                    &file_name(*idx),
                    LAcl::owner(LUserId(1)),
                    Label::BOTTOM,
                )
                .map_err(|e| format!("survivor u{idx} file recreate: {e:?}"))?;
            let segno = self
                .sup
                .initiate(pid, &format!("{path}>{}", file_name(*idx)))
                .map_err(|e| format!("survivor u{idx} file initiate: {e:?}"))?;
            for (page, &val) in vals.iter().enumerate() {
                self.sup
                    .user_write(pid, segno, page as u32 * PAGE_WORDS as u32, Word::new(val))
                    .map_err(|e| format!("survivor u{idx} replay page {page}: {e:?}"))?;
            }
            if let Some(s) = self.sessions[*idx].as_mut() {
                s.own_segno = Some(segno);
            }
        }
        Ok(true)
    }
}

impl Driver for LegacyDriver {
    fn now(&self) -> u64 {
        self.sup.machine.clock.now()
    }

    fn queued(&self) -> usize {
        self.pending.len()
    }

    fn request(&mut self, idx: usize) -> bool {
        let start = self.sup.machine.clock.now();
        let mut attempts = 0u32;
        loop {
            match self.sup.login(&account_name(idx), "pw", Label::BOTTOM) {
                Ok(pid) => {
                    if attempts > 0 {
                        self.salvage.blocked_cycles += self.sup.machine.clock.now() - start;
                    }
                    self.sessions[idx] = Some(LSession {
                        pid,
                        own_segno: None,
                        shared_segno: None,
                    });
                    return true;
                }
                // The old answering service refuses when the process
                // table is full; the caller's retry queue is the
                // admission policy.
                Err(LegacyError::NoSuchProcess) => {
                    self.pending.push_back(idx);
                    return false;
                }
                Err(LegacyError::SalvageBusy) => {
                    attempts += 1;
                    if attempts == 1 {
                        self.salvage.blocked_ops += 1;
                    }
                    if attempts > SALVAGE_RETRY_BUDGET {
                        self.salvage.blocked_cycles += self.sup.machine.clock.now() - start;
                        self.salvage.violations.push(format!(
                            "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted \
                             logging in u{idx}"
                        ));
                        return false;
                    }
                    self.salvage.retries += 1;
                    self.salvage_advance();
                }
                Err(e) => {
                    self.salvage
                        .violations
                        .push(format!("login u{idx} refused: {e:?}"));
                    return false;
                }
            }
        }
    }

    fn admit(&mut self) -> Vec<usize> {
        let mut admitted = Vec::new();
        let mut attempts = 0u32;
        while let Some(&idx) = self.pending.front() {
            match self.sup.login(&account_name(idx), "pw", Label::BOTTOM) {
                Ok(pid) => {
                    self.pending.pop_front();
                    self.sessions[idx] = Some(LSession {
                        pid,
                        own_segno: None,
                        shared_segno: None,
                    });
                    admitted.push(idx);
                }
                Err(LegacyError::NoSuchProcess) => break,
                Err(LegacyError::SalvageBusy) => {
                    // A re-login needs a state segment under the (still
                    // quarantined) `>processes`: step the salvager and
                    // retry; the login stays at the head of the queue.
                    attempts += 1;
                    if attempts > SALVAGE_RETRY_BUDGET {
                        self.salvage.violations.push(format!(
                            "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted \
                             re-admitting u{idx}"
                        ));
                        break;
                    }
                    self.salvage.retries += 1;
                    self.salvage_advance();
                }
                Err(e) => {
                    self.pending.pop_front();
                    self.salvage
                        .violations
                        .push(format!("re-login u{idx} refused: {e:?}"));
                }
            }
        }
        admitted
    }

    fn exec(&mut self, idx: usize, shard: usize, action: &Action) -> String {
        let start = self.sup.machine.clock.now();
        let mut attempts = 0u32;
        loop {
            if let Some(label) = self.exec_once(idx, shard, action) {
                if attempts > 0 {
                    self.salvage.blocked_cycles += self.sup.machine.clock.now() - start;
                }
                return label;
            }
            attempts += 1;
            if attempts == 1 {
                self.salvage.blocked_ops += 1;
            }
            if attempts > SALVAGE_RETRY_BUDGET {
                self.salvage.blocked_cycles += self.sup.machine.clock.now() - start;
                self.salvage.violations.push(format!(
                    "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted by \
                     session {idx} mid-script"
                ));
                return "busy".to_string();
            }
            self.salvage.retries += 1;
            self.salvage_advance();
        }
    }

    fn finish(&mut self, idx: usize, shard: usize, abandon: bool) -> String {
        let start = self.sup.machine.clock.now();
        let mut attempts = 0u32;
        loop {
            if let Some(label) = self.finish_once(idx, shard, abandon) {
                if attempts > 0 {
                    self.salvage.blocked_cycles += self.sup.machine.clock.now() - start;
                }
                return label;
            }
            attempts += 1;
            if attempts == 1 {
                self.salvage.blocked_ops += 1;
            }
            if attempts > SALVAGE_RETRY_BUDGET {
                self.salvage.blocked_cycles += self.sup.machine.clock.now() - start;
                self.salvage.violations.push(format!(
                    "salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted by \
                     session {idx} at logout"
                ));
                return "busy".to_string();
            }
            self.salvage.retries += 1;
            self.salvage_advance();
        }
    }

    fn schedule(&mut self) {
        self.sup.dispatch();
    }

    fn housekeep(&mut self) {
        self.sup.sync_to_disk().expect("legacy housekeeping sweep");
    }

    fn salvage_tick(&mut self) {
        if self.salvage.first_op_at.is_none() {
            self.salvage.first_op_at = Some(self.sup.machine.clock.now());
        }
        if self.sup.online_salvage_active() {
            self.salvage.ops_overlapped += 1;
            self.salvage_advance();
        } else if !self.deferred.is_empty() {
            self.attempt_deferred();
        }
    }
}

impl LegacyDriver {
    /// See [`KernelDriver::exec_once`].
    fn exec_once(&mut self, idx: usize, shard: usize, action: &Action) -> Option<String> {
        let s = self.sessions[idx].as_mut().expect("live session");
        let sup = &mut self.sup;
        Some(match *action {
            Action::Link(sym) => match sup.link(s.pid, "lib", &symbol(sym)) {
                Ok(l) => format!("l:{}", l.offset),
                Err(LegacyError::SalvageBusy) => return None,
                Err(e) => format!("l:{}", llabel(&e)),
            },
            Action::Resolve(target) => {
                let path = match target {
                    ResolveTarget::Lib => "lib".to_string(),
                    ResolveTarget::Shared => "shared".to_string(),
                    ResolveTarget::Shard(j) => format!("s{j}"),
                };
                match sup.resolve(s.pid, &path, AccessRight::Read) {
                    Ok(_) => "n:ok".to_string(),
                    Err(LegacyError::SalvageBusy) => return None,
                    Err(e) => format!("n:{}", llabel(&e)),
                }
            }
            Action::Grow { page, val } => {
                if s.own_segno.is_none() {
                    let shard_uid =
                        match sup.resolve(s.pid, &format!("s{shard}"), AccessRight::Read) {
                            Ok((uid, _)) => uid,
                            Err(LegacyError::SalvageBusy) => return None,
                            Err(e) => return Some(format!("w:{}", llabel(&e))),
                        };
                    let created = sup
                        .create_segment_in(
                            shard_uid,
                            &file_name(idx),
                            LAcl::owner(LUserId(1)),
                            Label::BOTTOM,
                        )
                        .and_then(|_| sup.initiate(s.pid, &format!("s{shard}>{}", file_name(idx))));
                    match created {
                        Ok(segno) => s.own_segno = Some(segno),
                        Err(LegacyError::SalvageBusy) => return None,
                        Err(e) => return Some(format!("w:{}", llabel(&e))),
                    }
                }
                let segno = s.own_segno.expect("just created");
                match sup.user_write(s.pid, segno, page * PAGE_WORDS as u32, Word::new(val)) {
                    Ok(()) => "w:ok".to_string(),
                    Err(e) => format!("w:{}", llabel(&e)),
                }
            }
            Action::ReadOwn { page } => {
                // Deferred restoration, as in the kernel driver: blocked
                // until the shard's release replays the file.
                let segno = s.own_segno?;
                match sup.user_read(s.pid, segno, page * PAGE_WORDS as u32) {
                    Ok(w) => format!("r:{}", w.raw()),
                    Err(e) => format!("r:{}", llabel(&e)),
                }
            }
            Action::ReadShared { page } => {
                if s.shared_segno.is_none() {
                    match sup.initiate(s.pid, "shared") {
                        Ok(segno) => s.shared_segno = Some(segno),
                        Err(LegacyError::SalvageBusy) => return None,
                        Err(e) => return Some(format!("r:{}", llabel(&e))),
                    }
                }
                let segno = s.shared_segno.expect("just initiated");
                match sup.user_read(s.pid, segno, page * PAGE_WORDS as u32) {
                    Ok(w) => format!("r:{}", w.raw()),
                    Err(e) => format!("r:{}", llabel(&e)),
                }
            }
        })
    }

    /// See [`KernelDriver::finish_once`].
    fn finish_once(&mut self, idx: usize, shard: usize, abandon: bool) -> Option<String> {
        let (pid, own) = {
            let s = self.sessions[idx].as_ref().expect("live session");
            (s.pid, s.own_segno)
        };
        let mut label = if abandon { "reap" } else { "out" }.to_string();
        if !abandon && own.is_some() {
            let path = format!("s{shard}>{}", file_name(idx));
            match self.sup.delete(pid, &path) {
                Ok(()) => {
                    if let Some(s) = self.sessions[idx].as_mut() {
                        s.own_segno = None;
                    }
                }
                Err(LegacyError::SalvageBusy) => return None,
                Err(_) => label = "out:err".to_string(),
            }
        }
        match self.sup.logout(&account_name(idx), pid) {
            Ok(_) => {}
            Err(LegacyError::SalvageBusy) => return None,
            Err(_) => label = format!("{label}:err"),
        }
        self.sessions[idx] = None;
        Some(label)
    }
}

// ------------------------------------------------------------ run fns --

/// The operator-side handles a harness keeps after world setup: the
/// driver account's process and its window onto the shared segment.
/// Plain load runs discard this; the recovery harness uses it to write
/// its epoch beacon and to reconcile the world after a crash.
pub(crate) struct KernelWorldCtx {
    pub(crate) drv: ProcessId,
    pub(crate) shared_segno: u32,
}

pub(crate) struct LegacyWorldCtx {
    pub(crate) drv: LProcessId,
    pub(crate) shared_segno: u32,
}

/// Builds the kernel world a load run executes against: overflow pack,
/// driver account and login, published library, shared segment, quota
/// shards, and one registered account per scripted session.
pub(crate) fn setup_kernel(spec: &LoadSpec) -> (KernelDriver, KernelWorldCtx) {
    let mut k = Kernel::boot(spec.kernel_config());
    if let Some((records, toc_slots)) = spec.overflow_pack() {
        k.machine.disks.attach(records, toc_slots);
    }
    let mut svc = AnsweringService::new();
    svc.register(&mut k, "drv", UserId(1), "pw", Label::BOTTOM);
    let drv = svc
        .login(&mut k, "drv", "pw", Label::BOTTOM)
        .expect("driver login");
    let root = k.root_token();
    let acl = Acl::owner(UserId(1));

    // The shared library, with its definitions published.
    let lib_tok = k
        .create_entry(drv, root, "lib", acl.clone(), Label::BOTTOM, false)
        .expect("lib");
    let lib_segno = k.initiate(drv, lib_tok).expect("lib initiate");
    let defs = definitions();
    let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
    publish_library(&mut k, drv, lib_segno, &def_refs).expect("publish");

    // The shared read-mostly segment.
    let shared_tok = k
        .create_entry(drv, root, "shared", acl.clone(), Label::BOTTOM, false)
        .expect("shared");
    let shared_segno = k.initiate(drv, shared_tok).expect("shared initiate");
    for page in 0..SHARED_PAGES {
        k.write_word(
            drv,
            shared_segno,
            page * PAGE_WORDS as u32,
            Word::new(shared_word(page)),
        )
        .expect("shared page");
    }

    // Quota-capped shard directories for the sessions' own files.
    let mut shard_toks = Vec::new();
    for j in 0..spec.shards() {
        let tok = k
            .create_entry(
                drv,
                root,
                &format!("s{j}"),
                acl.clone(),
                Label::BOTTOM,
                true,
            )
            .expect("shard dir");
        k.set_quota(drv, tok, spec.shard_quota()).expect("quota");
        shard_toks.push(tok);
    }

    for idx in 0..spec.sessions {
        svc.register(&mut k, &account_name(idx), UserId(1), "pw", Label::BOTTOM);
    }

    (
        KernelDriver {
            k,
            svc,
            sessions: (0..spec.sessions).map(|_| None).collect(),
            shard_toks,
            salvage: SalvageProbe::default(),
            deferred: Vec::new(),
        },
        KernelWorldCtx { drv, shared_segno },
    )
}

/// Runs the spec on the new kernel design. An optional schedule policy
/// is installed *after* setup, exactly as the schedule explorer does, so
/// every policy explores from the same initial state.
pub fn run_kernel_load(spec: &LoadSpec, policy: Option<Box<dyn SchedulePolicy>>) -> LoadRun {
    run_kernel_load_scripts(spec, &spec.scripts(), policy)
}

/// [`run_kernel_load`] with the scripts supplied by the caller: the
/// sharded engine partitions one global population and hands each shard
/// machine the scripts of its members (local indices, global scripts),
/// which is what keeps the merged stream independent of worker count.
pub(crate) fn run_kernel_load_scripts(
    spec: &LoadSpec,
    scripts: &[SessionScript],
    policy: Option<Box<dyn SchedulePolicy>>,
) -> LoadRun {
    assert_eq!(scripts.len(), spec.sessions, "one script per session");
    let (mut driver, _ctx) = setup_kernel(spec);

    let setup_cycles = driver.k.machine.clock.now();
    let ops_base = driver.k.machine.ops_retired();
    let meter_base = driver.k.machine.clock.meter_snapshot();
    let edge_base = driver.k.machine.clock.edge_snapshot();
    if let Some(p) = policy {
        driver.k.set_schedule_policy(p);
    }

    let out = drive(&mut driver, scripts);
    let k = driver.k;

    let per_cpu_ops: Vec<u64> = k
        .machine
        .ops_retired()
        .iter()
        .zip(ops_base.iter())
        .map(|(now, base)| now - base)
        .collect();
    LoadRun {
        design: "kernel",
        cycles: k.machine.clock.now() - setup_cycles,
        setup_cycles,
        ops: out.ops,
        sessions: spec.sessions,
        abandoned: out.abandoned,
        queued_peak: out.queued_peak,
        parity: out.parity,
        hist: out.hist,
        per_cpu_ops,
        queue_delay: k.vpm.queue_delay(),
        event_queue_hwm: k.upm.queue_high_watermark(),
        meter: meter_base.delta(&k.machine.clock.meter_snapshot()),
        edges: edge_base.delta(k.machine.clock.edge_set()),
        violations: oracle::check_kernel(&k),
        user_samples: {
            let mut us = out.user_samples;
            us.resize_with(spec.sessions, Vec::new);
            us
        },
    }
}

/// Builds the legacy world a load run executes against — the same
/// sequence of logical steps as [`setup_kernel`], through the old
/// supervisor's interfaces.
pub(crate) fn setup_legacy(spec: &LoadSpec) -> (LegacyDriver, LegacyWorldCtx) {
    let mut sup = Supervisor::boot(spec.supervisor_config());
    if let Some((records, toc_slots)) = spec.overflow_pack() {
        sup.machine.disks.attach(records, toc_slots);
    }
    sup.register_user("drv", LUserId(1), "pw", Label::BOTTOM);
    let drv = sup.login("drv", "pw", Label::BOTTOM).expect("driver login");
    let root = sup.root();
    let acl = LAcl::owner(LUserId(1));

    let lib_uid = sup
        .create_segment_in(root, "lib", acl.clone(), Label::BOTTOM)
        .expect("lib");
    let defs = definitions();
    let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
    sup.publish_definitions(lib_uid, &def_refs);
    let lib_segno = sup.initiate(drv, "lib").expect("lib initiate");
    // The kernel's published library occupies a page; allocate the
    // matching record here so both designs start with identical storage.
    sup.user_write(drv, lib_segno, 0, Word::new(def_refs.len() as u64))
        .expect("lib page");

    sup.create_segment_in(root, "shared", acl.clone(), Label::BOTTOM)
        .expect("shared");
    let shared_segno = sup.initiate(drv, "shared").expect("shared initiate");
    for page in 0..SHARED_PAGES {
        sup.user_write(
            drv,
            shared_segno,
            page * PAGE_WORDS as u32,
            Word::new(shared_word(page)),
        )
        .expect("shared page");
    }

    for j in 0..spec.shards() {
        sup.create_directory_in(root, &format!("s{j}"), acl.clone(), Label::BOTTOM)
            .expect("shard dir");
        sup.set_quota_directory(drv, &format!("s{j}"), spec.shard_quota())
            .expect("quota");
    }

    for idx in 0..spec.sessions {
        sup.register_user(&account_name(idx), LUserId(1), "pw", Label::BOTTOM);
    }

    (
        LegacyDriver {
            sup,
            sessions: (0..spec.sessions).map(|_| None).collect(),
            pending: std::collections::VecDeque::new(),
            salvage: SalvageProbe::default(),
            deferred: Vec::new(),
        },
        LegacyWorldCtx { drv, shared_segno },
    )
}

/// Runs the spec on the 1974 supervisor. Its scheduler has no policy
/// hooks: one inherent schedule per spec.
pub fn run_legacy_load(spec: &LoadSpec) -> LoadRun {
    run_legacy_load_scripts(spec, &spec.scripts())
}

/// [`run_legacy_load`] with caller-supplied scripts; see
/// [`run_kernel_load_scripts`].
pub(crate) fn run_legacy_load_scripts(spec: &LoadSpec, scripts: &[SessionScript]) -> LoadRun {
    assert_eq!(scripts.len(), spec.sessions, "one script per session");
    let (mut driver, _ctx) = setup_legacy(spec);

    let setup_cycles = driver.sup.machine.clock.now();
    let ops_base = driver.sup.machine.ops_retired();
    let meter_base = driver.sup.machine.clock.meter_snapshot();
    let edge_base = driver.sup.machine.clock.edge_snapshot();

    let out = drive(&mut driver, scripts);
    let sup = driver.sup;

    let per_cpu_ops: Vec<u64> = sup
        .machine
        .ops_retired()
        .iter()
        .zip(ops_base.iter())
        .map(|(now, base)| now - base)
        .collect();
    LoadRun {
        design: "legacy",
        cycles: sup.machine.clock.now() - setup_cycles,
        setup_cycles,
        ops: out.ops,
        sessions: spec.sessions,
        abandoned: out.abandoned,
        queued_peak: out.queued_peak,
        parity: out.parity,
        hist: out.hist,
        per_cpu_ops,
        queue_delay: (0, 0),
        event_queue_hwm: 0,
        meter: meter_base.delta(&sup.machine.clock.meter_snapshot()),
        edges: edge_base.delta(sup.machine.clock.edge_set()),
        violations: oracle::check_legacy(&sup),
        user_samples: {
            let mut us = out.user_samples;
            us.resize_with(spec.sessions, Vec::new);
            us
        },
    }
}

/// Runs the spec through both designs under their baseline schedules.
pub fn run_both(spec: &LoadSpec) -> (LoadRun, LoadRun) {
    (run_kernel_load(spec, None), run_legacy_load(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic() {
        let spec = LoadSpec::new(6, 42);
        let a = run_kernel_load(&spec, None);
        let b = run_kernel_load(&spec, None);
        assert_eq!(a.parity, b.parity);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.per_cpu_ops, b.per_cpu_ops);
        let la = run_legacy_load(&spec);
        let lb = run_legacy_load(&spec);
        assert_eq!(la.parity, lb.parity);
        assert_eq!(la.cycles, lb.cycles);
    }

    #[test]
    fn small_population_reaches_user_visible_parity() {
        let spec = LoadSpec::new(8, 7);
        let (k, l) = run_both(&spec);
        let problems = LoadRun::check_pair(&k, &l);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(k.sessions, 8);
        assert!(k.ops > 8, "sessions executed scripted work");
    }

    #[test]
    fn tight_storage_surfaces_quota_and_parity_holds() {
        // Across a few seeds, tight storage must provoke at least one
        // past-quota write somewhere, and parity must survive it.
        let mut saw_quota = false;
        for seed in 0..4 {
            let spec = LoadSpec::tight(6, seed);
            let (k, l) = run_both(&spec);
            let problems = LoadRun::check_pair(&k, &l);
            assert!(problems.is_empty(), "seed {seed}: {problems:?}");
            saw_quota |= k.parity.iter().any(|p| p == "w:quota");
        }
        assert!(saw_quota, "tight quotas never bit");
    }

    #[test]
    fn login_storm_queues_and_everyone_eventually_runs() {
        // Tight config has max_processes 4; the driver holds one slot,
        // so 8 users cannot all be live at once.
        let spec = LoadSpec::tight(8, 3);
        let (k, l) = run_both(&spec);
        assert!(k.queued_peak > 0, "storm exceeded the slots");
        assert_eq!(k.queued_peak, l.queued_peak, "same admission pressure");
        let problems = LoadRun::check_pair(&k, &l);
        assert!(problems.is_empty(), "{problems:?}");
        // Everyone ran to completion: one terminal label per session.
        let ends = k
            .parity
            .iter()
            .filter(|p| p.as_str() == "out" || p.as_str() == "reap")
            .count();
        assert_eq!(ends, 8);
    }

    #[test]
    fn both_cpus_retire_user_work() {
        let spec = LoadSpec::new(8, 11);
        let (k, l) = run_both(&spec);
        assert_eq!(k.per_cpu_ops.len(), 2);
        assert!(
            k.per_cpu_ops.iter().all(|&c| c > 0),
            "kernel left a CPU idle: {:?}",
            k.per_cpu_ops
        );
        assert!(
            l.per_cpu_ops.iter().all(|&c| c > 0),
            "legacy left a CPU idle: {:?}",
            l.per_cpu_ops
        );
    }

    #[test]
    fn queue_delay_and_meters_are_populated() {
        let spec = LoadSpec::new(8, 5);
        let k = run_kernel_load(&spec, None);
        let (wait, samples) = k.queue_delay;
        assert!(samples > 0, "dispatches happened");
        let _ = wait; // may be zero under light load; just well-defined
        assert!(k.meter.total() > 0, "load phase attributed cycles");
        assert!(k.hist.samples() == k.ops);
        assert!(k.ops_per_mcycle() > 0.0);
    }
}
