//! Continuous operation: the load engine segmented by crashes.
//!
//! The chaos composition (C1) runs one long logical stream — the same
//! stream [`crate::run_kernel_load`] executes uninterrupted — but cuts
//! it into *epochs*: every `ops_per_epoch` completed operations, power
//! fails mid-`sync_to_disk` with the final transfer torn or dropped, a
//! fresh system boots from the surviving disk image, the salvager
//! repairs and re-checks the hierarchy, the answering service re-admits
//! its surviving population, and the engine resumes the stream exactly
//! where it stopped. Both designs run the identical crash schedule, so
//! label-by-label parity remains the cross-design oracle even though
//! each design's recovery path is entirely its own.
//!
//! What recovery owes the population, precisely:
//!
//! * **Queued logins survive.** Parked admissions are user-domain
//!   bookkeeping; the crash costs them nothing but time. They are
//!   re-admitted in the original FIFO order as slots free up.
//! * **Live sessions are re-opened at their script positions.** The
//!   engine's [`EngineState`] — cursor, per-session op index, the
//!   values each session's file successfully grew by — survives the
//!   crash (it models the users at their terminals, who remember what
//!   they were doing). Each survivor logs in again and the harness
//!   restores the session's own file to its pre-crash logical contents
//!   before the stream continues.
//! * **The shared world is reconciled, not rebuilt.** Directories and
//!   segments that survived on disk are kept; whatever the torn write
//!   mangled is recreated or rewritten through the ordinary gates. The
//!   library's definitions and the shared segment's pages are rewritten
//!   unconditionally — cheap, idempotent, and independent of which
//!   epoch the crash hit.
//!
//! Every epoch boundary runs the oracle battery (meter conservation,
//! per-pack record conservation, wakeup exactness, salvage idempotence)
//! and every violation carries a replayable `seed=… plan=… schedule=…`
//! string. [`C1SelfCheck`] deliberately breaks the recovery obligations
//! so a harness test can prove the oracles catch a cheat.

use crate::hist::{Histogram, HistogramError};
use crate::run::{
    account_name, definitions, drive_until, file_name, kernel_salvage_step_checked,
    legacy_salvage_step_checked, setup_kernel, setup_legacy, shared_word, storm, EngineState,
    KSession, KernelDeferred, KernelDriver, KernelWorldCtx, LSession, LegacyDeferred, LegacyDriver,
    LegacyWorldCtx, LoadSpec, SalvageProbe, SALVAGE_RETRY_BUDGET,
};
use crate::script::{SessionScript, SHARED_PAGES};
use mx_aim::Label;
use mx_explore::{oracle, PctPolicy, SeededRandomPolicy};
use mx_hw::meter::EdgeSet;
use mx_hw::{CrashWrite, SplitMix64, Word, PAGE_WORDS};
use mx_kernel::{Acl, Kernel, KernelError, OnlineCheat, UserId};
use mx_legacy::{
    AccessRight, Acl as LAcl, LegacyError, LegacyOnlineCheat, Supervisor, UserId as LUserId,
};
use mx_sync::SchedulePolicy;
use mx_user::{publish_library, AnsweringService, NameSpace, UserLinker};

const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
const PW: u32 = PAGE_WORDS as u32;

/// Which schedule drives the kernel between crashes. The old supervisor
/// has no policy hooks; its one inherent schedule is the parity
/// baseline every kernel policy is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum C1Policy {
    /// The kernel's default dispatch order (the pinned-figure baseline).
    Fifo,
    /// Uniformly random choice points from the given seed.
    Random(u64),
    /// Probabilistic concurrency testing from the given seed.
    Pct(u64),
}

impl C1Policy {
    /// The `schedule=` component of a repro string.
    pub fn descriptor(&self) -> String {
        match *self {
            C1Policy::Fifo => "fifo".to_string(),
            C1Policy::Random(s) => format!("random:{s:#x}"),
            C1Policy::Pct(s) => format!("pct:{s:#x}"),
        }
    }

    /// A fresh policy instance for the given epoch. Each epoch gets its
    /// own deterministic stream so a replay of (seed, plan, schedule)
    /// reproduces every epoch's choices exactly, independent of how
    /// many choice points earlier epochs consumed.
    fn make(&self, epoch: u64) -> Option<Box<dyn SchedulePolicy>> {
        let mixed = |s: u64| s ^ (epoch + 1).wrapping_mul(MIX);
        match *self {
            C1Policy::Fifo => None,
            C1Policy::Random(s) => Some(Box::new(SeededRandomPolicy::new(mixed(s)))),
            C1Policy::Pct(s) => Some(Box::new(PctPolicy::new(mixed(s)))),
        }
    }
}

/// Deliberate recovery cheats, so the violation paths can be proven
/// live: a broken run must be *caught*, and the printed repro string
/// must reproduce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum C1SelfCheck {
    /// Recover honestly.
    None,
    /// Drop the youngest queued login at the first recovery — the
    /// admission queue "forgets" one user, violating conservation of
    /// sessions (and, cross-design, label parity).
    DropQueuedLogin,
}

/// One chaos-composition run: the population, the stream seed, the
/// fault-plan seed, how many crashes cut the stream, and the schedule.
#[derive(Debug, Clone, Copy)]
pub struct C1Spec {
    /// Scripted sessions (the `crates/load` population).
    pub sessions: usize,
    /// Seed the session scripts expand from.
    pub seed: u64,
    /// Seed of the crash-mode stream (torn word counts, drop choices).
    pub plan_seed: u64,
    /// Crash/salvage/re-admit boundaries cut into the stream.
    pub crashes: u32,
    /// Kernel schedule between crashes.
    pub policy: C1Policy,
    /// Recovery honesty (see [`C1SelfCheck`]).
    pub self_check: C1SelfCheck,
}

impl C1Spec {
    /// An honest run.
    pub fn new(sessions: usize, seed: u64, plan_seed: u64, crashes: u32, policy: C1Policy) -> Self {
        Self {
            sessions,
            seed,
            plan_seed,
            crashes,
            policy,
            self_check: C1SelfCheck::None,
        }
    }

    /// Completed operations per epoch. Two rounds of the population
    /// keeps every crash inside the live phase: the stream averages
    /// about ten ops per session, so `crashes` boundaries at multiples
    /// of `2×sessions` land well before the stream drains.
    pub fn ops_per_epoch(&self) -> u64 {
        2 * self.sessions as u64
    }

    /// The replayable identity of a run on `design`.
    pub fn repro(&self, design: &str) -> String {
        format!(
            "seed={:#x} plan={:#x} schedule={} sessions={} crashes={} design={design}",
            self.seed,
            self.plan_seed,
            self.policy.descriptor(),
            self.sessions,
            self.crashes
        )
    }
}

/// The deterministic crash mode for epoch boundary `epoch`.
fn crash_mode(plan_seed: u64, epoch: u64) -> CrashWrite {
    let mut rng = SplitMix64::new(plan_seed ^ (epoch + 1).wrapping_mul(MIX));
    if rng.chance(1, 2) {
        CrashWrite::Dropped
    } else {
        CrashWrite::Torn {
            words: rng.range_usize(1, PAGE_WORDS),
        }
    }
}

/// One epoch's figures. For the final (uncrashed) segment the salvage
/// and recovery fields are zero and `crashed` is false.
#[derive(Debug, Clone, Copy)]
pub struct EpochReport {
    /// Cumulative engine ops at the end of the epoch.
    pub ops: u64,
    /// Simulated cycles the epoch's load phase took.
    pub cycles: u64,
    /// Kernel only: queued-wait total and dispatch samples this epoch
    /// (the probes reset at every boundary). `(0, 0)` for legacy.
    pub queue_delay: (u64, u64),
    /// Kernel only: peak event-queue depth this epoch.
    pub event_queue_hwm: usize,
    /// Sessions live at the boundary (the population the crash hits).
    pub live_at_crash: usize,
    /// Logins parked at the boundary (what recovery must not lose).
    pub queued_at_crash: usize,
    /// Problems the repairing salvage pass found in the crash image.
    pub salvage_problems: usize,
    /// Repairs it performed.
    pub salvage_repairs: usize,
    /// Cycles from recovery bootload through reconciliation.
    pub recovery_cycles: u64,
    /// Whether this epoch ended in a crash (false only for the tail).
    pub crashed: bool,
}

/// Everything one design's chaos run produced.
#[derive(Debug, Clone)]
pub struct C1Run {
    /// `"kernel"` or `"legacy"`.
    pub design: &'static str,
    /// Schedule descriptor (`fifo`, `random:…`, `pct:…`, or the
    /// legacy supervisor's `inherent`).
    pub schedule: String,
    /// Total engine ops completed.
    pub ops: u64,
    /// Sessions abandoned (reaped) rather than logged out.
    pub abandoned: usize,
    /// Deepest the admission queue got.
    pub queued_peak: usize,
    /// The full user-visible label stream, across every epoch.
    pub parity: Vec<String>,
    /// `parity` index at each crash boundary — ops-positioned, so the
    /// bounds are identical across designs and schedules.
    pub epoch_bounds: Vec<usize>,
    /// Per-epoch figures (crashed epochs first, then the tail).
    pub epochs: Vec<EpochReport>,
    /// Post-storm admission order (the FIFO fairness record).
    pub admitted_order: Vec<usize>,
    /// Per-operation service-time histogram across the whole run.
    pub hist: Histogram,
    /// Load-phase cycles summed over epochs.
    pub load_cycles: u64,
    /// Recovery cycles summed over crashes.
    pub recovery_cycles: u64,
    /// Everything the oracles caught. Empty = clean. Every line embeds
    /// the replayable `seed=… plan=… schedule=…` string.
    pub violations: Vec<String>,
    /// Observed inter-subsystem edges merged across every epoch's
    /// machine — load, crash, salvage, and reconcile traffic included.
    /// Each crash boundary replaces the machine (and its clock), so the
    /// ledger is folded in before every replacement.
    pub edges: EdgeSet,
}

impl C1Run {
    /// The run's complete deterministic transcript. Two runs of the
    /// same `(seed, plan, schedule)` triple must produce byte-identical
    /// transcripts; the report treats any difference as a violation.
    pub fn transcript(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "design={} schedule={} ops={} abandoned={} queued_peak={} \
             load_cycles={} recovery_cycles={}",
            self.design,
            self.schedule,
            self.ops,
            self.abandoned,
            self.queued_peak,
            self.load_cycles,
            self.recovery_cycles
        );
        let _ = writeln!(s, "admitted={:?}", self.admitted_order);
        let _ = writeln!(s, "bounds={:?}", self.epoch_bounds);
        for (i, e) in self.epochs.iter().enumerate() {
            let _ = writeln!(
                s,
                "epoch {i}: ops={} cycles={} qd={:?} hwm={} live={} queued={} \
                 crashed={} problems={} repairs={} recovery={}",
                e.ops,
                e.cycles,
                e.queue_delay,
                e.event_queue_hwm,
                e.live_at_crash,
                e.queued_at_crash,
                e.crashed,
                e.salvage_problems,
                e.salvage_repairs,
                e.recovery_cycles
            );
        }
        let _ = writeln!(
            s,
            "hist: samples={} p50={} p99={}",
            self.hist.samples(),
            render_pct(&self.hist, 50),
            render_pct(&self.hist, 99)
        );
        let _ = writeln!(s, "parity={}", self.parity.join(","));
        for v in &self.violations {
            let _ = writeln!(s, "violation: {v}");
        }
        s
    }

    /// Terminal labels in the stream — must equal the scripted
    /// population, or recovery lost someone.
    fn terminals(&self) -> usize {
        self.parity
            .iter()
            .filter(|l| {
                l.as_str() == "out"
                    || l.as_str() == "reap"
                    || l.starts_with("out:")
                    || l.starts_with("reap:")
            })
            .count()
    }
}

/// Renders a percentile with its typed failure states instead of
/// collapsing them to `0`: a run whose every epoch crashed before
/// retiring an op has an *empty* histogram, which is a different fact
/// from a measured zero-cycle percentile.
fn render_pct(hist: &Histogram, pct: u64) -> String {
    match hist.percentile(pct) {
        Ok(v) => v.to_string(),
        Err(HistogramError::Empty) => "empty".to_string(),
        Err(e) => format!("error:{e}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn assemble(
    design: &'static str,
    schedule: String,
    spec: &C1Spec,
    st: EngineState,
    epochs: Vec<EpochReport>,
    epoch_bounds: Vec<usize>,
    load_cycles: u64,
    recovery_cycles: u64,
    mut violations: Vec<String>,
    stranded: usize,
    edges: EdgeSet,
) -> C1Run {
    let repro = spec.repro(design);
    let mut run = C1Run {
        design,
        schedule,
        ops: st.ops,
        abandoned: st.abandoned,
        queued_peak: st.queued_peak,
        parity: st.parity,
        epoch_bounds,
        epochs,
        admitted_order: st.admitted_order,
        hist: st.hist,
        load_cycles,
        recovery_cycles,
        violations: Vec::new(),
        edges,
    };
    if stranded > 0 {
        violations.push(format!(
            "{design} final: {stranded} logins stranded in the admission queue [{repro}]"
        ));
    }
    let ends = run.terminals();
    if ends != spec.sessions {
        violations.push(format!(
            "{design} final: {ends} sessions reached a terminal label but {} were scripted \
             — recovery lost sessions [{repro}]",
            spec.sessions
        ));
    }
    run.violations = violations;
    run
}

// ------------------------------------------------------------- kernel --

/// What [`kernel_reconcile`] rebuilds: the session table, the shard
/// directory tokens, and the driver context.
type KernelWorld = (
    Vec<Option<KSession>>,
    Vec<mx_kernel::ObjToken>,
    KernelWorldCtx,
);

/// Rebuilds the kernel-side user world after a recovery bootload:
/// re-registers the (in-core, therefore lost) accounts, re-opens the
/// driver session, reconciles the shared fixtures against whatever
/// survived on disk, wipes the population's own files, and re-opens
/// every surviving session at its pre-crash logical state.
fn kernel_reconcile(
    k: &mut Kernel,
    svc: &mut AnsweringService,
    load: &LoadSpec,
    scripts: &[SessionScript],
    st: &EngineState,
    old_sessions: &[Option<KSession>],
) -> Result<KernelWorld, String> {
    svc.register(k, "drv", UserId(1), "pw", Label::BOTTOM);
    for idx in 0..load.sessions {
        svc.register(k, &account_name(idx), UserId(1), "pw", Label::BOTTOM);
    }
    let drv = svc
        .login(k, "drv", "pw", Label::BOTTOM)
        .map_err(|e| format!("driver re-login: {e:?}"))?;
    let root = k.root_token();
    let acl = Acl::owner(UserId(1));

    // Library: keep the surviving segment if there is one, recreate it
    // if the crash cost us the entry, and re-publish the definitions
    // either way (cheap, idempotent, and repairs a torn page).
    let lib_tok = match k.dir_search(drv, root, "lib") {
        Ok(tok) => tok,
        Err(_) => k
            .create_entry(drv, root, "lib", acl.clone(), Label::BOTTOM, false)
            .map_err(|e| format!("lib recreate: {e:?}"))?,
    };
    let lib_segno = k
        .initiate(drv, lib_tok)
        .map_err(|e| format!("lib initiate: {e:?}"))?;
    let defs = definitions();
    let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
    publish_library(k, drv, lib_segno, &def_refs).map_err(|e| format!("lib publish: {e:?}"))?;

    // Shared segment: find-or-create, then rewrite every page.
    let shared_tok = match k.dir_search(drv, root, "shared") {
        Ok(tok) => tok,
        Err(_) => k
            .create_entry(drv, root, "shared", acl.clone(), Label::BOTTOM, false)
            .map_err(|e| format!("shared recreate: {e:?}"))?,
    };
    let shared_segno = k
        .initiate(drv, shared_tok)
        .map_err(|e| format!("shared initiate: {e:?}"))?;
    for page in 0..SHARED_PAGES {
        k.write_word(drv, shared_segno, page * PW, Word::new(shared_word(page)))
            .map_err(|e| format!("shared page {page}: {e:?}"))?;
    }

    // Shard directories: keep survivors (their salvaged quota cells are
    // the disk truth — neither design's set-quota call is idempotent),
    // recreate and re-cap only what vanished.
    let mut shard_toks = Vec::new();
    for j in 0..load.shard_count() {
        let tok = match k.dir_search(drv, root, &format!("s{j}")) {
            Ok(tok) => tok,
            Err(_) => {
                let tok = k
                    .create_entry(
                        drv,
                        root,
                        &format!("s{j}"),
                        acl.clone(),
                        Label::BOTTOM,
                        true,
                    )
                    .map_err(|e| format!("shard s{j} recreate: {e:?}"))?;
                k.set_quota(drv, tok, load.shard_quota_pages())
                    .map_err(|e| format!("shard s{j} quota: {e:?}"))?;
                tok
            }
        };
        shard_toks.push(tok);
    }

    // Wipe the population's own files. A survivor's file is about to be
    // replayed to its exact pre-crash contents under the session's new
    // process; finished sessions already deleted theirs; abandoned
    // leftovers are reclaimed (recovery's one permitted tidy-up — both
    // designs do it identically, so parity is unaffected).
    for idx in 0..load.sessions {
        let _ = k.delete_entry(drv, shard_toks[scripts[idx].shard], &file_name(idx));
    }

    // Re-open every surviving session at its script position.
    let mut sessions: Vec<Option<KSession>> = (0..load.sessions).map(|_| None).collect();
    for lv in &st.live {
        let idx = lv.idx;
        let pid = svc
            .login(k, &account_name(idx), "pw", Label::BOTTOM)
            .map_err(|e| format!("survivor u{idx} re-login: {e:?}"))?;
        let ns = NameSpace::new(k, pid);
        let mut s = KSession {
            pid,
            ns,
            linker: UserLinker::new(pid),
            own: None,
            shared_segno: None,
        };
        // `own` distinguishes create-succeeded (file exists logically,
        // even with zero pages grown) from never-created — a difference
        // invisible in the label stream but load-bearing for replay.
        let had_own = old_sessions[idx].as_ref().is_some_and(|o| o.own.is_some());
        if had_own {
            let tok = k
                .create_entry(
                    pid,
                    shard_toks[scripts[idx].shard],
                    &file_name(idx),
                    acl.clone(),
                    Label::BOTTOM,
                    false,
                )
                .map_err(|e| format!("survivor u{idx} file recreate: {e:?}"))?;
            let segno = k
                .initiate(pid, tok)
                .map_err(|e| format!("survivor u{idx} file initiate: {e:?}"))?;
            for (page, &val) in lv.grown_vals.iter().enumerate() {
                k.write_word(pid, segno, page as u32 * PW, Word::new(val))
                    .map_err(|e| format!("survivor u{idx} replay page {page}: {e:?}"))?;
            }
            s.own = Some((segno, tok));
        }
        sessions[idx] = Some(s);
    }
    Ok((sessions, shard_toks, KernelWorldCtx { drv, shared_segno }))
}

/// Runs the chaos composition on the new kernel.
pub fn run_kernel_c1(spec: &C1Spec) -> C1Run {
    let load = LoadSpec::continuous(spec.sessions, spec.seed);
    let scripts = load.scripts();
    let schedule = spec.policy.descriptor();
    let repro = spec.repro("kernel");
    let mut violations: Vec<String> = Vec::new();

    let (mut d, mut ctx) = setup_kernel(&load);
    // The durability point: everything the world build created is on
    // disk before the first crash can happen.
    d.k.sync_to_disk().expect("setup sync");
    d.k.reset_load_probes();
    if let Some(p) = spec.policy.make(0) {
        d.k.set_schedule_policy(p);
    }

    let mut st = EngineState::new();
    storm(&mut d, &scripts, &mut st);

    let mut epochs: Vec<EpochReport> = Vec::new();
    let mut epoch_bounds: Vec<usize> = Vec::new();
    let mut load_cycles = 0u64;
    let mut recovery_total = 0u64;
    let mut epoch_base = d.k.machine.clock.now();
    let mut drained = false;
    // The edge ledger outlives the machine: each crash boundary replaces
    // the clock, so the ledger is folded in before every replacement.
    let mut edges = EdgeSet::new();

    for e in 0..u64::from(spec.crashes) {
        drained = drive_until(
            &mut d,
            &scripts,
            &mut st,
            Some((e + 1) * spec.ops_per_epoch()),
        );
        for v in oracle::check_kernel(&d.k) {
            violations.push(format!("kernel epoch {e}: {v} [{repro}]"));
        }
        let now = d.k.machine.clock.now();
        load_cycles += now - epoch_base;
        let mut report = EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            queue_delay: d.k.vpm.queue_delay(),
            event_queue_hwm: d.k.upm.queue_high_watermark(),
            live_at_crash: st.live.len(),
            queued_at_crash: d.svc.queued_logins(),
            salvage_problems: 0,
            salvage_repairs: 0,
            recovery_cycles: 0,
            crashed: false,
        };
        if drained {
            epochs.push(report);
            break;
        }
        epoch_bounds.push(st.parity.len());

        // ---- the crash: beacon, arm, power fails mid-sync ----
        if let Err(err) =
            d.k.write_word(ctx.drv, ctx.shared_segno, 1, Word::new(0xBEAC_0000 + e))
        {
            violations.push(format!("kernel epoch {e}: beacon write: {err:?} [{repro}]"));
        }
        d.k.machine
            .faults
            .crash_after_further_writes(1, crash_mode(spec.plan_seed, e));
        let sync = d.k.sync_to_disk();
        if sync.is_ok() || d.k.machine.faults.halted().is_none() {
            violations.push(format!(
                "kernel epoch {e}: crash plan failed to fire during sync [{repro}]"
            ));
            epochs.push(report);
            edges.merge(d.k.machine.clock.edge_set());
            return assemble(
                "kernel",
                schedule,
                spec,
                st,
                epochs,
                epoch_bounds,
                load_cycles,
                recovery_total,
                violations,
                0,
                edges,
            );
        }
        edges.merge(d.k.machine.clock.edge_set());
        let image = d.k.machine.disks.clone();
        let KernelDriver {
            mut svc,
            sessions: old_sessions,
            ..
        } = d;
        let pending_before = svc.pending_names();
        svc.crash_recover();

        // ---- recovery: bootload, salvage twice, reconcile ----
        let mut rk = match Kernel::boot_from_image(load.kernel_config(), image) {
            Ok(rk) => rk,
            Err(err) => {
                violations.push(format!(
                    "kernel epoch {e}: recovery bootload failed: {err:?} [{repro}]"
                ));
                epochs.push(report);
                return assemble(
                    "kernel",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        };
        match (rk.salvage(true), rk.salvage(false)) {
            (Ok(repaired), Ok(check)) => {
                report.salvage_problems = repaired.problems.len();
                report.salvage_repairs = repaired.repairs.len();
                if !check.clean() {
                    violations.push(format!(
                        "kernel epoch {e}: salvage not idempotent — second pass sees {:?} [{repro}]",
                        check.problems
                    ));
                }
            }
            (r, c) => violations.push(format!(
                "kernel epoch {e}: salvage errored: {r:?} / {c:?} [{repro}]"
            )),
        }
        for v in oracle::check_kernel(&rk) {
            violations.push(format!("kernel epoch {e} post-salvage: {v} [{repro}]"));
        }
        match kernel_reconcile(&mut rk, &mut svc, &load, &scripts, &st, &old_sessions) {
            Ok((sessions, shard_toks, nctx)) => {
                if svc.pending_names() != pending_before {
                    violations.push(format!(
                        "kernel epoch {e}: admission queue changed across recovery — \
                         {pending_before:?} became {:?} [{repro}]",
                        svc.pending_names()
                    ));
                }
                ctx = nctx;
                d = KernelDriver {
                    k: rk,
                    svc,
                    sessions,
                    shard_toks,
                    salvage: SalvageProbe::default(),
                    deferred: Vec::new(),
                };
            }
            Err(msg) => {
                violations.push(format!("kernel epoch {e}: reconcile: {msg} [{repro}]"));
                epochs.push(report);
                return assemble(
                    "kernel",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        }
        if e == 0 && spec.self_check == C1SelfCheck::DropQueuedLogin {
            d.svc.drop_last_pending_for_test();
        }
        report.recovery_cycles = d.k.machine.clock.now();
        recovery_total += report.recovery_cycles;
        report.crashed = true;
        epochs.push(report);

        if let Some(p) = spec.policy.make(e + 1) {
            d.k.set_schedule_policy(p);
        }
        // Recovery and reconciliation traffic must not leak into the
        // next epoch's figures.
        d.k.reset_load_probes();
        epoch_base = d.k.machine.clock.now();
    }

    if !drained {
        drive_until(&mut d, &scripts, &mut st, None);
        for v in oracle::check_kernel(&d.k) {
            violations.push(format!("kernel final: {v} [{repro}]"));
        }
        let now = d.k.machine.clock.now();
        load_cycles += now - epoch_base;
        epochs.push(EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            queue_delay: d.k.vpm.queue_delay(),
            event_queue_hwm: d.k.upm.queue_high_watermark(),
            live_at_crash: 0,
            queued_at_crash: d.svc.queued_logins(),
            salvage_problems: 0,
            salvage_repairs: 0,
            recovery_cycles: 0,
            crashed: false,
        });
    }
    edges.merge(d.k.machine.clock.edge_set());
    let stranded = d.svc.queued_logins();
    assemble(
        "kernel",
        schedule,
        spec,
        st,
        epochs,
        epoch_bounds,
        load_cycles,
        recovery_total,
        violations,
        stranded,
        edges,
    )
}

// ------------------------------------------------------------- legacy --

/// The legacy mirror of [`kernel_reconcile`]: same logical steps,
/// through the 1974 supervisor's interfaces.
fn legacy_reconcile(
    sup: &mut Supervisor,
    load: &LoadSpec,
    scripts: &[SessionScript],
    st: &EngineState,
    old_sessions: &[Option<LSession>],
) -> Result<(Vec<Option<LSession>>, LegacyWorldCtx), String> {
    sup.register_user("drv", LUserId(1), "pw", Label::BOTTOM);
    for idx in 0..load.sessions {
        sup.register_user(&account_name(idx), LUserId(1), "pw", Label::BOTTOM);
    }
    let drv = sup
        .login("drv", "pw", Label::BOTTOM)
        .map_err(|e| format!("driver re-login: {e:?}"))?;
    let root = sup.root();
    let acl = LAcl::owner(LUserId(1));

    let lib_uid = match sup.resolve(drv, "lib", AccessRight::Read) {
        Ok((uid, _)) => uid,
        Err(_) => sup
            .create_segment_in(root, "lib", acl.clone(), Label::BOTTOM)
            .map_err(|e| format!("lib recreate: {e:?}"))?,
    };
    let defs = definitions();
    let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
    // The definition table is in-core on the old design: every recovery
    // must re-publish or links dangle.
    sup.publish_definitions(lib_uid, &def_refs);
    let lib_segno = sup
        .initiate(drv, "lib")
        .map_err(|e| format!("lib initiate: {e:?}"))?;
    sup.user_write(drv, lib_segno, 0, Word::new(def_refs.len() as u64))
        .map_err(|e| format!("lib page: {e:?}"))?;

    if sup.resolve(drv, "shared", AccessRight::Read).is_err() {
        sup.create_segment_in(root, "shared", acl.clone(), Label::BOTTOM)
            .map_err(|e| format!("shared recreate: {e:?}"))?;
    }
    let shared_segno = sup
        .initiate(drv, "shared")
        .map_err(|e| format!("shared initiate: {e:?}"))?;
    for page in 0..SHARED_PAGES {
        sup.user_write(drv, shared_segno, page * PW, Word::new(shared_word(page)))
            .map_err(|e| format!("shared page {page}: {e:?}"))?;
    }

    for j in 0..load.shard_count() {
        if sup
            .resolve(drv, &format!("s{j}"), AccessRight::Read)
            .is_err()
        {
            sup.create_directory_in(root, &format!("s{j}"), acl.clone(), Label::BOTTOM)
                .map_err(|e| format!("shard s{j} recreate: {e:?}"))?;
            sup.set_quota_directory(drv, &format!("s{j}"), load.shard_quota_pages())
                .map_err(|e| format!("shard s{j} quota: {e:?}"))?;
        }
    }

    for (idx, script) in scripts.iter().enumerate() {
        let _ = sup.delete(drv, &format!("s{}>{}", script.shard, file_name(idx)));
    }

    let mut sessions: Vec<Option<LSession>> = (0..load.sessions).map(|_| None).collect();
    for lv in &st.live {
        let idx = lv.idx;
        let pid = sup
            .login(&account_name(idx), "pw", Label::BOTTOM)
            .map_err(|e| format!("survivor u{idx} re-login: {e:?}"))?;
        let mut s = LSession {
            pid,
            own_segno: None,
            shared_segno: None,
        };
        let had_own = old_sessions[idx]
            .as_ref()
            .is_some_and(|o| o.own_segno.is_some());
        if had_own {
            let shard = scripts[idx].shard;
            let (shard_uid, _) = sup
                .resolve(pid, &format!("s{shard}"), AccessRight::Read)
                .map_err(|e| format!("survivor u{idx} shard resolve: {e:?}"))?;
            sup.create_segment_in(shard_uid, &file_name(idx), acl.clone(), Label::BOTTOM)
                .map_err(|e| format!("survivor u{idx} file recreate: {e:?}"))?;
            let segno = sup
                .initiate(pid, &format!("s{shard}>{}", file_name(idx)))
                .map_err(|e| format!("survivor u{idx} file initiate: {e:?}"))?;
            for (page, &val) in lv.grown_vals.iter().enumerate() {
                sup.user_write(pid, segno, page as u32 * PW, Word::new(val))
                    .map_err(|e| format!("survivor u{idx} replay page {page}: {e:?}"))?;
            }
            s.own_segno = Some(segno);
        }
        sessions[idx] = Some(s);
    }
    Ok((sessions, LegacyWorldCtx { drv, shared_segno }))
}

/// Runs the chaos composition on the 1974 supervisor. Its one inherent
/// schedule is the baseline every kernel policy run is compared to.
pub fn run_legacy_c1(spec: &C1Spec) -> C1Run {
    let load = LoadSpec::continuous(spec.sessions, spec.seed);
    let scripts = load.scripts();
    let schedule = "inherent".to_string();
    let repro = spec.repro("legacy");
    let mut violations: Vec<String> = Vec::new();

    let (mut d, mut ctx) = setup_legacy(&load);
    d.sup.sync_to_disk().expect("setup sync");

    let mut st = EngineState::new();
    storm(&mut d, &scripts, &mut st);

    let mut epochs: Vec<EpochReport> = Vec::new();
    let mut epoch_bounds: Vec<usize> = Vec::new();
    let mut load_cycles = 0u64;
    let mut recovery_total = 0u64;
    let mut epoch_base = d.sup.machine.clock.now();
    let mut drained = false;
    // The edge ledger outlives the machine: each crash boundary replaces
    // the clock, so the ledger is folded in before every replacement.
    let mut edges = EdgeSet::new();

    for e in 0..u64::from(spec.crashes) {
        drained = drive_until(
            &mut d,
            &scripts,
            &mut st,
            Some((e + 1) * spec.ops_per_epoch()),
        );
        for v in oracle::check_legacy(&d.sup) {
            violations.push(format!("legacy epoch {e}: {v} [{repro}]"));
        }
        let now = d.sup.machine.clock.now();
        load_cycles += now - epoch_base;
        let mut report = EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            queue_delay: (0, 0),
            event_queue_hwm: 0,
            live_at_crash: st.live.len(),
            queued_at_crash: d.pending.len(),
            salvage_problems: 0,
            salvage_repairs: 0,
            recovery_cycles: 0,
            crashed: false,
        };
        if drained {
            epochs.push(report);
            break;
        }
        epoch_bounds.push(st.parity.len());

        if let Err(err) = d
            .sup
            .user_write(ctx.drv, ctx.shared_segno, 1, Word::new(0xBEAC_0000 + e))
        {
            violations.push(format!("legacy epoch {e}: beacon write: {err:?} [{repro}]"));
        }
        d.sup
            .machine
            .faults
            .crash_after_further_writes(1, crash_mode(spec.plan_seed, e));
        let sync = d.sup.sync_to_disk();
        if sync.is_ok() || d.sup.machine.faults.halted().is_none() {
            violations.push(format!(
                "legacy epoch {e}: crash plan failed to fire during sync [{repro}]"
            ));
            epochs.push(report);
            edges.merge(d.sup.machine.clock.edge_set());
            return assemble(
                "legacy",
                schedule,
                spec,
                st,
                epochs,
                epoch_bounds,
                load_cycles,
                recovery_total,
                violations,
                0,
                edges,
            );
        }
        edges.merge(d.sup.machine.clock.edge_set());
        let image = d.sup.machine.disks.clone();
        let LegacyDriver {
            sessions: old_sessions,
            mut pending,
            ..
        } = d;

        let mut rs = match Supervisor::boot_from_image(load.supervisor_config(), image) {
            Ok(rs) => rs,
            Err(err) => {
                violations.push(format!(
                    "legacy epoch {e}: recovery bootload failed: {err:?} [{repro}]"
                ));
                epochs.push(report);
                return assemble(
                    "legacy",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        };
        match (rs.salvage(true), rs.salvage(false)) {
            (Ok(repaired), Ok(check)) => {
                report.salvage_problems = repaired.problems.len();
                report.salvage_repairs = repaired.repairs.len();
                if !check.clean() {
                    violations.push(format!(
                        "legacy epoch {e}: salvage not idempotent — second pass sees {:?} [{repro}]",
                        check.problems
                    ));
                }
            }
            (r, c) => violations.push(format!(
                "legacy epoch {e}: salvage errored: {r:?} / {c:?} [{repro}]"
            )),
        }
        for v in oracle::check_legacy(&rs) {
            violations.push(format!("legacy epoch {e} post-salvage: {v} [{repro}]"));
        }
        match legacy_reconcile(&mut rs, &load, &scripts, &st, &old_sessions) {
            Ok((sessions, nctx)) => {
                ctx = nctx;
                if e == 0 && spec.self_check == C1SelfCheck::DropQueuedLogin {
                    pending.pop_back();
                }
                d = LegacyDriver {
                    sup: rs,
                    sessions,
                    pending,
                    salvage: SalvageProbe::default(),
                    deferred: Vec::new(),
                };
            }
            Err(msg) => {
                violations.push(format!("legacy epoch {e}: reconcile: {msg} [{repro}]"));
                epochs.push(report);
                return assemble(
                    "legacy",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        }
        report.recovery_cycles = d.sup.machine.clock.now();
        recovery_total += report.recovery_cycles;
        report.crashed = true;
        epochs.push(report);
        epoch_base = d.sup.machine.clock.now();
    }

    if !drained {
        drive_until(&mut d, &scripts, &mut st, None);
        for v in oracle::check_legacy(&d.sup) {
            violations.push(format!("legacy final: {v} [{repro}]"));
        }
        let now = d.sup.machine.clock.now();
        load_cycles += now - epoch_base;
        epochs.push(EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            queue_delay: (0, 0),
            event_queue_hwm: 0,
            live_at_crash: 0,
            queued_at_crash: d.pending.len(),
            salvage_problems: 0,
            salvage_repairs: 0,
            recovery_cycles: 0,
            crashed: false,
        });
    }
    edges.merge(d.sup.machine.clock.edge_set());
    let stranded = d.pending.len();
    assemble(
        "legacy",
        schedule,
        spec,
        st,
        epochs,
        epoch_bounds,
        load_cycles,
        recovery_total,
        violations,
        stranded,
        edges,
    )
}

// ----------------------------------------------------- online salvage --

/// Deliberate online-salvage cheats, mirroring [`C1SelfCheck`]: the
/// per-release oracle battery must catch a salvager that hands a
/// directory back to traffic before it is actually clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum S1SelfCheck {
    /// Salvage honestly.
    None,
    /// At the first crash, tear the root quota cell behind the system's
    /// back and run a salvager that releases each directory *before*
    /// repairing its cell — the per-release recheck must fail at the
    /// root's own release.
    ReleaseBeforeCellRepair,
}

/// One online-salvage run: the C1 chaos composition, but recovery hands
/// the machine back to the population after reconciling only the
/// released prefix of the hierarchy; the salvager claims the rest one
/// directory at a time while the stream runs.
#[derive(Debug, Clone, Copy)]
pub struct S1Spec {
    /// Scripted sessions (the `crates/load` population).
    pub sessions: usize,
    /// Seed the session scripts expand from.
    pub seed: u64,
    /// Seed of the crash-mode stream (torn word counts, drop choices).
    pub plan_seed: u64,
    /// Crash/online-salvage/re-admit boundaries cut into the stream.
    pub crashes: u32,
    /// Kernel schedule between crashes.
    pub policy: C1Policy,
    /// Salvager honesty (see [`S1SelfCheck`]).
    pub self_check: S1SelfCheck,
}

impl S1Spec {
    /// An honest run.
    pub fn new(sessions: usize, seed: u64, plan_seed: u64, crashes: u32, policy: C1Policy) -> Self {
        Self {
            sessions,
            seed,
            plan_seed,
            crashes,
            policy,
            self_check: S1SelfCheck::None,
        }
    }

    /// Completed operations per epoch (see [`C1Spec::ops_per_epoch`]).
    pub fn ops_per_epoch(&self) -> u64 {
        2 * self.sessions as u64
    }

    /// The replayable identity of a run on `design`.
    pub fn repro(&self, design: &str) -> String {
        format!(
            "seed={:#x} plan={:#x} schedule={} sessions={} crashes={} design={design} mode=online",
            self.seed,
            self.plan_seed,
            self.policy.descriptor(),
            self.sessions,
            self.crashes
        )
    }
}

/// One online-salvage epoch's figures. The salvage fields describe the
/// crash at the *end* of this epoch; they accumulate while the next
/// segment's traffic runs concurrently with the repair and are patched
/// in once the salvage drains.
#[derive(Debug, Clone, Copy, Default)]
pub struct S1EpochReport {
    /// Cumulative engine ops at the end of the epoch.
    pub ops: u64,
    /// Simulated cycles the epoch's load phase took.
    pub cycles: u64,
    /// Sessions live at the boundary (the population the crash hits).
    pub live_at_crash: usize,
    /// Logins parked at the boundary (what recovery must not lose).
    pub queued_at_crash: usize,
    /// Whether this epoch ended in a crash (false only for the tail).
    pub crashed: bool,
    /// Problems the online salvager found in the crash image.
    pub salvage_problems: usize,
    /// Repairs it performed.
    pub salvage_repairs: usize,
    /// Directories claimed, repaired, and released one at a time.
    pub dirs_released: u32,
    /// Engine ops completed while the salvager was still running — the
    /// overlap a stop-the-world salvage forbids by construction.
    pub overlap_ops: u64,
    /// Cycles from `begin_online_salvage` to the salvager's `Done`.
    pub salvage_window: u64,
    /// Ops that hit a `SalvageBusy` barrier at least once.
    pub blocked_ops: u64,
    /// Total barrier retries (each retry steps the salvager once).
    pub retries: u64,
    /// Cycles spent blocked behind barriers, summed over blocked ops.
    pub blocked_cycles: u64,
    /// Cycles from salvage begin to the first op completed after the
    /// stream resumed.
    pub first_op_cycles: u64,
    /// Cycles from recovery bootload to the stream resuming — the
    /// number to compare against C1's stop-the-world `recovery_cycles`,
    /// which additionally contains two full salvage passes.
    pub recovery_cycles: u64,
}

/// Everything one design's online-salvage run produced.
#[derive(Debug, Clone)]
pub struct S1Run {
    /// `"kernel"` or `"legacy"`.
    pub design: &'static str,
    /// Schedule descriptor (`fifo`, `random:…`, `pct:…`, `inherent`).
    pub schedule: String,
    /// Total engine ops completed.
    pub ops: u64,
    /// Sessions abandoned (reaped) rather than logged out.
    pub abandoned: usize,
    /// Deepest the admission queue got.
    pub queued_peak: usize,
    /// The full user-visible label stream, across every epoch.
    pub parity: Vec<String>,
    /// `parity` index at each crash boundary.
    pub epoch_bounds: Vec<usize>,
    /// Per-epoch figures (crashed epochs first, then the tail).
    pub epochs: Vec<S1EpochReport>,
    /// Post-storm admission order (the FIFO fairness record).
    pub admitted_order: Vec<usize>,
    /// Per-operation service-time histogram across the whole run —
    /// barrier stalls are *inside* the blocked ops' samples.
    pub hist: Histogram,
    /// Load-phase cycles summed over epochs.
    pub load_cycles: u64,
    /// Bootload-to-stream-resume cycles summed over crashes.
    pub recovery_cycles: u64,
    /// Everything the oracles caught. Empty = clean.
    pub violations: Vec<String>,
    /// Observed inter-subsystem edges merged across every epoch's
    /// machine (see [`C1Run::edges`]).
    pub edges: EdgeSet,
}

impl S1Run {
    /// The run's complete deterministic transcript (see
    /// [`C1Run::transcript`]).
    pub fn transcript(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "design={} schedule={} mode=online ops={} abandoned={} queued_peak={} \
             load_cycles={} recovery_cycles={}",
            self.design,
            self.schedule,
            self.ops,
            self.abandoned,
            self.queued_peak,
            self.load_cycles,
            self.recovery_cycles
        );
        let _ = writeln!(s, "admitted={:?}", self.admitted_order);
        let _ = writeln!(s, "bounds={:?}", self.epoch_bounds);
        for (i, e) in self.epochs.iter().enumerate() {
            let _ = writeln!(
                s,
                "epoch {i}: ops={} cycles={} live={} queued={} crashed={} problems={} \
                 repairs={} released={} overlap_ops={} window={} blocked={} retries={} \
                 blocked_cycles={} first_op={} recovery={}",
                e.ops,
                e.cycles,
                e.live_at_crash,
                e.queued_at_crash,
                e.crashed,
                e.salvage_problems,
                e.salvage_repairs,
                e.dirs_released,
                e.overlap_ops,
                e.salvage_window,
                e.blocked_ops,
                e.retries,
                e.blocked_cycles,
                e.first_op_cycles,
                e.recovery_cycles
            );
        }
        let _ = writeln!(
            s,
            "hist: samples={} p50={} p99={}",
            self.hist.samples(),
            render_pct(&self.hist, 50),
            render_pct(&self.hist, 99)
        );
        let _ = writeln!(s, "parity={}", self.parity.join(","));
        for v in &self.violations {
            let _ = writeln!(s, "violation: {v}");
        }
        s
    }

    /// Terminal labels in the stream (see [`C1Run::terminals`]).
    fn terminals(&self) -> usize {
        self.parity
            .iter()
            .filter(|l| {
                l.as_str() == "out"
                    || l.as_str() == "reap"
                    || l.starts_with("out:")
                    || l.starts_with("reap:")
            })
            .count()
    }
}

#[allow(clippy::too_many_arguments)]
fn s1_assemble(
    design: &'static str,
    schedule: String,
    spec: &S1Spec,
    st: EngineState,
    epochs: Vec<S1EpochReport>,
    epoch_bounds: Vec<usize>,
    load_cycles: u64,
    recovery_cycles: u64,
    mut violations: Vec<String>,
    stranded: usize,
    edges: EdgeSet,
) -> S1Run {
    let repro = spec.repro(design);
    let mut run = S1Run {
        design,
        schedule,
        ops: st.ops,
        abandoned: st.abandoned,
        queued_peak: st.queued_peak,
        parity: st.parity,
        epoch_bounds,
        epochs,
        admitted_order: st.admitted_order,
        hist: st.hist,
        load_cycles,
        recovery_cycles,
        violations: Vec::new(),
        edges,
    };
    if stranded > 0 {
        violations.push(format!(
            "{design} final: {stranded} logins stranded in the admission queue [{repro}]"
        ));
    }
    let ends = run.terminals();
    if ends != spec.sessions {
        violations.push(format!(
            "{design} final: {ends} sessions reached a terminal label but {} were scripted \
             — recovery lost sessions [{repro}]",
            spec.sessions
        ));
    }
    run.violations = violations;
    run
}

/// Harvests a drained salvage's figures into the report of the epoch
/// whose crash spawned it, and re-tags the probe's accumulated oracle
/// violations with that epoch and the replayable repro string.
fn patch_salvage_figures(
    report: &mut S1EpochReport,
    probe: &mut SalvageProbe,
    violations: &mut Vec<String>,
    tag: &str,
    repro: &str,
) {
    let Some(begin) = probe.begin_at else { return };
    report.salvage_problems = probe.problems;
    report.salvage_repairs = probe.repairs;
    report.dirs_released = probe.dirs_released;
    report.overlap_ops = probe.ops_overlapped;
    report.blocked_ops = probe.blocked_ops;
    report.retries = probe.retries;
    report.blocked_cycles = probe.blocked_cycles;
    match probe.done_at {
        Some(done) => report.salvage_window = done.saturating_sub(begin),
        None => violations.push(format!("{tag}: online salvage never completed [{repro}]")),
    }
    if let Some(first) = probe.first_op_at {
        report.first_op_cycles = first.saturating_sub(begin);
    }
    for v in probe.violations.drain(..) {
        violations.push(format!("{tag}: {v} [{repro}]"));
    }
}

/// Retries `f` through `SalvageBusy`, stepping the salvager (and its
/// per-release oracle battery) between attempts. A bounded budget turns
/// a wedged salvager into a typed reconcile failure instead of a hang.
fn kernel_gate_retry<T>(
    k: &mut Kernel,
    probe: &mut SalvageProbe,
    what: &str,
    mut f: impl FnMut(&mut Kernel) -> Result<T, KernelError>,
) -> Result<T, String> {
    let mut attempts = 0u32;
    loop {
        match f(k) {
            Ok(v) => return Ok(v),
            Err(KernelError::SalvageBusy) => {
                attempts += 1;
                if attempts > SALVAGE_RETRY_BUDGET {
                    return Err(format!(
                        "{what}: salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted"
                    ));
                }
                probe.retries += 1;
                kernel_salvage_step_checked(k, probe);
            }
            Err(e) => return Err(format!("{what}: {e:?}")),
        }
    }
}

/// The legacy mirror of [`kernel_gate_retry`].
fn legacy_gate_retry<T>(
    sup: &mut Supervisor,
    probe: &mut SalvageProbe,
    what: &str,
    mut f: impl FnMut(&mut Supervisor) -> Result<T, LegacyError>,
) -> Result<T, String> {
    let mut attempts = 0u32;
    loop {
        match f(sup) {
            Ok(v) => return Ok(v),
            Err(LegacyError::SalvageBusy) => {
                attempts += 1;
                if attempts > SALVAGE_RETRY_BUDGET {
                    return Err(format!(
                        "{what}: salvage retry budget ({SALVAGE_RETRY_BUDGET}) exhausted"
                    ));
                }
                probe.retries += 1;
                legacy_salvage_step_checked(sup, probe);
            }
            Err(e) => return Err(format!("{what}: {e:?}")),
        }
    }
}

/// What [`kernel_reconcile_online`] rebuilds: sessions, shard tokens,
/// driver context, and the per-shard repair work parked until the
/// salvager releases each shard.
type KernelOnlineWorld = (
    Vec<Option<KSession>>,
    Vec<mx_kernel::ObjToken>,
    KernelWorldCtx,
    Vec<KernelDeferred>,
);

/// The online variant of [`kernel_reconcile`]: the same logical steps,
/// but run *against a live salvager*. Every gate call retries through
/// `SalvageBusy` by stepping the salvager (the driver re-login forces
/// the root and `>processes` out of quarantine — nothing is admitted
/// against an unreleased root). Crucially the population's file wipes
/// and the survivors' file replays are NOT performed here: each shard's
/// share is parked in a [`KernelDeferred`] and applied the moment the
/// salvager releases (or is proven to have dropped) that shard, so the
/// stream resumes before the hierarchy is fully repaired.
fn kernel_reconcile_online(
    k: &mut Kernel,
    svc: &mut AnsweringService,
    load: &LoadSpec,
    scripts: &[SessionScript],
    st: &EngineState,
    old_sessions: &[Option<KSession>],
    probe: &mut SalvageProbe,
) -> Result<KernelOnlineWorld, String> {
    svc.register(k, "drv", UserId(1), "pw", Label::BOTTOM);
    for idx in 0..load.sessions {
        svc.register(k, &account_name(idx), UserId(1), "pw", Label::BOTTOM);
    }
    let drv = {
        let mut attempts = 0u32;
        loop {
            match svc.login(k, "drv", "pw", Label::BOTTOM) {
                Ok(pid) => break pid,
                Err(KernelError::SalvageBusy) => {
                    attempts += 1;
                    if attempts > SALVAGE_RETRY_BUDGET {
                        return Err(format!(
                            "driver re-login: salvage retry budget ({SALVAGE_RETRY_BUDGET}) \
                             exhausted"
                        ));
                    }
                    probe.retries += 1;
                    kernel_salvage_step_checked(k, probe);
                }
                Err(e) => return Err(format!("driver re-login: {e:?}")),
            }
        }
    };
    let root = k.root_token();
    let acl = Acl::owner(UserId(1));

    // Library and shared segment: find-or-create and rewrite, exactly
    // as the stop-the-world reconcile does — both live in the root,
    // which the driver re-login already forced out of quarantine.
    let lib_tok =
        match kernel_gate_retry(k, probe, "lib search", |k| k.dir_search(drv, root, "lib")) {
            Ok(tok) => tok,
            Err(_) => kernel_gate_retry(k, probe, "lib recreate", |k| {
                k.create_entry(drv, root, "lib", acl.clone(), Label::BOTTOM, false)
            })?,
        };
    let lib_segno = kernel_gate_retry(k, probe, "lib initiate", |k| k.initiate(drv, lib_tok))?;
    let defs = definitions();
    let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
    kernel_gate_retry(k, probe, "lib publish", |k| {
        publish_library(k, drv, lib_segno, &def_refs)
    })?;

    let shared_tok = match kernel_gate_retry(k, probe, "shared search", |k| {
        k.dir_search(drv, root, "shared")
    }) {
        Ok(tok) => tok,
        Err(_) => kernel_gate_retry(k, probe, "shared recreate", |k| {
            k.create_entry(drv, root, "shared", acl.clone(), Label::BOTTOM, false)
        })?,
    };
    let shared_segno =
        kernel_gate_retry(k, probe, "shared initiate", |k| k.initiate(drv, shared_tok))?;
    for page in 0..SHARED_PAGES {
        kernel_gate_retry(k, probe, &format!("shared page {page}"), |k| {
            k.write_word(drv, shared_segno, page * PW, Word::new(shared_word(page)))
        })?;
    }

    // Shard directories: a surviving shard keeps its token even while
    // quarantined (the search only walks the released root); only a
    // shard the crash destroyed is recreated and re-capped now.
    let mut shard_toks = Vec::new();
    for j in 0..load.shard_count() {
        let name = format!("s{j}");
        let tok = match kernel_gate_retry(k, probe, &format!("shard s{j} search"), |k| {
            k.dir_search(drv, root, &name)
        }) {
            Ok(tok) => tok,
            Err(_) => {
                let tok = kernel_gate_retry(k, probe, &format!("shard s{j} recreate"), |k| {
                    k.create_entry(drv, root, &name, acl.clone(), Label::BOTTOM, true)
                })?;
                kernel_gate_retry(k, probe, &format!("shard s{j} quota"), |k| {
                    k.set_quota(drv, tok, load.shard_quota_pages())
                })?;
                tok
            }
        };
        shard_toks.push(tok);
    }

    // Re-open every surviving session at its script position — but do
    // NOT touch their files: the shard may still be quarantined. The
    // wipe of the population's files and the replay of each survivor's
    // pre-crash contents are parked per shard.
    let mut sessions: Vec<Option<KSession>> = (0..load.sessions).map(|_| None).collect();
    for lv in &st.live {
        let idx = lv.idx;
        let pid = {
            let mut attempts = 0u32;
            loop {
                match svc.login(k, &account_name(idx), "pw", Label::BOTTOM) {
                    Ok(pid) => break pid,
                    Err(KernelError::SalvageBusy) => {
                        attempts += 1;
                        if attempts > SALVAGE_RETRY_BUDGET {
                            return Err(format!(
                                "survivor u{idx} re-login: salvage retry budget \
                                 ({SALVAGE_RETRY_BUDGET}) exhausted"
                            ));
                        }
                        probe.retries += 1;
                        kernel_salvage_step_checked(k, probe);
                    }
                    Err(e) => return Err(format!("survivor u{idx} re-login: {e:?}")),
                }
            }
        };
        let ns = NameSpace::new(k, pid);
        sessions[idx] = Some(KSession {
            pid,
            ns,
            linker: UserLinker::new(pid),
            own: None,
            shared_segno: None,
        });
    }

    let had_own = |idx: usize| old_sessions[idx].as_ref().is_some_and(|o| o.own.is_some());
    let deferred = (0..load.shard_count())
        .map(|j| KernelDeferred {
            shard: j,
            drv,
            quota: load.shard_quota_pages(),
            wipe: (0..load.sessions)
                .filter(|idx| scripts[*idx].shard == j)
                .collect(),
            restore: st
                .live
                .iter()
                .filter(|lv| scripts[lv.idx].shard == j && had_own(lv.idx))
                .map(|lv| (lv.idx, lv.grown_vals.clone()))
                .collect(),
        })
        .collect();
    Ok((
        sessions,
        shard_toks,
        KernelWorldCtx { drv, shared_segno },
        deferred,
    ))
}

/// The legacy mirror of [`kernel_reconcile_online`].
type LegacyOnlineWorld = (Vec<Option<LSession>>, LegacyWorldCtx, Vec<LegacyDeferred>);

fn legacy_reconcile_online(
    sup: &mut Supervisor,
    load: &LoadSpec,
    scripts: &[SessionScript],
    st: &EngineState,
    old_sessions: &[Option<LSession>],
    probe: &mut SalvageProbe,
) -> Result<LegacyOnlineWorld, String> {
    sup.register_user("drv", LUserId(1), "pw", Label::BOTTOM);
    for idx in 0..load.sessions {
        sup.register_user(&account_name(idx), LUserId(1), "pw", Label::BOTTOM);
    }
    let drv = legacy_gate_retry(sup, probe, "driver re-login", |s| {
        s.login("drv", "pw", Label::BOTTOM)
    })?;
    let root = sup.root();
    let acl = LAcl::owner(LUserId(1));

    let lib_uid = match legacy_gate_retry(sup, probe, "lib resolve", |s| {
        s.resolve(drv, "lib", AccessRight::Read)
    }) {
        Ok((uid, _)) => uid,
        Err(_) => legacy_gate_retry(sup, probe, "lib recreate", |s| {
            s.create_segment_in(root, "lib", acl.clone(), Label::BOTTOM)
        })?,
    };
    let defs = definitions();
    let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
    sup.publish_definitions(lib_uid, &def_refs);
    let lib_segno = legacy_gate_retry(sup, probe, "lib initiate", |s| s.initiate(drv, "lib"))?;
    legacy_gate_retry(sup, probe, "lib page", |s| {
        s.user_write(drv, lib_segno, 0, Word::new(def_refs.len() as u64))
    })?;

    if legacy_gate_retry(sup, probe, "shared resolve", |s| {
        s.resolve(drv, "shared", AccessRight::Read)
    })
    .is_err()
    {
        legacy_gate_retry(sup, probe, "shared recreate", |s| {
            s.create_segment_in(root, "shared", acl.clone(), Label::BOTTOM)
        })?;
    }
    let shared_segno =
        legacy_gate_retry(sup, probe, "shared initiate", |s| s.initiate(drv, "shared"))?;
    for page in 0..SHARED_PAGES {
        legacy_gate_retry(sup, probe, &format!("shared page {page}"), |s| {
            s.user_write(drv, shared_segno, page * PW, Word::new(shared_word(page)))
        })?;
    }

    // Shard probes: the old resolve walks INTO the target, so a
    // surviving-but-quarantined shard answers `SalvageBusy` — which
    // proves it exists; only a genuine miss is recreated now.
    for j in 0..load.shard_count() {
        let name = format!("s{j}");
        match sup.resolve(drv, &name, AccessRight::Read) {
            Ok(_) | Err(LegacyError::SalvageBusy) => {}
            Err(_) => {
                legacy_gate_retry(sup, probe, &format!("shard s{j} recreate"), |s| {
                    s.create_directory_in(root, &name, acl.clone(), Label::BOTTOM)
                })?;
                legacy_gate_retry(sup, probe, &format!("shard s{j} quota"), |s| {
                    s.set_quota_directory(drv, &name, load.shard_quota_pages())
                })?;
            }
        }
    }

    let mut sessions: Vec<Option<LSession>> = (0..load.sessions).map(|_| None).collect();
    for lv in &st.live {
        let idx = lv.idx;
        let pid = legacy_gate_retry(sup, probe, &format!("survivor u{idx} re-login"), |s| {
            s.login(&account_name(idx), "pw", Label::BOTTOM)
        })?;
        sessions[idx] = Some(LSession {
            pid,
            own_segno: None,
            shared_segno: None,
        });
    }

    let had_own = |idx: usize| {
        old_sessions[idx]
            .as_ref()
            .is_some_and(|o| o.own_segno.is_some())
    };
    let deferred = (0..load.shard_count())
        .map(|j| LegacyDeferred {
            shard: j,
            drv,
            quota: load.shard_quota_pages(),
            wipe: (0..load.sessions)
                .filter(|idx| scripts[*idx].shard == j)
                .collect(),
            restore: st
                .live
                .iter()
                .filter(|lv| scripts[lv.idx].shard == j && had_own(lv.idx))
                .map(|lv| (lv.idx, lv.grown_vals.clone()))
                .collect(),
        })
        .collect();
    Ok((sessions, LegacyWorldCtx { drv, shared_segno }, deferred))
}

/// Runs any salvage still in flight to completion and applies whatever
/// shard repair work its releases unlocked. Called at epoch boundaries
/// so the boundary oracle battery (and the next crash) never race an
/// unfinished repair.
fn drain_kernel_salvage(d: &mut KernelDriver) {
    let mut guard = 0u32;
    while d.k.online_salvage_active() {
        kernel_salvage_step_checked(&mut d.k, &mut d.salvage);
        guard += 1;
        if guard > 10_000 {
            d.salvage
                .violations
                .push("online salvage failed to terminate within 10000 steps".to_string());
            break;
        }
    }
    d.attempt_deferred();
}

/// The legacy mirror of [`drain_kernel_salvage`].
fn drain_legacy_salvage(d: &mut LegacyDriver) {
    let mut guard = 0u32;
    while d.sup.online_salvage_active() {
        legacy_salvage_step_checked(&mut d.sup, &mut d.salvage);
        guard += 1;
        if guard > 10_000 {
            d.salvage
                .violations
                .push("online salvage failed to terminate within 10000 steps".to_string());
            break;
        }
    }
    d.attempt_deferred();
}

/// Runs the online-salvage composition on the new kernel: C1's crash
/// schedule, but every recovery re-admits the population immediately
/// and repairs the hierarchy one directory at a time underneath the
/// resumed stream.
pub fn run_kernel_s1(spec: &S1Spec) -> S1Run {
    let load = LoadSpec::continuous(spec.sessions, spec.seed);
    let scripts = load.scripts();
    let schedule = spec.policy.descriptor();
    let repro = spec.repro("kernel");
    let mut violations: Vec<String> = Vec::new();

    let (mut d, mut ctx) = setup_kernel(&load);
    d.k.sync_to_disk().expect("setup sync");
    d.k.reset_load_probes();
    if let Some(p) = spec.policy.make(0) {
        d.k.set_schedule_policy(p);
    }

    let mut st = EngineState::new();
    storm(&mut d, &scripts, &mut st);

    let mut epochs: Vec<S1EpochReport> = Vec::new();
    let mut epoch_bounds: Vec<usize> = Vec::new();
    let mut load_cycles = 0u64;
    let mut recovery_total = 0u64;
    let mut epoch_base = d.k.machine.clock.now();
    let mut drained = false;
    // The edge ledger outlives the machine: each crash boundary replaces
    // the clock, so the ledger is folded in before every replacement.
    let mut edges = EdgeSet::new();

    for e in 0..u64::from(spec.crashes) {
        drained = drive_until(
            &mut d,
            &scripts,
            &mut st,
            Some((e + 1) * spec.ops_per_epoch()),
        );
        drain_kernel_salvage(&mut d);
        let prev_idx = epochs.len();
        if let Some(prev) = epochs.last_mut() {
            let tag = format!("kernel epoch {} online salvage", prev_idx - 1);
            patch_salvage_figures(prev, &mut d.salvage, &mut violations, &tag, &repro);
        }
        for v in oracle::check_kernel(&d.k) {
            violations.push(format!("kernel epoch {e}: {v} [{repro}]"));
        }
        let now = d.k.machine.clock.now();
        load_cycles += now - epoch_base;
        let mut report = S1EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            live_at_crash: st.live.len(),
            queued_at_crash: d.svc.queued_logins(),
            ..S1EpochReport::default()
        };
        if drained {
            epochs.push(report);
            break;
        }
        epoch_bounds.push(st.parity.len());

        // ---- the crash: beacon, arm, power fails mid-sync ----
        if let Err(err) =
            d.k.write_word(ctx.drv, ctx.shared_segno, 1, Word::new(0xBEAC_0000 + e))
        {
            violations.push(format!("kernel epoch {e}: beacon write: {err:?} [{repro}]"));
        }
        d.k.machine
            .faults
            .crash_after_further_writes(1, crash_mode(spec.plan_seed, e));
        let sync = d.k.sync_to_disk();
        if sync.is_ok() || d.k.machine.faults.halted().is_none() {
            violations.push(format!(
                "kernel epoch {e}: crash plan failed to fire during sync [{repro}]"
            ));
            epochs.push(report);
            edges.merge(d.k.machine.clock.edge_set());
            return s1_assemble(
                "kernel",
                schedule,
                spec,
                st,
                epochs,
                epoch_bounds,
                load_cycles,
                recovery_total,
                violations,
                0,
                edges,
            );
        }
        edges.merge(d.k.machine.clock.edge_set());
        let image = d.k.machine.disks.clone();
        let KernelDriver {
            mut svc,
            sessions: old_sessions,
            ..
        } = d;
        let pending_before = svc.pending_names();
        svc.crash_recover();

        // ---- recovery: bootload, quarantine, reconcile, RESUME ----
        let mut rk = match Kernel::boot_from_image(load.kernel_config(), image) {
            Ok(rk) => rk,
            Err(err) => {
                violations.push(format!(
                    "kernel epoch {e}: recovery bootload failed: {err:?} [{repro}]"
                ));
                epochs.push(report);
                return s1_assemble(
                    "kernel",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        };
        let mut probe = SalvageProbe::default();
        if e == 0 && spec.self_check == S1SelfCheck::ReleaseBeforeCellRepair {
            // Tear the root quota cell behind the system's back, then
            // run the salvager that releases before repairing it.
            let root_uid = rk.dirm.root();
            let mut flows = mx_aim::FlowTracker::new();
            if let Err(err) = rk
                .qcm
                .charge(&mut rk.machine, root_uid, 3, Label::BOTTOM, &mut flows)
            {
                violations.push(format!(
                    "kernel epoch {e}: self-check drift injection failed: {err:?} [{repro}]"
                ));
            }
            rk.begin_online_salvage_with_cheat(Some(OnlineCheat::ReleaseBeforeCellRepair));
        } else {
            rk.begin_online_salvage();
        }
        probe.begin_at = Some(rk.machine.clock.now());
        match kernel_reconcile_online(
            &mut rk,
            &mut svc,
            &load,
            &scripts,
            &st,
            &old_sessions,
            &mut probe,
        ) {
            Ok((sessions, shard_toks, nctx, deferred)) => {
                if svc.pending_names() != pending_before {
                    violations.push(format!(
                        "kernel epoch {e}: admission queue changed across recovery — \
                         {pending_before:?} became {:?} [{repro}]",
                        svc.pending_names()
                    ));
                }
                ctx = nctx;
                d = KernelDriver {
                    k: rk,
                    svc,
                    sessions,
                    shard_toks,
                    salvage: probe,
                    deferred,
                };
                // Apply at once whatever the reconcile's own salvager
                // stepping already released — a fresh stream op must
                // never see a released-but-unwiped shard.
                d.attempt_deferred();
            }
            Err(msg) => {
                violations.push(format!("kernel epoch {e}: reconcile: {msg} [{repro}]"));
                for v in probe.violations.drain(..) {
                    violations.push(format!("kernel epoch {e} online salvage: {v} [{repro}]"));
                }
                epochs.push(report);
                return s1_assemble(
                    "kernel",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        }
        report.recovery_cycles = d.k.machine.clock.now();
        recovery_total += report.recovery_cycles;
        report.crashed = true;
        epochs.push(report);

        if let Some(p) = spec.policy.make(e + 1) {
            d.k.set_schedule_policy(p);
        }
        d.k.reset_load_probes();
        epoch_base = d.k.machine.clock.now();
    }

    if !drained {
        drive_until(&mut d, &scripts, &mut st, None);
        drain_kernel_salvage(&mut d);
        let prev_idx = epochs.len();
        if let Some(prev) = epochs.last_mut() {
            let tag = format!("kernel epoch {} online salvage", prev_idx - 1);
            patch_salvage_figures(prev, &mut d.salvage, &mut violations, &tag, &repro);
        }
        for v in oracle::check_kernel(&d.k) {
            violations.push(format!("kernel final: {v} [{repro}]"));
        }
        let now = d.k.machine.clock.now();
        load_cycles += now - epoch_base;
        epochs.push(S1EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            queued_at_crash: d.svc.queued_logins(),
            ..S1EpochReport::default()
        });
    }
    edges.merge(d.k.machine.clock.edge_set());
    let stranded = d.svc.queued_logins();
    s1_assemble(
        "kernel",
        schedule,
        spec,
        st,
        epochs,
        epoch_bounds,
        load_cycles,
        recovery_total,
        violations,
        stranded,
        edges,
    )
}

/// Runs the online-salvage composition on the 1974 supervisor.
pub fn run_legacy_s1(spec: &S1Spec) -> S1Run {
    let load = LoadSpec::continuous(spec.sessions, spec.seed);
    let scripts = load.scripts();
    let schedule = "inherent".to_string();
    let repro = spec.repro("legacy");
    let mut violations: Vec<String> = Vec::new();

    let (mut d, mut ctx) = setup_legacy(&load);
    d.sup.sync_to_disk().expect("setup sync");

    let mut st = EngineState::new();
    storm(&mut d, &scripts, &mut st);

    let mut epochs: Vec<S1EpochReport> = Vec::new();
    let mut epoch_bounds: Vec<usize> = Vec::new();
    let mut load_cycles = 0u64;
    let mut recovery_total = 0u64;
    let mut epoch_base = d.sup.machine.clock.now();
    let mut drained = false;
    // The edge ledger outlives the machine: each crash boundary replaces
    // the clock, so the ledger is folded in before every replacement.
    let mut edges = EdgeSet::new();

    for e in 0..u64::from(spec.crashes) {
        drained = drive_until(
            &mut d,
            &scripts,
            &mut st,
            Some((e + 1) * spec.ops_per_epoch()),
        );
        drain_legacy_salvage(&mut d);
        let prev_idx = epochs.len();
        if let Some(prev) = epochs.last_mut() {
            let tag = format!("legacy epoch {} online salvage", prev_idx - 1);
            patch_salvage_figures(prev, &mut d.salvage, &mut violations, &tag, &repro);
        }
        for v in oracle::check_legacy(&d.sup) {
            violations.push(format!("legacy epoch {e}: {v} [{repro}]"));
        }
        let now = d.sup.machine.clock.now();
        load_cycles += now - epoch_base;
        let mut report = S1EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            live_at_crash: st.live.len(),
            queued_at_crash: d.pending.len(),
            ..S1EpochReport::default()
        };
        if drained {
            epochs.push(report);
            break;
        }
        epoch_bounds.push(st.parity.len());

        if let Err(err) = d
            .sup
            .user_write(ctx.drv, ctx.shared_segno, 1, Word::new(0xBEAC_0000 + e))
        {
            violations.push(format!("legacy epoch {e}: beacon write: {err:?} [{repro}]"));
        }
        d.sup
            .machine
            .faults
            .crash_after_further_writes(1, crash_mode(spec.plan_seed, e));
        let sync = d.sup.sync_to_disk();
        if sync.is_ok() || d.sup.machine.faults.halted().is_none() {
            violations.push(format!(
                "legacy epoch {e}: crash plan failed to fire during sync [{repro}]"
            ));
            epochs.push(report);
            edges.merge(d.sup.machine.clock.edge_set());
            return s1_assemble(
                "legacy",
                schedule,
                spec,
                st,
                epochs,
                epoch_bounds,
                load_cycles,
                recovery_total,
                violations,
                0,
                edges,
            );
        }
        edges.merge(d.sup.machine.clock.edge_set());
        let image = d.sup.machine.disks.clone();
        let LegacyDriver {
            sessions: old_sessions,
            pending,
            ..
        } = d;

        let mut rs = match Supervisor::boot_from_image(load.supervisor_config(), image) {
            Ok(rs) => rs,
            Err(err) => {
                violations.push(format!(
                    "legacy epoch {e}: recovery bootload failed: {err:?} [{repro}]"
                ));
                epochs.push(report);
                return s1_assemble(
                    "legacy",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        };
        let mut probe = SalvageProbe::default();
        if e == 0 && spec.self_check == S1SelfCheck::ReleaseBeforeCellRepair {
            match rs.ast.find(rs.root()) {
                Some(astx) => {
                    if let Some(q) = rs.ast.get_mut(astx).and_then(|a| a.quota.as_mut()) {
                        q.used += 3;
                    }
                }
                None => violations.push(format!(
                    "legacy epoch {e}: self-check drift injection found no root AST entry \
                     [{repro}]"
                )),
            }
            rs.begin_online_salvage_with_cheat(Some(LegacyOnlineCheat::ReleaseBeforeCellRepair));
        } else {
            rs.begin_online_salvage();
        }
        probe.begin_at = Some(rs.machine.clock.now());
        match legacy_reconcile_online(&mut rs, &load, &scripts, &st, &old_sessions, &mut probe) {
            Ok((sessions, nctx, deferred)) => {
                ctx = nctx;
                d = LegacyDriver {
                    sup: rs,
                    sessions,
                    pending,
                    salvage: probe,
                    deferred,
                };
                d.attempt_deferred();
            }
            Err(msg) => {
                violations.push(format!("legacy epoch {e}: reconcile: {msg} [{repro}]"));
                for v in probe.violations.drain(..) {
                    violations.push(format!("legacy epoch {e} online salvage: {v} [{repro}]"));
                }
                epochs.push(report);
                return s1_assemble(
                    "legacy",
                    schedule,
                    spec,
                    st,
                    epochs,
                    epoch_bounds,
                    load_cycles,
                    recovery_total,
                    violations,
                    0,
                    edges,
                );
            }
        }
        report.recovery_cycles = d.sup.machine.clock.now();
        recovery_total += report.recovery_cycles;
        report.crashed = true;
        epochs.push(report);
        epoch_base = d.sup.machine.clock.now();
    }

    if !drained {
        drive_until(&mut d, &scripts, &mut st, None);
        drain_legacy_salvage(&mut d);
        let prev_idx = epochs.len();
        if let Some(prev) = epochs.last_mut() {
            let tag = format!("legacy epoch {} online salvage", prev_idx - 1);
            patch_salvage_figures(prev, &mut d.salvage, &mut violations, &tag, &repro);
        }
        for v in oracle::check_legacy(&d.sup) {
            violations.push(format!("legacy final: {v} [{repro}]"));
        }
        let now = d.sup.machine.clock.now();
        load_cycles += now - epoch_base;
        epochs.push(S1EpochReport {
            ops: st.ops,
            cycles: now - epoch_base,
            queued_at_crash: d.pending.len(),
            ..S1EpochReport::default()
        });
    }
    edges.merge(d.sup.machine.clock.edge_set());
    let stranded = d.pending.len();
    s1_assemble(
        "legacy",
        schedule,
        spec,
        st,
        epochs,
        epoch_bounds,
        load_cycles,
        recovery_total,
        violations,
        stranded,
        edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: C1Policy) -> C1Spec {
        C1Spec::new(8, 0xC1, 0xFA11, 2, policy)
    }

    #[test]
    fn kernel_chaos_run_is_clean_and_deterministic() {
        let spec = small(C1Policy::Fifo);
        let a = run_kernel_c1(&spec);
        assert_eq!(a.violations, Vec::<String>::new());
        assert_eq!(
            a.epochs.iter().filter(|e| e.crashed).count(),
            2,
            "both crashes fired"
        );
        let b = run_kernel_c1(&spec);
        assert_eq!(a.transcript(), b.transcript(), "byte-identical rerun");
    }

    #[test]
    fn legacy_chaos_run_is_clean_and_deterministic() {
        let spec = small(C1Policy::Fifo);
        let a = run_legacy_c1(&spec);
        assert_eq!(a.violations, Vec::<String>::new());
        assert_eq!(a.epochs.iter().filter(|e| e.crashed).count(), 2);
        let b = run_legacy_c1(&spec);
        assert_eq!(a.transcript(), b.transcript());
    }

    #[test]
    fn designs_agree_label_by_label_across_crashes() {
        let spec = small(C1Policy::Fifo);
        let k = run_kernel_c1(&spec);
        let l = run_legacy_c1(&spec);
        assert_eq!(k.parity, l.parity, "cross-design parity across crashes");
        assert_eq!(k.epoch_bounds, l.epoch_bounds, "ops-positioned bounds");
        assert_eq!(k.admitted_order, l.admitted_order, "FIFO fairness");
    }

    #[test]
    fn adversarial_schedules_preserve_parity() {
        let spec = small(C1Policy::Fifo);
        let l = run_legacy_c1(&spec);
        for policy in [C1Policy::Random(7), C1Policy::Pct(7)] {
            let k = run_kernel_c1(&C1Spec { policy, ..spec });
            assert_eq!(k.violations, Vec::<String>::new(), "{policy:?}");
            assert_eq!(k.parity, l.parity, "{policy:?} diverged from baseline");
            assert_eq!(k.admitted_order, l.admitted_order, "{policy:?} fairness");
        }
    }

    fn small_s1(policy: C1Policy) -> S1Spec {
        S1Spec::new(8, 0xC1, 0xFA11, 2, policy)
    }

    #[test]
    fn kernel_online_salvage_serves_during_repair() {
        let spec = small_s1(C1Policy::Fifo);
        let a = run_kernel_s1(&spec);
        assert_eq!(a.violations, Vec::<String>::new());
        assert_eq!(a.epochs.iter().filter(|e| e.crashed).count(), 2);
        let released: u32 = a.epochs.iter().map(|e| e.dirs_released).sum();
        assert!(
            released > 0,
            "the salvager released directories one at a time"
        );
        let b = run_kernel_s1(&spec);
        assert_eq!(a.transcript(), b.transcript(), "byte-identical rerun");
    }

    #[test]
    fn legacy_online_salvage_serves_during_repair() {
        let spec = small_s1(C1Policy::Fifo);
        let a = run_legacy_s1(&spec);
        assert_eq!(a.violations, Vec::<String>::new());
        assert_eq!(a.epochs.iter().filter(|e| e.crashed).count(), 2);
        let b = run_legacy_s1(&spec);
        assert_eq!(a.transcript(), b.transcript());
    }

    #[test]
    fn online_salvage_designs_agree_label_by_label() {
        let spec = small_s1(C1Policy::Fifo);
        let k = run_kernel_s1(&spec);
        let l = run_legacy_s1(&spec);
        assert_eq!(
            k.parity, l.parity,
            "cross-design parity under online salvage"
        );
        assert_eq!(k.epoch_bounds, l.epoch_bounds);
        assert_eq!(k.admitted_order, l.admitted_order, "FIFO fairness");
    }

    #[test]
    fn online_salvage_matches_stop_the_world_labels() {
        // The stream's user-visible outcome must not depend on whether
        // recovery repaired everything up front or underneath traffic.
        let c1 = run_kernel_c1(&small(C1Policy::Fifo));
        let s1 = run_kernel_s1(&small_s1(C1Policy::Fifo));
        assert_eq!(s1.parity, c1.parity, "online salvage changed an outcome");
        assert_eq!(s1.admitted_order, c1.admitted_order);
    }

    #[test]
    fn release_before_cell_repair_cheat_is_caught() {
        let mut spec = small_s1(C1Policy::Fifo);
        spec.self_check = S1SelfCheck::ReleaseBeforeCellRepair;
        let broken = run_kernel_s1(&spec);
        assert!(
            !broken.violations.is_empty(),
            "the per-release battery must catch the cheat"
        );
        assert!(
            broken
                .violations
                .iter()
                .any(|v| v.contains("seed=") && v.contains("plan=") && v.contains("schedule=")),
            "violations must carry the replayable repro string: {:?}",
            broken.violations
        );
        let replay = run_kernel_s1(&spec);
        assert_eq!(broken.violations, replay.violations);
    }

    #[test]
    fn dropped_queued_login_is_caught_with_replayable_repro() {
        let mut spec = small(C1Policy::Fifo);
        spec.self_check = C1SelfCheck::DropQueuedLogin;
        let broken = run_kernel_c1(&spec);
        assert!(
            !broken.violations.is_empty(),
            "the cheat must be caught by the oracles"
        );
        assert!(
            broken
                .violations
                .iter()
                .any(|v| v.contains("seed=") && v.contains("plan=") && v.contains("schedule=")),
            "violations must carry the replayable repro string: {:?}",
            broken.violations
        );
        // The printed triple replays to the identical violations.
        let replay = run_kernel_c1(&spec);
        assert_eq!(broken.violations, replay.violations);
    }
}
