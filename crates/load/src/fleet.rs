//! F1 — multi-machine Multics: a sharded fleet behind one answering
//! service.
//!
//! The paper's closing argument is that a kernel small enough to audit
//! is also small enough to *replicate*: several machines, each running
//! the same kernel (or a specialized subset of it), sharing one user
//! community through an inter-machine wire. This module builds that
//! fleet deterministically: M simulated machines, each a full
//! [`Kernel`]/[`Supervisor`] instance, a single front answering service
//! that routes every login, and a simulated wire carrying framed
//! messages between machines through the *existing* network entry
//! points (`demux_receive` on the kernel, `network_receive` on the old
//! supervisor).
//!
//! Determinism contract: the wire delivers frames link-FIFO, and the
//! cross-link delivery order is a [`ChoicePoint::Wire`] consulted on the
//! fleet's schedule policy — so the explorer can permute deliveries and
//! the parity oracle can prove the user-visible stream independent of
//! them. Under the default FIFO policy a fleet run is byte-identical
//! across reruns, and its merged label stream is byte-identical to the
//! single-machine load engine's for the same population.
//!
//! Placement: shard directory `s{j}` lives on machine `j % M`, and the
//! library, the shared segment, and the migration landing zone live on
//! machine 0 (the *store*). Sessions are homed by a seed-keyed hash so
//! remote and local traffic both occur at every machine count. Because
//! the engine executes one logical stream and every quota cell lives on
//! exactly one machine, the per-cell charge sequences — and therefore
//! the user-visible labels — are structurally identical to the
//! single-machine run.

use std::collections::{HashMap, VecDeque};

use crate::hist::Histogram;
use crate::run::{
    account_name, definitions, drive_until, file_name, klabel, llabel, shared_word, storm, symbol,
    Action, Driver, EngineState, LoadRun, LoadSpec, ResolveTarget,
};
use crate::script::SHARED_PAGES;
use mx_aim::Label;
use mx_explore::oracle;
use mx_hw::meter::{EdgeSet, MeterSnapshot};
use mx_hw::{DiskSystem, Language, Subsystem, Word, PAGE_WORDS};
use mx_kernel::demux::{FramingSpec, StreamId};
use mx_kernel::{Acl, Kernel, KernelConfig, ObjToken, ProcessId, UserId};
use mx_legacy::network::{NetworkId, NetworkKind};
use mx_legacy::{
    AccessRight, Acl as LAcl, LegacyError, ProcessId as LProcessId, Supervisor, SupervisorConfig,
    UserId as LUserId,
};
use mx_sync::{ChoicePoint, FifoPolicy, SchedulePolicy};
use mx_user::{publish_library, AnsweringService, NameSpace, UserLinker};

// ------------------------------------------------------ wire protocol --

/// Response channel for requests served by machine `t` is `RESP + t`.
const CH_RESP_BASE: u16 = 100;
/// Fleet housekeeping gossip (load figures, ack-carrying).
const CH_GOSSIP: u8 = 250;
/// Front answering-service admission directives.
const CH_DIRECTIVE: u8 = 251;

/// Every third served request, the serving machine gossips its load
/// figure to the rest of the fleet (and the receivers acknowledge),
/// which is what keeps more than one wire link busy at once — the
/// delivery-order choice points the explorer permutes.
const GOSSIP_EVERY: u64 = 3;

/// PL/I instructions the general store's user-domain command layer
/// spends decoding one remote request before dispatching it.
const CMD_DECODE_INSTR: u64 = 40;
/// Machine instructions the specialized file-store machine's resident
/// dispatch stub spends on the same decision — no command layer, no
/// gate, just a jump table inside the network subsystem.
const RESIDENT_DISPATCH_INSTR: u64 = 8;

const OP_LINK: u8 = 1;
const OP_RESOLVE_LIB: u8 = 2;
const OP_RESOLVE_SHARED: u8 = 3;
const OP_READ_SHARED: u8 = 4;
const OP_RESOLVE_SHARD: u8 = 5;
const OP_GROW: u8 = 6;
const OP_READ_OWN: u8 = 7;
const OP_DELETE_OWN: u8 = 8;
const OP_MIG_OPEN: u8 = 9;
const OP_MIG_WRITE: u8 = 10;
const OP_MIG_COMMIT: u8 = 11;

const ST_OK: u8 = 0;
const ST_QUOTA: u8 = 1;
const ST_FULL: u8 = 2;
const ST_ERR: u8 = 3;

/// Request payload: op, session index, shard, `a`, then `b` — fixed 14
/// bytes so a mangled frame is detectable by length alone.
const REQ_LEN: usize = 14;
/// Response payload: status byte plus a 64-bit value.
const RESP_LEN: usize = 9;

fn status_name(st: u8) -> &'static str {
    match st {
        ST_QUOTA => "quota",
        ST_FULL => "full",
        _ => "err",
    }
}

/// Label for an RPC whose reply carries a value (`l:`, `r:`).
fn value_label(prefix: &str, resp: Option<(u8, u64)>) -> String {
    match resp {
        Some((ST_OK, v)) => format!("{prefix}:{v}"),
        Some((st, _)) => format!("{prefix}:{}", status_name(st)),
        None => format!("{prefix}:lost"),
    }
}

/// Label for an RPC whose reply is just an outcome (`n:`, `w:`).
fn ok_label(prefix: &str, resp: Option<(u8, u64)>) -> String {
    match resp {
        Some((ST_OK, _)) => format!("{prefix}:ok"),
        Some((st, _)) => format!("{prefix}:{}", status_name(st)),
        None => format!("{prefix}:lost"),
    }
}

/// One remote request, before framing.
#[derive(Debug, Clone, Copy)]
struct Req {
    op: u8,
    idx: usize,
    shard: usize,
    a: u32,
    b: u64,
}

impl Req {
    fn new(op: u8, idx: usize, shard: usize) -> Self {
        Self {
            op,
            idx,
            shard,
            a: 0,
            b: 0,
        }
    }

    fn arg(mut self, a: u32) -> Self {
        self.a = a;
        self
    }

    fn val(mut self, b: u64) -> Self {
        self.b = b;
        self
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = vec![
            self.op,
            self.idx as u8,
            (self.idx >> 8) as u8,
            self.shard as u8,
            self.a as u8,
            (self.a >> 8) as u8,
        ];
        p.extend_from_slice(&self.b.to_le_bytes());
        p
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            op: bytes[0],
            idx: usize::from(u16::from_le_bytes([bytes[1], bytes[2]])),
            shard: usize::from(bytes[3]),
            a: u32::from(u16::from_le_bytes([bytes[4], bytes[5]])),
            b: u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes")),
        }
    }
}

// -------------------------------------------------------------- spec --

/// What fleet to run: machine count, population, and configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetSpec {
    /// Machines in the fleet (≥ 1; 1 degenerates to the single-machine
    /// engine with the wire idle).
    pub machines: usize,
    /// Scripted sessions, shared with [`LoadSpec`].
    pub sessions: usize,
    /// Seed every script and every home assignment expands from.
    pub seed: u64,
    /// Machine 0 runs the specialized file-store configuration: remote
    /// requests are dispatched by a short resident stub under the
    /// network subsystem (no user-domain command layer, no gate on the
    /// read path) — the paper's T3 leg. Kernel design only.
    pub specialized_store: bool,
    /// Home no sessions on machine 0, so the store serves files and
    /// nothing else (requires `machines >= 2`). Used to measure the
    /// specialized-vs-general store comparison cleanly.
    pub dedicated_store: bool,
    /// Give member machines (1..M) small primary packs so file growth
    /// forces full-pack relocation, and migrate each relocated session
    /// file to the store over the wire.
    pub migratory: bool,
    /// Self-check: silently discard the Nth delivered data frame
    /// (1-based). The parity/conservation oracles must catch it.
    pub drop_frame: Option<u64>,
}

impl FleetSpec {
    /// An ample-storage fleet, all flags off.
    pub fn new(machines: usize, sessions: usize, seed: u64) -> Self {
        Self {
            machines,
            sessions,
            seed,
            specialized_store: false,
            dedicated_store: false,
            migratory: false,
            drop_frame: None,
        }
    }

    /// The single-machine spec this fleet's label stream must match.
    pub fn base(&self) -> LoadSpec {
        LoadSpec::new(self.sessions, self.seed)
    }

    /// Session homes: seed-keyed, decorrelated from the shard
    /// assignment (`idx % shards`) so every machine count sees both
    /// local and remote own-file traffic.
    fn homes(&self) -> Vec<usize> {
        (0..self.sessions)
            .map(|idx| home_of(self.seed, idx, self.machines, self.dedicated_store))
            .collect()
    }
}

/// SplitMix64-style finalizer over (seed, idx): uniform, deterministic,
/// and uncorrelated with `idx % shards`.
fn home_of(seed: u64, idx: usize, machines: usize, dedicated: bool) -> usize {
    if machines == 1 {
        return 0;
    }
    let mut z = seed ^ 0xF1EE_7001_D00D_5EED ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if dedicated {
        1 + (z % (machines as u64 - 1)) as usize
    } else {
        (z % machines as u64) as usize
    }
}

// -------------------------------------------------------------- wire --

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Data,
    Directive,
    Gossip,
}

struct WireFrame {
    kind: FrameKind,
    bytes: Vec<u8>,
}

/// The inter-machine wire: one FIFO queue per directed link, delivery
/// order across links a [`ChoicePoint::Wire`] on the fleet policy.
struct Wire {
    machines: usize,
    links: Vec<VecDeque<WireFrame>>,
    policy: Box<dyn SchedulePolicy>,
    sent: u64,
    delivered: u64,
    dropped: u64,
    data_deliveries: u64,
    drop_at: Option<u64>,
}

impl Wire {
    fn new(machines: usize, policy: Option<Box<dyn SchedulePolicy>>, drop_at: Option<u64>) -> Self {
        Self {
            machines,
            links: (0..machines * machines).map(|_| VecDeque::new()).collect(),
            policy: policy.unwrap_or_else(|| Box::new(FifoPolicy)),
            sent: 0,
            delivered: 0,
            dropped: 0,
            data_deliveries: 0,
            drop_at,
        }
    }

    /// Front-end framing: channel byte, length byte, payload.
    fn frame(channel: u8, payload: &[u8]) -> Vec<u8> {
        let mut b = Vec::with_capacity(2 + payload.len());
        b.push(channel);
        b.push(payload.len() as u8);
        b.extend_from_slice(payload);
        b
    }

    fn send(&mut self, src: usize, dst: usize, kind: FrameKind, bytes: Vec<u8>) {
        self.sent += 1;
        self.links[src * self.machines + dst].push_back(WireFrame { kind, bytes });
    }

    /// Next frame off the wire: link chosen by the policy when more than
    /// one is busy, head-of-line within a link always. Returns the
    /// destination machine and the frame, skipping a frame the planted
    /// drop cheat discards.
    fn pop(&mut self) -> Option<(usize, WireFrame)> {
        loop {
            let ids: Vec<u32> = (0..self.links.len())
                .filter(|&l| !self.links[l].is_empty())
                .map(|l| l as u32)
                .collect();
            let link = match ids.len() {
                0 => return None,
                1 => ids[0] as usize,
                _ => {
                    let pick = self.policy.choose(ChoicePoint::Wire, &ids);
                    ids[pick.min(ids.len() - 1)] as usize
                }
            };
            let frame = self.links[link].pop_front().expect("non-empty link");
            if frame.kind == FrameKind::Data {
                self.data_deliveries += 1;
                if self.drop_at == Some(self.data_deliveries) {
                    self.dropped += 1;
                    continue;
                }
            }
            self.delivered += 1;
            return Some((link % self.machines, frame));
        }
    }
}

// ------------------------------------------------------------ results --

/// Everything one design's fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// `"kernel"` or `"legacy"`.
    pub design: &'static str,
    /// Fleet size.
    pub machines: usize,
    /// Load-phase cycles summed over every machine (the fleet's total
    /// work).
    pub cycles: u64,
    /// The busiest machine's load-phase cycles (the fleet's wall clock).
    pub wall_cycles: u64,
    /// Setup cycles summed over every machine.
    pub setup_cycles: u64,
    /// Operations completed.
    pub ops: u64,
    /// Sessions driven to completion.
    pub sessions: usize,
    /// Sessions reaped rather than logged out.
    pub abandoned: usize,
    /// Deepest the front admission queue got during the login storm.
    pub queued_peak: usize,
    /// The merged user-visible label stream — must be byte-identical to
    /// the single-machine run's for the same population.
    pub parity: Vec<String>,
    /// Per-operation service-time histogram (fleet cycles).
    pub hist: Histogram,
    /// Post-storm admissions in release order (the fairness record).
    pub admitted_order: Vec<usize>,
    /// Frames offered to the wire.
    pub frames_sent: u64,
    /// Frames the wire delivered.
    pub frames_delivered: u64,
    /// Frames the planted cheat discarded (0 in honest runs).
    pub frames_dropped: u64,
    /// Operations that crossed the wire at least once.
    pub remote_ops: u64,
    /// Session files migrated to the store on full-pack relocation.
    pub migrations: u64,
    /// Whole-segment relocations across the fleet.
    pub relocations: u64,
    /// Load-phase cycles per machine (machine 0 is the store).
    pub per_machine_cycles: Vec<u64>,
    /// The store machine's load-phase cycles (the T3 comparand).
    pub store_cycles: u64,
    /// The store machine's per-subsystem attribution over the load
    /// phase.
    pub store_meter: MeterSnapshot,
    /// Observed cross-subsystem edges merged over every machine.
    pub edges: EdgeSet,
    /// Per-machine oracle batteries, fleet-wide record conservation,
    /// and orchestrator-level failures. Empty = clean.
    pub violations: Vec<String>,
}

impl FleetRun {
    /// Operations retired per million fleet cycles.
    pub fn ops_per_mcycle(&self) -> f64 {
        self.ops as f64 * 1e6 / self.cycles.max(1) as f64
    }

    /// The fleet-vs-single-machine check: this run's own violations
    /// plus label, admission-pressure, and admission-order parity
    /// against the single-machine baseline. Empty = the fleet is
    /// user-indistinguishable from one machine.
    pub fn check_against(&self, single: &LoadRun) -> Vec<String> {
        let mut out = self.violations.clone();
        if self.parity.len() != single.parity.len() {
            out.push(format!(
                "parity: fleet emitted {} labels, single-machine {}",
                self.parity.len(),
                single.parity.len()
            ));
        }
        for (i, (f, s)) in self.parity.iter().zip(single.parity.iter()).enumerate() {
            if f != s {
                out.push(format!(
                    "parity: label {i} differs — fleet '{f}', single-machine '{s}'"
                ));
                break;
            }
        }
        if self.queued_peak != single.queued_peak {
            out.push(format!(
                "admission: fleet queue peaked at {}, single-machine at {}",
                self.queued_peak, single.queued_peak
            ));
        }
        if let Some(w) = self.admitted_order.windows(2).find(|w| w[0] >= w[1]) {
            out.push(format!(
                "admission: queue released u{} before u{} — not first-come-first-served",
                w[1], w[0]
            ));
        }
        out
    }
}

/// Fleet-wide record conservation: every record allocated anywhere in
/// the fleet is referenced by exactly one file map somewhere in the
/// fleet. Per-machine conservation is part of each machine's oracle
/// battery; the fleet-wide sum is what catches a record lost (or
/// double-materialized) while a pack's contents moved between machines.
fn disk_totals(disks: &DiskSystem) -> (u64, u64) {
    let mut allocated = 0u64;
    let mut referenced = 0u64;
    for pack in disks.packs() {
        allocated += pack.allocated_record_nos().len() as u64;
        for (_, entry) in pack.entries() {
            referenced += entry.file_map.iter().flatten().count() as u64;
        }
    }
    (allocated, referenced)
}

fn fleet_conservation(totals: &[(u64, u64)]) -> Vec<String> {
    let allocated: u64 = totals.iter().map(|t| t.0).sum();
    let referenced: u64 = totals.iter().map(|t| t.1).sum();
    if allocated == referenced {
        Vec::new()
    } else {
        vec![format!(
            "fleet record conservation: {allocated} records allocated across \
             the fleet but {referenced} referenced"
        )]
    }
}

// ------------------------------------------------------ kernel fleet --

/// A daemon-held handle to a file served on behalf of a remote session.
struct RFile {
    parent: ObjToken,
    name: String,
    segno: u32,
}

struct KMachine {
    k: Kernel,
    svc: AnsweringService,
    drv: ProcessId,
    ns: NameSpace,
    linker: UserLinker,
    stream: StreamId,
    shard_toks: HashMap<usize, ObjToken>,
    mig_tok: Option<ObjToken>,
    shared_segno: Option<u32>,
    files: HashMap<usize, RFile>,
    served: u64,
    reloc_seen: u64,
    setup_cycles: u64,
    meter_base: MeterSnapshot,
    edge_base: EdgeSet,
}

struct KSessionF {
    home: usize,
    pid: ProcessId,
    ns: NameSpace,
    linker: UserLinker,
    own_local: Option<(u32, ObjToken)>,
    own_created: bool,
    migrated: bool,
    shared_segno: Option<u32>,
    pages: Vec<u64>,
}

struct KernelFleet {
    spec: FleetSpec,
    cap: usize,
    homes: Vec<usize>,
    ms: Vec<KMachine>,
    sessions: Vec<Option<KSessionF>>,
    wire: Wire,
    front: VecDeque<usize>,
    live: usize,
    last_active: usize,
    remote_ops: u64,
    migrations: u64,
    failures: Vec<String>,
}

fn kstatus(e: &mx_kernel::KernelError) -> u8 {
    match klabel(e) {
        "quota" => ST_QUOTA,
        "full" => ST_FULL,
        _ => ST_ERR,
    }
}

fn setup_kernel_fleet(
    spec: &FleetSpec,
    wire_policy: Option<Box<dyn SchedulePolicy>>,
) -> KernelFleet {
    let base = spec.base();
    let homes = spec.homes();
    let mut ms = Vec::with_capacity(spec.machines);
    for m in 0..spec.machines {
        let mut cfg = base.kernel_config();
        // Room for the resident driver plus every session the front can
        // concentrate on one machine — admission pressure lives at the
        // front, never in a member's process table.
        cfg.max_processes = 32;
        if spec.migratory && m != 0 {
            // Small primary packs: growth fills them, forcing full-pack
            // relocation and then migration to the store.
            cfg.records_per_pack = 12;
            cfg.toc_slots_per_pack = 24;
        }
        let mut k = Kernel::boot(cfg);
        if spec.migratory && m != 0 {
            // The relocation target pack, roomy enough that the member
            // never runs entirely out while migrations drain it.
            k.machine.disks.attach(512, 128);
        }
        let mut svc = AnsweringService::new();
        svc.register(&mut k, "drv", UserId(1), "pw", Label::BOTTOM);
        let drv = svc
            .login(&mut k, "drv", "pw", Label::BOTTOM)
            .expect("driver login");
        let ns = NameSpace::new(&mut k, drv);
        let linker = UserLinker::new(drv);
        let root = k.root_token();
        let acl = Acl::owner(UserId(1));

        let mut shard_toks = HashMap::new();
        let mut mig_tok = None;
        let mut shared_segno = None;
        if m == 0 {
            let lib_tok = k
                .create_entry(drv, root, "lib", acl.clone(), Label::BOTTOM, false)
                .expect("lib");
            let lib_segno = k.initiate(drv, lib_tok).expect("lib initiate");
            let defs = definitions();
            let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
            publish_library(&mut k, drv, lib_segno, &def_refs).expect("publish");

            let shared_tok = k
                .create_entry(drv, root, "shared", acl.clone(), Label::BOTTOM, false)
                .expect("shared");
            let sseg = k.initiate(drv, shared_tok).expect("shared initiate");
            for page in 0..SHARED_PAGES {
                k.write_word(
                    drv,
                    sseg,
                    page * PAGE_WORDS as u32,
                    Word::new(shared_word(page)),
                )
                .expect("shared page");
            }
            shared_segno = Some(sseg);

            // The migration landing zone, capped roomily: it only ever
            // holds files full packs pushed off member machines.
            let mt = k
                .create_entry(drv, root, "mig", acl.clone(), Label::BOTTOM, true)
                .expect("mig dir");
            k.set_quota(drv, mt, 2 * base.sessions as u32 + 64)
                .expect("mig quota");
            mig_tok = Some(mt);
        }
        for j in 0..base.shard_count() {
            if j % spec.machines == m {
                let tok = k
                    .create_entry(
                        drv,
                        root,
                        &format!("s{j}"),
                        acl.clone(),
                        Label::BOTTOM,
                        true,
                    )
                    .expect("shard dir");
                k.set_quota(drv, tok, base.shard_quota_pages())
                    .expect("quota");
                shard_toks.insert(j, tok);
            }
        }
        for (idx, &h) in homes.iter().enumerate() {
            if h == m {
                svc.register(&mut k, &account_name(idx), UserId(1), "pw", Label::BOTTOM);
            }
        }
        let stream = k.demux_attach(FramingSpec::FRONT_END);

        let setup_cycles = k.machine.clock.now();
        let meter_base = k.machine.clock.meter_snapshot();
        let edge_base = k.machine.clock.edge_snapshot();
        let reloc_seen = k.segm.stats.relocations;
        ms.push(KMachine {
            k,
            svc,
            drv,
            ns,
            linker,
            stream,
            shard_toks,
            mig_tok,
            shared_segno,
            files: HashMap::new(),
            served: 0,
            reloc_seen,
            setup_cycles,
            meter_base,
            edge_base,
        });
    }
    KernelFleet {
        spec: *spec,
        cap: (KernelConfig::default().max_processes - 1) as usize,
        homes,
        ms,
        sessions: (0..spec.sessions).map(|_| None).collect(),
        wire: Wire::new(spec.machines, wire_policy, spec.drop_frame),
        front: VecDeque::new(),
        live: 0,
        last_active: 0,
        remote_ops: 0,
        migrations: 0,
        failures: Vec::new(),
    }
}

impl KernelFleet {
    /// Drains the wire: every queued frame is delivered (or dropped by
    /// the planted cheat), requests are serviced as they land, and any
    /// frames the servicing itself enqueues are delivered too.
    fn pump(&mut self) {
        while let Some((dst, frame)) = self.wire.pop() {
            self.deliver(dst, frame);
        }
    }

    fn deliver(&mut self, dst: usize, frame: WireFrame) {
        match frame.kind {
            FrameKind::Directive => {
                // Admission directives are answering-service traffic on
                // both ends of the wire.
                let m = &mut self.ms[dst];
                let cost = m.k.machine.cost;
                let g = m.k.machine.clock.enter(Subsystem::AnsweringService);
                m.k.machine
                    .clock
                    .charge_wire_frame(&cost, frame.bytes.len());
                if let Err(e) = m.k.demux_receive(m.stream, &frame.bytes) {
                    self.failures
                        .push(format!("machine {dst}: directive receive: {e:?}"));
                } else {
                    // The answering service drains its own channel via
                    // the resident entry — kernel-internal traffic does
                    // not cross a user gate.
                    let _ = m.k.demux_read_resident(m.stream, u16::from(CH_DIRECTIVE));
                }
                self.ms[dst].k.machine.clock.exit(g);
            }
            FrameKind::Gossip => {
                let ack = {
                    let m = &mut self.ms[dst];
                    let cost = m.k.machine.cost;
                    m.k.machine
                        .clock
                        .charge_wire_frame(&cost, frame.bytes.len());
                    if let Err(e) = m.k.demux_receive(m.stream, &frame.bytes) {
                        self.failures
                            .push(format!("machine {dst}: gossip receive: {e:?}"));
                    } else {
                        let _ = m.k.demux_read(m.drv, m.stream, u16::from(CH_GOSSIP));
                    }
                    // payload: [ack-wanted, sender]
                    (frame.bytes.get(2) == Some(&1)).then(|| frame.bytes[3] as usize)
                };
                if let Some(src) = ack {
                    let bytes = Wire::frame(CH_GOSSIP, &[0, dst as u8]);
                    let m = &mut self.ms[dst];
                    let cost = m.k.machine.cost;
                    m.k.machine.clock.charge_wire_frame(&cost, bytes.len());
                    self.wire.send(dst, src, FrameKind::Gossip, bytes);
                }
            }
            FrameKind::Data => {
                {
                    let m = &mut self.ms[dst];
                    let cost = m.k.machine.cost;
                    m.k.machine
                        .clock
                        .charge_wire_frame(&cost, frame.bytes.len());
                    if let Err(e) = m.k.demux_receive(m.stream, &frame.bytes) {
                        self.failures
                            .push(format!("machine {dst}: frame receive: {e:?}"));
                        return;
                    }
                }
                let ch = u16::from(frame.bytes[0]);
                if (ch as usize) < self.spec.machines {
                    // A request: the channel is the requester's id.
                    self.service_request(dst, ch);
                }
                // Responses stay buffered for the requester's read.
            }
        }
    }

    /// Serves one buffered request on machine `mi`: read it out of the
    /// kernel (through the gate on a general machine, via the resident
    /// entry on the specialized store), decode, execute, gossip, reply.
    fn service_request(&mut self, mi: usize, ch: u16) {
        let specialized = self.spec.specialized_store && mi == 0;
        let bytes = {
            let m = &mut self.ms[mi];
            let read = if specialized {
                m.k.demux_read_resident(m.stream, ch)
            } else {
                m.k.demux_read(m.drv, m.stream, ch)
            };
            match read {
                Ok(b) => b,
                Err(e) => {
                    self.failures
                        .push(format!("machine {mi}: request read: {e:?}"));
                    return;
                }
            }
        };
        if bytes.len() != REQ_LEN {
            self.failures.push(format!(
                "machine {mi}: mangled request ({} bytes)",
                bytes.len()
            ));
            return;
        }
        {
            let m = &mut self.ms[mi];
            let cost = m.k.machine.cost;
            if specialized {
                let g = m.k.machine.clock.enter(Subsystem::Network);
                m.k.machine.clock.charge_instructions(
                    &cost,
                    RESIDENT_DISPATCH_INSTR,
                    Language::Assembly,
                );
                m.k.machine.clock.exit(g);
            } else {
                m.k.machine
                    .clock
                    .charge_instructions(&cost, CMD_DECODE_INSTR, Language::Pli);
            }
        }
        let req = Req::decode(&bytes);
        let requester = ch as usize;

        let (status, value) = self.execute_op(mi, req);

        // Gossip *before* the response: while the reply is still in
        // flight, the acknowledgment travels the opposite way — two
        // busy links, a real delivery choice point.
        self.ms[mi].served += 1;
        if self.ms[mi].served.is_multiple_of(GOSSIP_EVERY) {
            for o in 0..self.spec.machines {
                if o != mi {
                    let bytes = Wire::frame(CH_GOSSIP, &[1, mi as u8]);
                    let m = &mut self.ms[mi];
                    let cost = m.k.machine.cost;
                    m.k.machine.clock.charge_wire_frame(&cost, bytes.len());
                    self.wire.send(mi, o, FrameKind::Gossip, bytes);
                }
            }
        }

        let mut payload = vec![status];
        payload.extend_from_slice(&value.to_le_bytes());
        let bytes = Wire::frame((CH_RESP_BASE + mi as u16) as u8, &payload);
        let m = &mut self.ms[mi];
        let cost = m.k.machine.cost;
        m.k.machine.clock.charge_wire_frame(&cost, bytes.len());
        self.wire.send(mi, requester, FrameKind::Data, bytes);
    }

    /// One remote operation, executed by machine `mi`'s resident driver.
    /// For `OP_GROW`, the value is 1 when the file exists afterwards —
    /// the requester mirrors that into its `own_created`, which is what
    /// keeps fleet deletion behavior byte-identical to one machine.
    fn execute_op(&mut self, mi: usize, req: Req) -> (u8, u64) {
        let Req {
            op,
            idx,
            shard,
            a,
            b,
        } = req;
        let specialized = self.spec.specialized_store && mi == 0;
        let m = &mut self.ms[mi];
        let k = &mut m.k;
        let acl = Acl::owner(UserId(1));
        match op {
            OP_LINK => match m.linker.link(k, &mut m.ns, ">lib", &symbol(a as usize)) {
                Ok(l) => (ST_OK, u64::from(l.offset)),
                Err(e) => (kstatus(&e), 0),
            },
            OP_RESOLVE_LIB => match m.ns.resolve(k, ">lib") {
                Ok(_) => (ST_OK, 0),
                Err(e) => (kstatus(&e), 0),
            },
            OP_RESOLVE_SHARED => match m.ns.resolve(k, ">shared") {
                Ok(_) => (ST_OK, 0),
                Err(e) => (kstatus(&e), 0),
            },
            OP_RESOLVE_SHARD => match m.ns.resolve(k, &format!(">s{shard}")) {
                Ok(_) => (ST_OK, 0),
                Err(e) => (kstatus(&e), 0),
            },
            OP_READ_SHARED => {
                let Some(seg) = m.shared_segno else {
                    return (ST_ERR, 0);
                };
                let read = if specialized {
                    k.resident_read_word(m.drv, seg, a * PAGE_WORDS as u32)
                } else {
                    k.read_word(m.drv, seg, a * PAGE_WORDS as u32)
                };
                match read {
                    Ok(w) => (ST_OK, w.raw()),
                    Err(e) => (kstatus(&e), 0),
                }
            }
            OP_GROW => {
                if !m.files.contains_key(&idx) {
                    let Some(&ptok) = m.shard_toks.get(&shard) else {
                        return (ST_ERR, 0);
                    };
                    let created = k
                        .create_entry(m.drv, ptok, &file_name(idx), acl, Label::BOTTOM, false)
                        .and_then(|tok| k.initiate(m.drv, tok));
                    match created {
                        Ok(segno) => {
                            m.files.insert(
                                idx,
                                RFile {
                                    parent: ptok,
                                    name: file_name(idx),
                                    segno,
                                },
                            );
                        }
                        Err(e) => return (kstatus(&e), 0),
                    }
                }
                let segno = m.files[&idx].segno;
                match k.write_word(m.drv, segno, a * PAGE_WORDS as u32, Word::new(b)) {
                    Ok(()) => (ST_OK, 1),
                    Err(e) => (kstatus(&e), 1),
                }
            }
            OP_READ_OWN => {
                let Some(segno) = m.files.get(&idx).map(|f| f.segno) else {
                    return (ST_ERR, 0);
                };
                let read = if specialized {
                    k.resident_read_word(m.drv, segno, a * PAGE_WORDS as u32)
                } else {
                    k.read_word(m.drv, segno, a * PAGE_WORDS as u32)
                };
                match read {
                    Ok(w) => (ST_OK, w.raw()),
                    Err(e) => (kstatus(&e), 0),
                }
            }
            OP_DELETE_OWN => {
                let Some(f) = m.files.remove(&idx) else {
                    return (ST_ERR, 0);
                };
                match k.delete_entry(m.drv, f.parent, &f.name) {
                    Ok(()) => (ST_OK, 0),
                    Err(e) => (kstatus(&e), 0),
                }
            }
            OP_MIG_OPEN => {
                if m.files.contains_key(&idx) {
                    return (ST_OK, 0);
                }
                let Some(mt) = m.mig_tok else {
                    return (ST_ERR, 0);
                };
                let created = k
                    .create_entry(m.drv, mt, &file_name(idx), acl, Label::BOTTOM, false)
                    .and_then(|tok| k.initiate(m.drv, tok));
                match created {
                    Ok(segno) => {
                        m.files.insert(
                            idx,
                            RFile {
                                parent: mt,
                                name: file_name(idx),
                                segno,
                            },
                        );
                        (ST_OK, 0)
                    }
                    Err(e) => (kstatus(&e), 0),
                }
            }
            OP_MIG_WRITE => {
                let Some(segno) = m.files.get(&idx).map(|f| f.segno) else {
                    return (ST_ERR, 0);
                };
                match k.write_word(m.drv, segno, a * PAGE_WORDS as u32, Word::new(b)) {
                    Ok(()) => (ST_OK, 0),
                    Err(e) => (kstatus(&e), 0),
                }
            }
            OP_MIG_COMMIT => match k.sync_to_disk() {
                Ok(()) => (ST_OK, 0),
                Err(e) => (kstatus(&e), 0),
            },
            _ => (ST_ERR, 0),
        }
    }

    /// One synchronous RPC: frame the request, put it on the wire,
    /// drain the wire (which services it at the far end), then read the
    /// reply back through this machine's demultiplexer. `None` = the
    /// reply never arrived (a frame was lost).
    fn rpc(&mut self, src: usize, dst: usize, pid: ProcessId, req: Req) -> Option<(u8, u64)> {
        let bytes = Wire::frame(src as u8, &req.encode());
        {
            let m = &mut self.ms[src];
            let cost = m.k.machine.cost;
            m.k.machine.clock.charge_wire_frame(&cost, bytes.len());
        }
        self.wire.send(src, dst, FrameKind::Data, bytes);
        self.remote_ops += 1;
        self.pump();
        let m = &mut self.ms[src];
        match m.k.demux_read(pid, m.stream, CH_RESP_BASE + dst as u16) {
            Ok(bytes) if bytes.len() == RESP_LEN => Some((
                bytes[0],
                u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes")),
            )),
            _ => None,
        }
    }

    /// Remote-or-colocated daemon operation: a session whose file
    /// migrated to its own home machine skips the wire.
    fn daemon_call(
        &mut self,
        target: usize,
        home: usize,
        pid: ProcessId,
        req: Req,
    ) -> Option<(u8, u64)> {
        if target == home {
            Some(self.execute_op(target, req))
        } else {
            self.rpc(home, target, pid, req)
        }
    }

    fn admit_one(&mut self, idx: usize) {
        let home = self.homes[idx];
        if home != 0 {
            // The front answering service directs the home machine to
            // accept the session — one directive frame, charged to the
            // answering service on both ends of the wire.
            let bytes = Wire::frame(CH_DIRECTIVE, &[idx as u8, (idx >> 8) as u8]);
            {
                let m = &mut self.ms[0];
                let cost = m.k.machine.cost;
                let g = m.k.machine.clock.enter(Subsystem::AnsweringService);
                m.k.machine.clock.charge_wire_frame(&cost, bytes.len());
                m.k.machine.clock.exit(g);
            }
            self.wire.send(0, home, FrameKind::Directive, bytes);
            self.pump();
        }
        let m = &mut self.ms[home];
        match m
            .svc
            .login(&mut m.k, &account_name(idx), "pw", Label::BOTTOM)
        {
            Ok(pid) => {
                let ns = NameSpace::new(&mut m.k, pid);
                self.sessions[idx] = Some(KSessionF {
                    home,
                    pid,
                    ns,
                    linker: UserLinker::new(pid),
                    own_local: None,
                    own_created: false,
                    migrated: false,
                    shared_segno: None,
                    pages: Vec::new(),
                });
                self.live += 1;
            }
            Err(e) => self
                .failures
                .push(format!("login u{idx} refused at machine {home}: {e:?}")),
        }
    }

    /// Full-pack relocation watch: when the grow that just ran bumped
    /// the owner machine's relocation counter, the touched session file
    /// is migrated to the store — read back page by page at the source,
    /// shipped over the wire, then deleted locally.
    fn maybe_migrate(&mut self, idx: usize, shard: usize, owner: usize) {
        let reloc = self.ms[owner].k.segm.stats.relocations;
        if reloc <= self.ms[owner].reloc_seen {
            return;
        }
        self.ms[owner].reloc_seen = reloc;
        let (home, migrated, own_created, pages_len, pid) = {
            let Some(s) = self.sessions[idx].as_ref() else {
                return;
            };
            (s.home, s.migrated, s.own_created, s.pages.len(), s.pid)
        };
        if migrated || !own_created || pages_len == 0 {
            return;
        }
        let mut vals = Vec::with_capacity(pages_len);
        for page in 0..pages_len as u32 {
            let read = if owner == home {
                let Some((segno, _)) = self.sessions[idx].as_ref().and_then(|s| s.own_local) else {
                    return;
                };
                self.ms[owner]
                    .k
                    .read_word(pid, segno, page * PAGE_WORDS as u32)
            } else {
                let Some(segno) = self.ms[owner].files.get(&idx).map(|f| f.segno) else {
                    return;
                };
                let drv = self.ms[owner].drv;
                self.ms[owner]
                    .k
                    .read_word(drv, segno, page * PAGE_WORDS as u32)
            };
            match read {
                Ok(w) => vals.push(w.raw()),
                Err(e) => {
                    self.failures
                        .push(format!("migration read u{idx} page {page}: {e:?}"));
                    return;
                }
            }
        }
        let drv = self.ms[owner].drv;
        match self.rpc(owner, 0, drv, Req::new(OP_MIG_OPEN, idx, shard)) {
            Some((ST_OK, _)) => {}
            r => {
                self.failures.push(format!("migration open u{idx}: {r:?}"));
                return;
            }
        }
        for (page, &val) in vals.iter().enumerate() {
            match self.rpc(
                owner,
                0,
                drv,
                Req::new(OP_MIG_WRITE, idx, shard).arg(page as u32).val(val),
            ) {
                Some((ST_OK, _)) => {}
                r => {
                    self.failures
                        .push(format!("migration write u{idx} page {page}: {r:?}"));
                    return;
                }
            }
        }
        match self.rpc(owner, 0, drv, Req::new(OP_MIG_COMMIT, idx, shard)) {
            Some((ST_OK, _)) => {}
            r => {
                self.failures
                    .push(format!("migration commit u{idx}: {r:?}"));
                return;
            }
        }
        // Free the member machine's copy.
        if owner == home {
            let own = self.sessions[idx].as_mut().and_then(|s| s.own_local.take());
            if own.is_some() {
                let ptok = self.ms[owner].shard_toks[&shard];
                if let Err(e) = self.ms[owner].k.delete_entry(pid, ptok, &file_name(idx)) {
                    self.failures
                        .push(format!("migration source delete u{idx}: {e:?}"));
                }
            }
        } else if let Some(f) = self.ms[owner].files.remove(&idx) {
            if let Err(e) = self.ms[owner].k.delete_entry(drv, f.parent, &f.name) {
                self.failures
                    .push(format!("migration source delete u{idx}: {e:?}"));
            }
        }
        if let Some(s) = self.sessions[idx].as_mut() {
            s.migrated = true;
        }
        self.migrations += 1;
    }
}

impl Driver for KernelFleet {
    fn now(&self) -> u64 {
        self.ms.iter().map(|m| m.k.machine.clock.now()).sum()
    }

    fn queued(&self) -> usize {
        self.front.len()
    }

    fn request(&mut self, idx: usize) -> bool {
        if self.live < self.cap {
            self.admit_one(idx);
            true
        } else {
            self.front.push_back(idx);
            false
        }
    }

    fn admit(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        while self.live < self.cap {
            let Some(idx) = self.front.pop_front() else {
                break;
            };
            self.admit_one(idx);
            out.push(idx);
        }
        out
    }

    fn exec(&mut self, idx: usize, shard: usize, action: &Action) -> String {
        let (home, migrated) = {
            let s = self.sessions[idx].as_ref().expect("live session");
            (s.home, s.migrated)
        };
        self.last_active = home;
        let machines = self.spec.machines;
        match *action {
            Action::Link(sym) => {
                if home == 0 {
                    let m = &mut self.ms[0];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    match s.linker.link(&mut m.k, &mut s.ns, ">lib", &symbol(sym)) {
                        Ok(l) => format!("l:{}", l.offset),
                        Err(e) => format!("l:{}", klabel(&e)),
                    }
                } else {
                    let pid = self.sessions[idx].as_ref().expect("live session").pid;
                    let resp =
                        self.rpc(home, 0, pid, Req::new(OP_LINK, idx, shard).arg(sym as u32));
                    value_label("l", resp)
                }
            }
            Action::Resolve(target) => {
                let (dst, op) = match target {
                    ResolveTarget::Lib => (0, OP_RESOLVE_LIB),
                    ResolveTarget::Shared => (0, OP_RESOLVE_SHARED),
                    ResolveTarget::Shard(j) => (j % machines, OP_RESOLVE_SHARD),
                };
                if dst == home {
                    let path = match target {
                        ResolveTarget::Lib => ">lib".to_string(),
                        ResolveTarget::Shared => ">shared".to_string(),
                        ResolveTarget::Shard(j) => format!(">s{j}"),
                    };
                    let m = &mut self.ms[home];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    match s.ns.resolve(&mut m.k, &path) {
                        Ok(_) => "n:ok".to_string(),
                        Err(e) => format!("n:{}", klabel(&e)),
                    }
                } else {
                    let pid = self.sessions[idx].as_ref().expect("live session").pid;
                    let resp = self.rpc(home, dst, pid, Req::new(op, idx, shard));
                    ok_label("n", resp)
                }
            }
            Action::Grow { page, val } => {
                let owner = if migrated { 0 } else { shard % machines };
                let label = if owner == home && !migrated {
                    let m = &mut self.ms[home];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    let mut out = None;
                    if s.own_local.is_none() {
                        match m.shard_toks.get(&shard) {
                            Some(&ptok) => {
                                let created =
                                    m.k.create_entry(
                                        s.pid,
                                        ptok,
                                        &file_name(idx),
                                        Acl::owner(UserId(1)),
                                        Label::BOTTOM,
                                        false,
                                    )
                                    .and_then(|tok| {
                                        m.k.initiate(s.pid, tok).map(|segno| (segno, tok))
                                    });
                                match created {
                                    Ok(pair) => s.own_local = Some(pair),
                                    Err(e) => out = Some(format!("w:{}", klabel(&e))),
                                }
                            }
                            None => out = Some("w:err".to_string()),
                        }
                    }
                    match out {
                        Some(label) => label,
                        None => {
                            let (segno, _) = s.own_local.expect("just created");
                            s.own_created = true;
                            match m.k.write_word(
                                s.pid,
                                segno,
                                page * PAGE_WORDS as u32,
                                Word::new(val),
                            ) {
                                Ok(()) => "w:ok".to_string(),
                                Err(e) => format!("w:{}", klabel(&e)),
                            }
                        }
                    }
                } else {
                    let pid = self.sessions[idx].as_ref().expect("live session").pid;
                    let resp = self.daemon_call(
                        owner,
                        home,
                        pid,
                        Req::new(OP_GROW, idx, shard).arg(page).val(val),
                    );
                    if let Some((_, exists)) = resp {
                        if exists == 1 {
                            self.sessions[idx]
                                .as_mut()
                                .expect("live session")
                                .own_created = true;
                        }
                    }
                    ok_label("w", resp)
                };
                if label == "w:ok" {
                    self.sessions[idx]
                        .as_mut()
                        .expect("live session")
                        .pages
                        .push(val);
                }
                if self.spec.migratory && owner != 0 {
                    self.maybe_migrate(idx, shard, owner);
                }
                label
            }
            Action::ReadOwn { page } => {
                let owner = if migrated { 0 } else { shard % machines };
                if owner == home && !migrated {
                    let m = &mut self.ms[home];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    match s.own_local {
                        Some((segno, _)) => {
                            match m.k.read_word(s.pid, segno, page * PAGE_WORDS as u32) {
                                Ok(w) => format!("r:{}", w.raw()),
                                Err(e) => format!("r:{}", klabel(&e)),
                            }
                        }
                        None => "r:err".to_string(),
                    }
                } else {
                    let pid = self.sessions[idx].as_ref().expect("live session").pid;
                    let resp = self.daemon_call(
                        owner,
                        home,
                        pid,
                        Req::new(OP_READ_OWN, idx, shard).arg(page),
                    );
                    value_label("r", resp)
                }
            }
            Action::ReadShared { page } => {
                if home == 0 {
                    let m = &mut self.ms[0];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    if s.shared_segno.is_none() {
                        match s.ns.initiate(&mut m.k, ">shared") {
                            Ok(segno) => s.shared_segno = Some(segno),
                            Err(e) => return format!("r:{}", klabel(&e)),
                        }
                    }
                    let segno = s.shared_segno.expect("just initiated");
                    match m.k.read_word(s.pid, segno, page * PAGE_WORDS as u32) {
                        Ok(w) => format!("r:{}", w.raw()),
                        Err(e) => format!("r:{}", klabel(&e)),
                    }
                } else {
                    let pid = self.sessions[idx].as_ref().expect("live session").pid;
                    let resp =
                        self.rpc(home, 0, pid, Req::new(OP_READ_SHARED, idx, shard).arg(page));
                    value_label("r", resp)
                }
            }
        }
    }

    fn finish(&mut self, idx: usize, shard: usize, abandon: bool) -> String {
        let (home, pid, migrated, own_created, own_local) = {
            let s = self.sessions[idx].as_ref().expect("live session");
            (s.home, s.pid, s.migrated, s.own_created, s.own_local)
        };
        self.last_active = home;
        let mut label = if abandon { "reap" } else { "out" }.to_string();
        if !abandon && own_created {
            let owner = if migrated {
                0
            } else {
                shard % self.spec.machines
            };
            if owner == home && !migrated {
                if own_local.is_some() {
                    let ptok = self.ms[home].shard_toks[&shard];
                    match self.ms[home].k.delete_entry(pid, ptok, &file_name(idx)) {
                        Ok(()) => {
                            if let Some(s) = self.sessions[idx].as_mut() {
                                s.own_local = None;
                            }
                        }
                        Err(_) => label = "out:err".to_string(),
                    }
                }
            } else {
                match self.daemon_call(owner, home, pid, Req::new(OP_DELETE_OWN, idx, shard)) {
                    Some((ST_OK, _)) => {}
                    Some(_) => label = "out:err".to_string(),
                    None => label = "out:lost".to_string(),
                }
            }
        }
        let m = &mut self.ms[home];
        match m.svc.logout(&mut m.k, pid) {
            Ok(_) => {}
            Err(_) => label = format!("{label}:err"),
        }
        self.sessions[idx] = None;
        self.live -= 1;
        label
    }

    fn schedule(&mut self) {
        self.ms[self.last_active].k.schedule();
    }

    fn housekeep(&mut self) {
        for mi in 0..self.ms.len() {
            if let Err(e) = self.ms[mi].k.sync_to_disk() {
                self.failures
                    .push(format!("machine {mi}: housekeeping sweep: {e:?}"));
            }
        }
    }
}

/// Runs the fleet spec on the kernel design. The optional policy
/// governs only the wire's delivery order ([`ChoicePoint::Wire`]); each
/// machine's internal schedule stays at the baseline FIFO, exactly as
/// in the single-machine engine.
pub fn run_kernel_fleet(
    spec: &FleetSpec,
    wire_policy: Option<Box<dyn SchedulePolicy>>,
) -> FleetRun {
    assert!(spec.machines >= 1, "a fleet needs at least one machine");
    assert!(
        !spec.dedicated_store || spec.machines >= 2,
        "a dedicated store needs at least one member machine"
    );
    let base = spec.base();
    let scripts = base.scripts();
    let mut fleet = setup_kernel_fleet(spec, wire_policy);
    let mut st = EngineState::new();
    storm(&mut fleet, &scripts, &mut st);
    drive_until(&mut fleet, &scripts, &mut st, None);
    fleet.pump();

    let per_machine_cycles: Vec<u64> = fleet
        .ms
        .iter()
        .map(|m| m.k.machine.clock.now() - m.setup_cycles)
        .collect();
    let mut edges = EdgeSet::new();
    let mut violations = Vec::new();
    let mut totals = Vec::new();
    let mut relocations = 0;
    for (i, m) in fleet.ms.iter().enumerate() {
        edges.merge(&m.edge_base.delta(m.k.machine.clock.edge_set()));
        for v in oracle::check_kernel(&m.k) {
            violations.push(format!("machine {i}: {v}"));
        }
        totals.push(disk_totals(&m.k.machine.disks));
        relocations += m.k.segm.stats.relocations;
    }
    violations.extend(fleet_conservation(&totals));
    violations.extend(fleet.failures.iter().cloned());
    let store = &fleet.ms[0];
    FleetRun {
        design: "kernel",
        machines: spec.machines,
        cycles: per_machine_cycles.iter().sum(),
        wall_cycles: per_machine_cycles.iter().copied().max().unwrap_or(0),
        setup_cycles: fleet.ms.iter().map(|m| m.setup_cycles).sum(),
        ops: st.ops,
        sessions: spec.sessions,
        abandoned: st.abandoned,
        queued_peak: st.queued_peak,
        parity: st.parity,
        hist: st.hist,
        admitted_order: st.admitted_order,
        frames_sent: fleet.wire.sent,
        frames_delivered: fleet.wire.delivered,
        frames_dropped: fleet.wire.dropped,
        remote_ops: fleet.remote_ops,
        migrations: fleet.migrations,
        relocations,
        store_cycles: per_machine_cycles[0],
        store_meter: store
            .meter_base
            .delta(&store.k.machine.clock.meter_snapshot()),
        per_machine_cycles,
        edges,
        violations,
    }
}

// ------------------------------------------------------ legacy fleet --

/// A daemon-held handle to a file served on behalf of a remote session,
/// old-supervisor flavor: pathnames, not tokens.
struct LFile {
    path: String,
    segno: u32,
}

struct LMachine {
    sup: Supervisor,
    drv: LProcessId,
    net: NetworkId,
    shared_segno: Option<u32>,
    files: HashMap<usize, LFile>,
    served: u64,
    reloc_seen: u64,
    setup_cycles: u64,
    meter_base: MeterSnapshot,
    edge_base: EdgeSet,
}

struct LSessionF {
    home: usize,
    pid: LProcessId,
    own_segno: Option<u32>,
    own_created: bool,
    migrated: bool,
    shared_segno: Option<u32>,
    pages: Vec<u64>,
}

struct LegacyFleet {
    spec: FleetSpec,
    cap: usize,
    homes: Vec<usize>,
    ms: Vec<LMachine>,
    sessions: Vec<Option<LSessionF>>,
    wire: Wire,
    front: VecDeque<usize>,
    live: usize,
    last_active: usize,
    remote_ops: u64,
    migrations: u64,
    failures: Vec<String>,
}

fn lstatus(e: &LegacyError) -> u8 {
    match llabel(e) {
        "quota" => ST_QUOTA,
        "full" => ST_FULL,
        _ => ST_ERR,
    }
}

fn setup_legacy_fleet(
    spec: &FleetSpec,
    wire_policy: Option<Box<dyn SchedulePolicy>>,
) -> LegacyFleet {
    let base = spec.base();
    let homes = spec.homes();
    let mut ms = Vec::with_capacity(spec.machines);
    for m in 0..spec.machines {
        let mut cfg = base.supervisor_config();
        cfg.max_processes = 32;
        if spec.migratory && m != 0 {
            cfg.records_per_pack = 12;
            cfg.toc_slots_per_pack = 24;
        }
        let mut sup = Supervisor::boot(cfg);
        if spec.migratory && m != 0 {
            sup.machine.disks.attach(512, 128);
        }
        sup.register_user("drv", LUserId(1), "pw", Label::BOTTOM);
        let drv = sup.login("drv", "pw", Label::BOTTOM).expect("driver login");
        let root = sup.root();
        let acl = LAcl::owner(LUserId(1));

        let mut shared_segno = None;
        if m == 0 {
            let lib_uid = sup
                .create_segment_in(root, "lib", acl.clone(), Label::BOTTOM)
                .expect("lib");
            let defs = definitions();
            let def_refs: Vec<(&str, u32)> = defs.iter().map(|(s, o)| (s.as_str(), *o)).collect();
            sup.publish_definitions(lib_uid, &def_refs);
            let lib_segno = sup.initiate(drv, "lib").expect("lib initiate");
            sup.user_write(drv, lib_segno, 0, Word::new(def_refs.len() as u64))
                .expect("lib page");

            sup.create_segment_in(root, "shared", acl.clone(), Label::BOTTOM)
                .expect("shared");
            let sseg = sup.initiate(drv, "shared").expect("shared initiate");
            for page in 0..SHARED_PAGES {
                sup.user_write(
                    drv,
                    sseg,
                    page * PAGE_WORDS as u32,
                    Word::new(shared_word(page)),
                )
                .expect("shared page");
            }
            shared_segno = Some(sseg);

            sup.create_directory_in(root, "mig", acl.clone(), Label::BOTTOM)
                .expect("mig dir");
            sup.set_quota_directory(drv, "mig", 2 * base.sessions as u32 + 64)
                .expect("mig quota");
        }
        for j in 0..base.shard_count() {
            if j % spec.machines == m {
                sup.create_directory_in(root, &format!("s{j}"), acl.clone(), Label::BOTTOM)
                    .expect("shard dir");
                sup.set_quota_directory(drv, &format!("s{j}"), base.shard_quota_pages())
                    .expect("quota");
            }
        }
        for (idx, &h) in homes.iter().enumerate() {
            if h == m {
                sup.register_user(&account_name(idx), LUserId(1), "pw", Label::BOTTOM);
            }
        }
        let net = sup.attach_network(NetworkKind::FrontEnd);

        let setup_cycles = sup.machine.clock.now();
        let meter_base = sup.machine.clock.meter_snapshot();
        let edge_base = sup.machine.clock.edge_snapshot();
        let reloc_seen = sup.stats.relocations;
        ms.push(LMachine {
            sup,
            drv,
            net,
            shared_segno,
            files: HashMap::new(),
            served: 0,
            reloc_seen,
            setup_cycles,
            meter_base,
            edge_base,
        });
    }
    LegacyFleet {
        spec: *spec,
        cap: (SupervisorConfig::default().max_processes - 1) as usize,
        homes,
        ms,
        sessions: (0..spec.sessions).map(|_| None).collect(),
        wire: Wire::new(spec.machines, wire_policy, spec.drop_frame),
        front: VecDeque::new(),
        live: 0,
        last_active: 0,
        remote_ops: 0,
        migrations: 0,
        failures: Vec::new(),
    }
}

impl LegacyFleet {
    /// See [`KernelFleet::pump`].
    fn pump(&mut self) {
        while let Some((dst, frame)) = self.wire.pop() {
            self.deliver(dst, frame);
        }
    }

    fn deliver(&mut self, dst: usize, frame: WireFrame) {
        match frame.kind {
            FrameKind::Directive => {
                let m = &mut self.ms[dst];
                let m_net = m.net;
                let cost = m.sup.machine.cost;
                let g = m.sup.machine.clock.enter(Subsystem::AnsweringService);
                m.sup
                    .machine
                    .clock
                    .charge_wire_frame(&cost, frame.bytes.len());
                if let Err(e) = m.sup.network_receive(m.net, &frame.bytes) {
                    self.failures
                        .push(format!("machine {dst}: directive receive: {e:?}"));
                }
                self.ms[dst].sup.machine.clock.exit(g);
                // The old design has no resident read: even its own
                // answering service drains the channel through the
                // ordinary user gate, from the ambient domain.
                let _ = self.ms[dst]
                    .sup
                    .network_read_channel(m_net, u16::from(CH_DIRECTIVE));
            }
            FrameKind::Gossip => {
                let ack = {
                    let m = &mut self.ms[dst];
                    let cost = m.sup.machine.cost;
                    m.sup
                        .machine
                        .clock
                        .charge_wire_frame(&cost, frame.bytes.len());
                    if let Err(e) = m.sup.network_receive(m.net, &frame.bytes) {
                        self.failures
                            .push(format!("machine {dst}: gossip receive: {e:?}"));
                    } else {
                        let _ = m.sup.network_read_channel(m.net, u16::from(CH_GOSSIP));
                    }
                    (frame.bytes.get(2) == Some(&1)).then(|| frame.bytes[3] as usize)
                };
                if let Some(src) = ack {
                    let bytes = Wire::frame(CH_GOSSIP, &[0, dst as u8]);
                    let m = &mut self.ms[dst];
                    let cost = m.sup.machine.cost;
                    m.sup.machine.clock.charge_wire_frame(&cost, bytes.len());
                    self.wire.send(dst, src, FrameKind::Gossip, bytes);
                }
            }
            FrameKind::Data => {
                {
                    let m = &mut self.ms[dst];
                    let cost = m.sup.machine.cost;
                    m.sup
                        .machine
                        .clock
                        .charge_wire_frame(&cost, frame.bytes.len());
                    if let Err(e) = m.sup.network_receive(m.net, &frame.bytes) {
                        self.failures
                            .push(format!("machine {dst}: frame receive: {e:?}"));
                        return;
                    }
                }
                let ch = u16::from(frame.bytes[0]);
                if (ch as usize) < self.spec.machines {
                    self.service_request(dst, ch);
                }
            }
        }
    }

    /// See [`KernelFleet::service_request`]. The old supervisor has no
    /// resident file-store path: every remote request goes through the
    /// gated channel read and the user-domain command layer.
    fn service_request(&mut self, mi: usize, ch: u16) {
        let bytes = {
            let m = &mut self.ms[mi];
            match m.sup.network_read_channel(m.net, ch) {
                Ok(b) => b,
                Err(e) => {
                    self.failures
                        .push(format!("machine {mi}: request read: {e:?}"));
                    return;
                }
            }
        };
        if bytes.len() != REQ_LEN {
            self.failures.push(format!(
                "machine {mi}: mangled request ({} bytes)",
                bytes.len()
            ));
            return;
        }
        {
            let m = &mut self.ms[mi];
            let cost = m.sup.machine.cost;
            m.sup
                .machine
                .clock
                .charge_instructions(&cost, CMD_DECODE_INSTR, Language::Pli);
        }
        let req = Req::decode(&bytes);
        let requester = ch as usize;

        let (status, value) = self.execute_op(mi, req);

        self.ms[mi].served += 1;
        if self.ms[mi].served.is_multiple_of(GOSSIP_EVERY) {
            for o in 0..self.spec.machines {
                if o != mi {
                    let bytes = Wire::frame(CH_GOSSIP, &[1, mi as u8]);
                    let m = &mut self.ms[mi];
                    let cost = m.sup.machine.cost;
                    m.sup.machine.clock.charge_wire_frame(&cost, bytes.len());
                    self.wire.send(mi, o, FrameKind::Gossip, bytes);
                }
            }
        }

        let mut payload = vec![status];
        payload.extend_from_slice(&value.to_le_bytes());
        let bytes = Wire::frame((CH_RESP_BASE + mi as u16) as u8, &payload);
        let m = &mut self.ms[mi];
        let cost = m.sup.machine.cost;
        m.sup.machine.clock.charge_wire_frame(&cost, bytes.len());
        self.wire.send(mi, requester, FrameKind::Data, bytes);
    }

    /// See [`KernelFleet::execute_op`].
    fn execute_op(&mut self, mi: usize, req: Req) -> (u8, u64) {
        let Req {
            op,
            idx,
            shard,
            a,
            b,
        } = req;
        let m = &mut self.ms[mi];
        let sup = &mut m.sup;
        let acl = LAcl::owner(LUserId(1));
        match op {
            OP_LINK => match sup.link(m.drv, "lib", &symbol(a as usize)) {
                Ok(l) => (ST_OK, u64::from(l.offset)),
                Err(e) => (lstatus(&e), 0),
            },
            OP_RESOLVE_LIB => match sup.resolve(m.drv, "lib", AccessRight::Read) {
                Ok(_) => (ST_OK, 0),
                Err(e) => (lstatus(&e), 0),
            },
            OP_RESOLVE_SHARED => match sup.resolve(m.drv, "shared", AccessRight::Read) {
                Ok(_) => (ST_OK, 0),
                Err(e) => (lstatus(&e), 0),
            },
            OP_RESOLVE_SHARD => match sup.resolve(m.drv, &format!("s{shard}"), AccessRight::Read) {
                Ok(_) => (ST_OK, 0),
                Err(e) => (lstatus(&e), 0),
            },
            OP_READ_SHARED => {
                let Some(seg) = m.shared_segno else {
                    return (ST_ERR, 0);
                };
                match sup.user_read(m.drv, seg, a * PAGE_WORDS as u32) {
                    Ok(w) => (ST_OK, w.raw()),
                    Err(e) => (lstatus(&e), 0),
                }
            }
            OP_GROW => {
                if !m.files.contains_key(&idx) {
                    let shard_uid =
                        match sup.resolve(m.drv, &format!("s{shard}"), AccessRight::Read) {
                            Ok((uid, _)) => uid,
                            Err(e) => return (lstatus(&e), 0),
                        };
                    let path = format!("s{shard}>{}", file_name(idx));
                    let created = sup
                        .create_segment_in(shard_uid, &file_name(idx), acl, Label::BOTTOM)
                        .and_then(|_| sup.initiate(m.drv, &path));
                    match created {
                        Ok(segno) => {
                            m.files.insert(idx, LFile { path, segno });
                        }
                        Err(e) => return (lstatus(&e), 0),
                    }
                }
                let segno = m.files[&idx].segno;
                match sup.user_write(m.drv, segno, a * PAGE_WORDS as u32, Word::new(b)) {
                    Ok(()) => (ST_OK, 1),
                    Err(e) => (lstatus(&e), 1),
                }
            }
            OP_READ_OWN => {
                let Some(segno) = m.files.get(&idx).map(|f| f.segno) else {
                    return (ST_ERR, 0);
                };
                match sup.user_read(m.drv, segno, a * PAGE_WORDS as u32) {
                    Ok(w) => (ST_OK, w.raw()),
                    Err(e) => (lstatus(&e), 0),
                }
            }
            OP_DELETE_OWN => {
                let Some(f) = m.files.remove(&idx) else {
                    return (ST_ERR, 0);
                };
                match sup.delete(m.drv, &f.path) {
                    Ok(()) => (ST_OK, 0),
                    Err(e) => (lstatus(&e), 0),
                }
            }
            OP_MIG_OPEN => {
                if m.files.contains_key(&idx) {
                    return (ST_OK, 0);
                }
                let mig_uid = match sup.resolve(m.drv, "mig", AccessRight::Read) {
                    Ok((uid, _)) => uid,
                    Err(e) => return (lstatus(&e), 0),
                };
                let path = format!("mig>{}", file_name(idx));
                let created = sup
                    .create_segment_in(mig_uid, &file_name(idx), acl, Label::BOTTOM)
                    .and_then(|_| sup.initiate(m.drv, &path));
                match created {
                    Ok(segno) => {
                        m.files.insert(idx, LFile { path, segno });
                        (ST_OK, 0)
                    }
                    Err(e) => (lstatus(&e), 0),
                }
            }
            OP_MIG_WRITE => {
                let Some(segno) = m.files.get(&idx).map(|f| f.segno) else {
                    return (ST_ERR, 0);
                };
                match sup.user_write(m.drv, segno, a * PAGE_WORDS as u32, Word::new(b)) {
                    Ok(()) => (ST_OK, 0),
                    Err(e) => (lstatus(&e), 0),
                }
            }
            OP_MIG_COMMIT => match sup.sync_to_disk() {
                Ok(()) => (ST_OK, 0),
                Err(e) => (lstatus(&e), 0),
            },
            _ => (ST_ERR, 0),
        }
    }

    /// See [`KernelFleet::rpc`].
    fn rpc(&mut self, src: usize, dst: usize, req: Req) -> Option<(u8, u64)> {
        let bytes = Wire::frame(src as u8, &req.encode());
        {
            let m = &mut self.ms[src];
            let cost = m.sup.machine.cost;
            m.sup.machine.clock.charge_wire_frame(&cost, bytes.len());
        }
        self.wire.send(src, dst, FrameKind::Data, bytes);
        self.remote_ops += 1;
        self.pump();
        let m = &mut self.ms[src];
        match m.sup.network_read_channel(m.net, CH_RESP_BASE + dst as u16) {
            Ok(bytes) if bytes.len() == RESP_LEN => Some((
                bytes[0],
                u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes")),
            )),
            _ => None,
        }
    }

    /// See [`KernelFleet::daemon_call`].
    fn daemon_call(&mut self, target: usize, home: usize, req: Req) -> Option<(u8, u64)> {
        if target == home {
            Some(self.execute_op(target, req))
        } else {
            self.rpc(home, target, req)
        }
    }

    fn admit_one(&mut self, idx: usize) {
        let home = self.homes[idx];
        if home != 0 {
            let bytes = Wire::frame(CH_DIRECTIVE, &[idx as u8, (idx >> 8) as u8]);
            {
                let m = &mut self.ms[0];
                let cost = m.sup.machine.cost;
                let g = m.sup.machine.clock.enter(Subsystem::AnsweringService);
                m.sup.machine.clock.charge_wire_frame(&cost, bytes.len());
                m.sup.machine.clock.exit(g);
            }
            self.wire.send(0, home, FrameKind::Directive, bytes);
            self.pump();
        }
        let m = &mut self.ms[home];
        match m.sup.login(&account_name(idx), "pw", Label::BOTTOM) {
            Ok(pid) => {
                self.sessions[idx] = Some(LSessionF {
                    home,
                    pid,
                    own_segno: None,
                    own_created: false,
                    migrated: false,
                    shared_segno: None,
                    pages: Vec::new(),
                });
                self.live += 1;
            }
            Err(e) => self
                .failures
                .push(format!("login u{idx} refused at machine {home}: {e:?}")),
        }
    }

    /// See [`KernelFleet::maybe_migrate`].
    fn maybe_migrate(&mut self, idx: usize, shard: usize, owner: usize) {
        let reloc = self.ms[owner].sup.stats.relocations;
        if reloc <= self.ms[owner].reloc_seen {
            return;
        }
        self.ms[owner].reloc_seen = reloc;
        let (home, migrated, own_created, pages_len, pid) = {
            let Some(s) = self.sessions[idx].as_ref() else {
                return;
            };
            (s.home, s.migrated, s.own_created, s.pages.len(), s.pid)
        };
        if migrated || !own_created || pages_len == 0 {
            return;
        }
        let mut vals = Vec::with_capacity(pages_len);
        for page in 0..pages_len as u32 {
            let read = if owner == home {
                let Some(segno) = self.sessions[idx].as_ref().and_then(|s| s.own_segno) else {
                    return;
                };
                self.ms[owner]
                    .sup
                    .user_read(pid, segno, page * PAGE_WORDS as u32)
            } else {
                let Some(segno) = self.ms[owner].files.get(&idx).map(|f| f.segno) else {
                    return;
                };
                let drv = self.ms[owner].drv;
                self.ms[owner]
                    .sup
                    .user_read(drv, segno, page * PAGE_WORDS as u32)
            };
            match read {
                Ok(w) => vals.push(w.raw()),
                Err(e) => {
                    self.failures
                        .push(format!("migration read u{idx} page {page}: {e:?}"));
                    return;
                }
            }
        }
        match self.rpc(owner, 0, Req::new(OP_MIG_OPEN, idx, shard)) {
            Some((ST_OK, _)) => {}
            r => {
                self.failures.push(format!("migration open u{idx}: {r:?}"));
                return;
            }
        }
        for (page, &val) in vals.iter().enumerate() {
            match self.rpc(
                owner,
                0,
                Req::new(OP_MIG_WRITE, idx, shard).arg(page as u32).val(val),
            ) {
                Some((ST_OK, _)) => {}
                r => {
                    self.failures
                        .push(format!("migration write u{idx} page {page}: {r:?}"));
                    return;
                }
            }
        }
        match self.rpc(owner, 0, Req::new(OP_MIG_COMMIT, idx, shard)) {
            Some((ST_OK, _)) => {}
            r => {
                self.failures
                    .push(format!("migration commit u{idx}: {r:?}"));
                return;
            }
        }
        if owner == home {
            let own = self.sessions[idx].as_mut().and_then(|s| s.own_segno.take());
            if own.is_some() {
                let path = format!("s{shard}>{}", file_name(idx));
                if let Err(e) = self.ms[owner].sup.delete(pid, &path) {
                    self.failures
                        .push(format!("migration source delete u{idx}: {e:?}"));
                }
            }
        } else if let Some(f) = self.ms[owner].files.remove(&idx) {
            let drv = self.ms[owner].drv;
            if let Err(e) = self.ms[owner].sup.delete(drv, &f.path) {
                self.failures
                    .push(format!("migration source delete u{idx}: {e:?}"));
            }
        }
        if let Some(s) = self.sessions[idx].as_mut() {
            s.migrated = true;
        }
        self.migrations += 1;
    }
}

impl Driver for LegacyFleet {
    fn now(&self) -> u64 {
        self.ms.iter().map(|m| m.sup.machine.clock.now()).sum()
    }

    fn queued(&self) -> usize {
        self.front.len()
    }

    fn request(&mut self, idx: usize) -> bool {
        if self.live < self.cap {
            self.admit_one(idx);
            true
        } else {
            self.front.push_back(idx);
            false
        }
    }

    fn admit(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        while self.live < self.cap {
            let Some(idx) = self.front.pop_front() else {
                break;
            };
            self.admit_one(idx);
            out.push(idx);
        }
        out
    }

    fn exec(&mut self, idx: usize, shard: usize, action: &Action) -> String {
        let (home, migrated) = {
            let s = self.sessions[idx].as_ref().expect("live session");
            (s.home, s.migrated)
        };
        self.last_active = home;
        let machines = self.spec.machines;
        match *action {
            Action::Link(sym) => {
                if home == 0 {
                    let m = &mut self.ms[0];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    match m.sup.link(s.pid, "lib", &symbol(sym)) {
                        Ok(l) => format!("l:{}", l.offset),
                        Err(e) => format!("l:{}", llabel(&e)),
                    }
                } else {
                    let resp = self.rpc(home, 0, Req::new(OP_LINK, idx, shard).arg(sym as u32));
                    value_label("l", resp)
                }
            }
            Action::Resolve(target) => {
                let (dst, op) = match target {
                    ResolveTarget::Lib => (0, OP_RESOLVE_LIB),
                    ResolveTarget::Shared => (0, OP_RESOLVE_SHARED),
                    ResolveTarget::Shard(j) => (j % machines, OP_RESOLVE_SHARD),
                };
                if dst == home {
                    let path = match target {
                        ResolveTarget::Lib => "lib".to_string(),
                        ResolveTarget::Shared => "shared".to_string(),
                        ResolveTarget::Shard(j) => format!("s{j}"),
                    };
                    let m = &mut self.ms[home];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    match m.sup.resolve(s.pid, &path, AccessRight::Read) {
                        Ok(_) => "n:ok".to_string(),
                        Err(e) => format!("n:{}", llabel(&e)),
                    }
                } else {
                    let resp = self.rpc(home, dst, Req::new(op, idx, shard));
                    ok_label("n", resp)
                }
            }
            Action::Grow { page, val } => {
                let owner = if migrated { 0 } else { shard % machines };
                let label = if owner == home && !migrated {
                    let m = &mut self.ms[home];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    let mut out = None;
                    if s.own_segno.is_none() {
                        let created = m
                            .sup
                            .resolve(s.pid, &format!("s{shard}"), AccessRight::Read)
                            .and_then(|(shard_uid, _)| {
                                m.sup.create_segment_in(
                                    shard_uid,
                                    &file_name(idx),
                                    LAcl::owner(LUserId(1)),
                                    Label::BOTTOM,
                                )
                            })
                            .and_then(|_| {
                                m.sup
                                    .initiate(s.pid, &format!("s{shard}>{}", file_name(idx)))
                            });
                        match created {
                            Ok(segno) => s.own_segno = Some(segno),
                            Err(e) => out = Some(format!("w:{}", llabel(&e))),
                        }
                    }
                    match out {
                        Some(label) => label,
                        None => {
                            let segno = s.own_segno.expect("just created");
                            s.own_created = true;
                            match m.sup.user_write(
                                s.pid,
                                segno,
                                page * PAGE_WORDS as u32,
                                Word::new(val),
                            ) {
                                Ok(()) => "w:ok".to_string(),
                                Err(e) => format!("w:{}", llabel(&e)),
                            }
                        }
                    }
                } else {
                    let resp = self.daemon_call(
                        owner,
                        home,
                        Req::new(OP_GROW, idx, shard).arg(page).val(val),
                    );
                    if let Some((_, exists)) = resp {
                        if exists == 1 {
                            self.sessions[idx]
                                .as_mut()
                                .expect("live session")
                                .own_created = true;
                        }
                    }
                    ok_label("w", resp)
                };
                if label == "w:ok" {
                    self.sessions[idx]
                        .as_mut()
                        .expect("live session")
                        .pages
                        .push(val);
                }
                if self.spec.migratory && owner != 0 {
                    self.maybe_migrate(idx, shard, owner);
                }
                label
            }
            Action::ReadOwn { page } => {
                let owner = if migrated { 0 } else { shard % machines };
                if owner == home && !migrated {
                    let m = &mut self.ms[home];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    match s.own_segno {
                        Some(segno) => {
                            match m.sup.user_read(s.pid, segno, page * PAGE_WORDS as u32) {
                                Ok(w) => format!("r:{}", w.raw()),
                                Err(e) => format!("r:{}", llabel(&e)),
                            }
                        }
                        None => "r:err".to_string(),
                    }
                } else {
                    let resp =
                        self.daemon_call(owner, home, Req::new(OP_READ_OWN, idx, shard).arg(page));
                    value_label("r", resp)
                }
            }
            Action::ReadShared { page } => {
                if home == 0 {
                    let m = &mut self.ms[0];
                    let s = self.sessions[idx].as_mut().expect("live session");
                    if s.shared_segno.is_none() {
                        match m.sup.initiate(s.pid, "shared") {
                            Ok(segno) => s.shared_segno = Some(segno),
                            Err(e) => return format!("r:{}", llabel(&e)),
                        }
                    }
                    let segno = s.shared_segno.expect("just initiated");
                    match m.sup.user_read(s.pid, segno, page * PAGE_WORDS as u32) {
                        Ok(w) => format!("r:{}", w.raw()),
                        Err(e) => format!("r:{}", llabel(&e)),
                    }
                } else {
                    let resp = self.rpc(home, 0, Req::new(OP_READ_SHARED, idx, shard).arg(page));
                    value_label("r", resp)
                }
            }
        }
    }

    fn finish(&mut self, idx: usize, shard: usize, abandon: bool) -> String {
        let (home, pid, migrated, own_created, own_segno) = {
            let s = self.sessions[idx].as_ref().expect("live session");
            (s.home, s.pid, s.migrated, s.own_created, s.own_segno)
        };
        self.last_active = home;
        let mut label = if abandon { "reap" } else { "out" }.to_string();
        if !abandon && own_created {
            let owner = if migrated {
                0
            } else {
                shard % self.spec.machines
            };
            if owner == home && !migrated {
                if own_segno.is_some() {
                    let path = format!("s{shard}>{}", file_name(idx));
                    match self.ms[home].sup.delete(pid, &path) {
                        Ok(()) => {
                            if let Some(s) = self.sessions[idx].as_mut() {
                                s.own_segno = None;
                            }
                        }
                        Err(_) => label = "out:err".to_string(),
                    }
                }
            } else {
                match self.daemon_call(owner, home, Req::new(OP_DELETE_OWN, idx, shard)) {
                    Some((ST_OK, _)) => {}
                    Some(_) => label = "out:err".to_string(),
                    None => label = "out:lost".to_string(),
                }
            }
        }
        let m = &mut self.ms[home];
        match m.sup.logout(&account_name(idx), pid) {
            Ok(_) => {}
            Err(_) => label = format!("{label}:err"),
        }
        self.sessions[idx] = None;
        self.live -= 1;
        label
    }

    fn schedule(&mut self) {
        self.ms[self.last_active].sup.dispatch();
    }

    fn housekeep(&mut self) {
        for mi in 0..self.ms.len() {
            if let Err(e) = self.ms[mi].sup.sync_to_disk() {
                self.failures
                    .push(format!("machine {mi}: housekeeping sweep: {e:?}"));
            }
        }
    }
}

/// Runs the fleet spec on the 1974 supervisor design. The
/// `specialized_store` flag is ignored: the old design has no resident
/// file-store configuration to specialize into — every remote request
/// pays the gated read and the user-domain command decode.
pub fn run_legacy_fleet(
    spec: &FleetSpec,
    wire_policy: Option<Box<dyn SchedulePolicy>>,
) -> FleetRun {
    assert!(spec.machines >= 1, "a fleet needs at least one machine");
    assert!(
        !spec.dedicated_store || spec.machines >= 2,
        "a dedicated store needs at least one member machine"
    );
    let base = spec.base();
    let scripts = base.scripts();
    let mut fleet = setup_legacy_fleet(spec, wire_policy);
    let mut st = EngineState::new();
    storm(&mut fleet, &scripts, &mut st);
    drive_until(&mut fleet, &scripts, &mut st, None);
    fleet.pump();

    let per_machine_cycles: Vec<u64> = fleet
        .ms
        .iter()
        .map(|m| m.sup.machine.clock.now() - m.setup_cycles)
        .collect();
    let mut edges = EdgeSet::new();
    let mut violations = Vec::new();
    let mut totals = Vec::new();
    let mut relocations = 0;
    for (i, m) in fleet.ms.iter().enumerate() {
        edges.merge(&m.edge_base.delta(m.sup.machine.clock.edge_set()));
        for v in oracle::check_legacy(&m.sup) {
            violations.push(format!("machine {i}: {v}"));
        }
        totals.push(disk_totals(&m.sup.machine.disks));
        relocations += m.sup.stats.relocations;
    }
    violations.extend(fleet_conservation(&totals));
    violations.extend(fleet.failures.iter().cloned());
    let store = &fleet.ms[0];
    FleetRun {
        design: "legacy",
        machines: spec.machines,
        cycles: per_machine_cycles.iter().sum(),
        wall_cycles: per_machine_cycles.iter().copied().max().unwrap_or(0),
        setup_cycles: fleet.ms.iter().map(|m| m.setup_cycles).sum(),
        ops: st.ops,
        sessions: spec.sessions,
        abandoned: st.abandoned,
        queued_peak: st.queued_peak,
        parity: st.parity,
        hist: st.hist,
        admitted_order: st.admitted_order,
        frames_sent: fleet.wire.sent,
        frames_delivered: fleet.wire.delivered,
        frames_dropped: fleet.wire.dropped,
        remote_ops: fleet.remote_ops,
        migrations: fleet.migrations,
        relocations,
        store_cycles: per_machine_cycles[0],
        store_meter: store
            .meter_base
            .delta(&store.sup.machine.clock.meter_snapshot()),
        per_machine_cycles,
        edges,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_kernel_load, run_legacy_load};

    #[test]
    fn fleet_of_one_is_the_single_machine_run() {
        let spec = FleetSpec::new(1, 8, 11);
        let fleet = run_kernel_fleet(&spec, None);
        let single = run_kernel_load(&spec.base(), None);
        assert_eq!(fleet.check_against(&single), Vec::<String>::new());
        assert_eq!(fleet.frames_sent, 0, "one machine never touches the wire");
        assert_eq!(fleet.remote_ops, 0);
    }

    #[test]
    fn kernel_fleet_of_two_matches_single_machine() {
        let spec = FleetSpec::new(2, 10, 23);
        let fleet = run_kernel_fleet(&spec, None);
        let single = run_kernel_load(&spec.base(), None);
        assert_eq!(fleet.check_against(&single), Vec::<String>::new());
        assert!(fleet.remote_ops > 0, "homes must split across machines");
        assert!(fleet.frames_delivered > 0);
        assert_eq!(fleet.frames_dropped, 0);
    }

    #[test]
    fn legacy_fleet_of_two_matches_single_machine() {
        let spec = FleetSpec::new(2, 10, 23);
        let fleet = run_legacy_fleet(&spec, None);
        let single = run_legacy_load(&spec.base());
        assert_eq!(fleet.check_against(&single), Vec::<String>::new());
        assert!(fleet.remote_ops > 0);
    }

    #[test]
    fn fleet_reruns_are_byte_identical() {
        let spec = FleetSpec::new(3, 9, 77);
        let a = run_kernel_fleet(&spec, None);
        let b = run_kernel_fleet(&spec, None);
        assert_eq!(a.parity, b.parity);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.per_machine_cycles, b.per_machine_cycles);
    }

    #[test]
    fn planted_frame_drop_is_caught() {
        let mut spec = FleetSpec::new(2, 10, 23);
        let single = run_kernel_load(&spec.base(), None);
        spec.drop_frame = Some(3);
        let cheat = run_kernel_fleet(&spec, None);
        assert_eq!(cheat.frames_dropped, 1);
        assert!(
            !cheat.check_against(&single).is_empty(),
            "a lost wire frame must surface as a parity or oracle violation"
        );
    }

    #[test]
    fn specialized_store_serves_cheaper_than_general() {
        let mut spec = FleetSpec::new(2, 12, 31);
        spec.dedicated_store = true;
        let general = run_kernel_fleet(&spec, None);
        spec.specialized_store = true;
        let special = run_kernel_fleet(&spec, None);
        let single = run_kernel_load(&spec.base(), None);
        assert_eq!(general.check_against(&single), Vec::<String>::new());
        assert_eq!(special.check_against(&single), Vec::<String>::new());
        assert_eq!(general.parity, special.parity);
        assert!(
            special.store_cycles < general.store_cycles,
            "resident dispatch must undercut the command layer: {} vs {}",
            special.store_cycles,
            general.store_cycles
        );
    }

    #[test]
    fn migration_keeps_the_stream_and_the_records() {
        let mut spec = FleetSpec::new(2, 12, 5);
        spec.migratory = true;
        let fleet = run_kernel_fleet(&spec, None);
        let single = run_kernel_load(&spec.base(), None);
        assert_eq!(fleet.check_against(&single), Vec::<String>::new());
        assert!(fleet.relocations > 0, "small packs must force relocation");
        assert!(fleet.migrations > 0, "relocation must trigger migration");
    }
}
