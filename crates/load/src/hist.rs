//! A deterministic power-of-two latency histogram.
//!
//! Per-operation latencies are simulated-cycle deltas, so exact values
//! are already deterministic; the histogram exists to report stable
//! percentiles without storing every sample. Bucket `b` holds deltas
//! whose bit length is `b` (bucket 0 holds only 0), so a reported
//! percentile is the inclusive upper bound `2^b - 1` of the bucket the
//! requested rank lands in. Two edges are pinned by tests: a zero-cycle
//! sample lands in bucket 0 and reports as 0, and the top bucket — which
//! absorbs bit-length-64 deltas alongside bit-length-63 ones — reports
//! `u64::MAX`, since `2^63 - 1` would silently understate any saturated
//! sample.

/// Fixed-bucket histogram of cycle deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    samples: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            samples: 0,
        }
    }

    /// Records one latency sample. A zero delta (an operation retired
    /// without the clock moving) is a legal sample and lands in bucket 0;
    /// deltas of bit length 64 saturate into the top bucket.
    pub fn record(&mut self, delta: u64) {
        let bucket = (u64::BITS - delta.leading_zeros()) as usize;
        self.buckets[bucket.min(63)] += 1;
        self.samples += 1;
    }

    /// Samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds another histogram into this one, bucket by bucket — the
    /// cross-epoch aggregator: per-epoch histograms merge into the
    /// whole-run distribution without re-recording a single sample.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.samples += other.samples;
    }

    /// The inclusive upper bound of the bucket holding the `pct`-th
    /// percentile sample (`pct` in 1..=100). Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        // Rank of the requested sample, 1-based, rounding up.
        let rank = (self.samples * pct).div_ceil(100).max(1);
        let mut seen = 0;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match b {
                    0 => 0,
                    // The top bucket also holds bit-length-64 deltas
                    // (record saturates), so its honest inclusive upper
                    // bound is u64::MAX, not 2^63 - 1.
                    63 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_length_ranges() {
        let mut h = Histogram::new();
        for d in [0, 1, 2, 3, 4, 7, 8] {
            h.record(d);
        }
        assert_eq!(h.samples(), 7);
        // 0 | 1 | 2,3 | 4..7 | 8..15
        assert_eq!(h.percentile(1), 0);
        assert_eq!(h.percentile(100), 15);
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, bound 1023
        }
        assert_eq!(h.percentile(50), 15);
        assert_eq!(h.percentile(90), 15);
        assert_eq!(h.percentile(95), 1023);
        assert_eq!(h.percentile(99), 1023);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(Histogram::new().percentile(99), 0);
    }

    #[test]
    fn zero_cycle_sample_is_a_legal_bucket_zero_entry() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.samples(), 1);
        assert_eq!(h.percentile(1), 0);
        assert_eq!(h.percentile(100), 0);
    }

    #[test]
    fn top_bucket_saturates_and_reports_u64_max() {
        let mut h = Histogram::new();
        // Bit length 63 and bit length 64 share the top bucket; the
        // reported bound must cover both, not understate the saturated
        // sample as 2^63 - 1.
        h.record(1u64 << 62); // bit length 63
        h.record(u64::MAX); // bit length 64, saturates
        assert_eq!(h.percentile(100), u64::MAX);
        assert_eq!(h.percentile(1), u64::MAX, "both live in bucket 63");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for d in [0, 1, 10, 1000, u64::MAX] {
            whole.record(d);
            left.record(d);
        }
        for d in [3, 7, 12_345] {
            whole.record(d);
            right.record(d);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.samples(), 8);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
    }
}
