//! A deterministic power-of-two latency histogram.
//!
//! Per-operation latencies are simulated-cycle deltas, so exact values
//! are already deterministic; the histogram exists to report stable
//! percentiles without storing every sample. Bucket `b` holds deltas
//! whose bit length is `b` (bucket 0 holds only 0), so a reported
//! percentile is the inclusive upper bound `2^b - 1` of the bucket the
//! requested rank lands in. Two edges are pinned by tests: a zero-cycle
//! sample lands in bucket 0 and reports as 0, and the top bucket — which
//! absorbs every delta too wide for the grid — reports `u64::MAX`, since
//! `2^b - 1` would silently understate a saturated sample.
//!
//! Misuse is representable, so it is typed: asking a percentile of an
//! empty histogram, asking for percentile 0 or 101, or merging two
//! histograms built on different bucket grids all return
//! [`HistogramError`] instead of fabricating a number or panicking.

use std::fmt;

/// Typed misuse of a [`Histogram`]: there is no honest number to return,
/// so the caller must decide what "no data" means for its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// A percentile was requested of a histogram with zero samples.
    Empty,
    /// The requested percentile is outside 1..=100.
    BadPercentile { pct: u64 },
    /// `merge` was asked to fold together histograms with different
    /// bucket grids; bucket `b` means a different range in each, so the
    /// sum would be garbage.
    BucketMismatch { left: usize, right: usize },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::Empty => write!(f, "percentile of an empty histogram"),
            HistogramError::BadPercentile { pct } => {
                write!(f, "percentile {pct} outside 1..=100")
            }
            HistogramError::BucketMismatch { left, right } => {
                write!(f, "merge of mismatched bucket grids ({left} vs {right})")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// Fixed-bucket histogram of cycle deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    samples: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram on the full 64-bucket bit-length grid.
    pub fn new() -> Self {
        Self::with_buckets(64)
    }

    /// An empty histogram with `buckets` bit-length buckets (minimum 2:
    /// one for zero, one to saturate into). A coarser grid trades
    /// resolution for footprint; two grids only merge if they match.
    pub fn with_buckets(buckets: usize) -> Self {
        Self {
            buckets: vec![0; buckets.max(2)],
            samples: 0,
        }
    }

    /// Number of buckets in this histogram's grid.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Records one latency sample. A zero delta (an operation retired
    /// without the clock moving) is a legal sample and lands in bucket 0;
    /// deltas too wide for the grid saturate into the top bucket.
    pub fn record(&mut self, delta: u64) {
        let bucket = (u64::BITS - delta.leading_zeros()) as usize;
        let top = self.buckets.len() - 1;
        self.buckets[bucket.min(top)] += 1;
        self.samples += 1;
    }

    /// Samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds another histogram into this one, bucket by bucket — the
    /// cross-epoch and cross-shard aggregator: per-epoch and per-shard
    /// histograms merge into the whole-run distribution without
    /// re-recording a single sample. Grids must match exactly; bucket
    /// `b` covers a different range on different grids.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), HistogramError> {
        if self.buckets.len() != other.buckets.len() {
            return Err(HistogramError::BucketMismatch {
                left: self.buckets.len(),
                right: other.buckets.len(),
            });
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.samples += other.samples;
        Ok(())
    }

    /// The inclusive upper bound of the bucket holding the `pct`-th
    /// percentile sample (`pct` in 1..=100). An empty histogram has no
    /// percentiles and an out-of-range `pct` names no rank; both are
    /// typed errors, not zeros.
    pub fn percentile(&self, pct: u64) -> Result<u64, HistogramError> {
        if !(1..=100).contains(&pct) {
            return Err(HistogramError::BadPercentile { pct });
        }
        if self.samples == 0 {
            return Err(HistogramError::Empty);
        }
        // Rank of the requested sample, 1-based, rounding up.
        let rank = (self.samples * pct).div_ceil(100).max(1);
        let top = self.buckets.len() - 1;
        let mut seen = 0;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Ok(match b {
                    0 => 0,
                    // The top bucket also holds every delta too wide for
                    // the grid (record saturates), so its honest
                    // inclusive upper bound is u64::MAX, not 2^b - 1.
                    b if b == top => u64::MAX,
                    _ => (1u64 << b) - 1,
                });
            }
        }
        Ok(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_length_ranges() {
        let mut h = Histogram::new();
        for d in [0, 1, 2, 3, 4, 7, 8] {
            h.record(d);
        }
        assert_eq!(h.samples(), 7);
        // 0 | 1 | 2,3 | 4..7 | 8..15
        assert_eq!(h.percentile(1), Ok(0));
        assert_eq!(h.percentile(100), Ok(15));
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, bound 1023
        }
        assert_eq!(h.percentile(50), Ok(15));
        assert_eq!(h.percentile(90), Ok(15));
        assert_eq!(h.percentile(95), Ok(1023));
        assert_eq!(h.percentile(99), Ok(1023));
    }

    #[test]
    fn empty_histogram_is_a_typed_error() {
        assert_eq!(Histogram::new().percentile(99), Err(HistogramError::Empty));
    }

    #[test]
    fn out_of_range_percentile_is_a_typed_error() {
        let mut h = Histogram::new();
        h.record(1);
        assert_eq!(
            h.percentile(0),
            Err(HistogramError::BadPercentile { pct: 0 })
        );
        assert_eq!(
            h.percentile(101),
            Err(HistogramError::BadPercentile { pct: 101 })
        );
    }

    #[test]
    fn zero_cycle_sample_is_a_legal_bucket_zero_entry() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.samples(), 1);
        assert_eq!(h.percentile(1), Ok(0));
        assert_eq!(h.percentile(100), Ok(0));
    }

    #[test]
    fn top_bucket_saturates_and_reports_u64_max() {
        let mut h = Histogram::new();
        // Bit length 63 and bit length 64 share the top bucket; the
        // reported bound must cover both, not understate the saturated
        // sample as 2^63 - 1.
        h.record(1u64 << 62); // bit length 63
        h.record(u64::MAX); // bit length 64, saturates
        assert_eq!(h.percentile(100), Ok(u64::MAX));
        assert_eq!(h.percentile(1), Ok(u64::MAX), "both live in bucket 63");
    }

    #[test]
    fn coarse_grid_saturates_early_and_reports_u64_max() {
        let mut h = Histogram::with_buckets(4);
        h.record(100); // bit length 7, saturates into bucket 3
        assert_eq!(h.bucket_count(), 4);
        assert_eq!(h.percentile(100), Ok(u64::MAX));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for d in [0, 1, 10, 1000, u64::MAX] {
            whole.record(d);
            left.record(d);
        }
        for d in [3, 7, 12_345] {
            whole.record(d);
            right.record(d);
        }
        left.merge(&right).expect("matching grids");
        assert_eq!(left, whole);
        assert_eq!(left.samples(), 8);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new()).expect("matching grids");
        assert_eq!(h, before);
    }

    #[test]
    fn merging_mismatched_grids_is_a_typed_error() {
        let mut wide = Histogram::new();
        let narrow = Histogram::with_buckets(8);
        assert_eq!(
            wide.merge(&narrow),
            Err(HistogramError::BucketMismatch { left: 64, right: 8 })
        );
        // The failed merge must not have folded anything in.
        assert_eq!(wide.samples(), 0);
    }
}
