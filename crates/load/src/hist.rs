//! A deterministic power-of-two latency histogram.
//!
//! Per-operation latencies are simulated-cycle deltas, so exact values
//! are already deterministic; the histogram exists to report stable
//! percentiles without storing every sample. Bucket `b` holds deltas
//! whose bit length is `b` (bucket 0 holds only 0), so a reported
//! percentile is the inclusive upper bound `2^b - 1` of the bucket the
//! requested rank lands in.

/// Fixed-bucket histogram of cycle deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    samples: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            samples: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, delta: u64) {
        let bucket = (u64::BITS - delta.leading_zeros()) as usize;
        self.buckets[bucket.min(63)] += 1;
        self.samples += 1;
    }

    /// Samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The inclusive upper bound of the bucket holding the `pct`-th
    /// percentile sample (`pct` in 1..=100). Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        // Rank of the requested sample, 1-based, rounding up.
        let rank = (self.samples * pct).div_ceil(100).max(1);
        let mut seen = 0;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_length_ranges() {
        let mut h = Histogram::new();
        for d in [0, 1, 2, 3, 4, 7, 8] {
            h.record(d);
        }
        assert_eq!(h.samples(), 7);
        // 0 | 1 | 2,3 | 4..7 | 8..15
        assert_eq!(h.percentile(1), 0);
        assert_eq!(h.percentile(100), 15);
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, bound 1023
        }
        assert_eq!(h.percentile(50), 15);
        assert_eq!(h.percentile(90), 15);
        assert_eq!(h.percentile(95), 1023);
        assert_eq!(h.percentile(99), 1023);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(Histogram::new().percentile(99), 0);
    }
}
