//! Session scripts: pure functions of the seed.
//!
//! A script is expanded from `(seed, session index)` before anything
//! executes, so the kernel and the 1974 supervisor are handed the
//! identical logical session stream — the precondition for asserting
//! user-visible parity between the designs at every load level.

use mx_hw::SplitMix64;

/// Pages pre-written into the shared segment every session may read.
pub const SHARED_PAGES: u32 = 6;
/// Symbols published in the shared library segment.
pub const LIB_SYMBOLS: usize = 12;

/// One scripted operation inside a session (between login and logout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// Snap a link to library symbol `i` through the dynamic linker.
    Link(usize),
    /// Resolve a shared path through the name space (0 = the library,
    /// 1 = the shared segment, 2 = the session's own shard directory).
    Resolve(usize),
    /// Append one page to the session's own file, writing `val` — the
    /// create/grow path, including past-quota and full-pack outcomes.
    Grow(u64),
    /// Read back one of the pages this session already grew (the pick
    /// is reduced modulo the pages actually grown at run time).
    ReadBack(u32),
    /// Read a page of the shared segment — the page-fault-heavy path
    /// once the working set outgrows core.
    ReadShared(u32),
}

/// One user's whole session, login to logout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionScript {
    /// The scripted operations, in order.
    pub ops: Vec<SessionOp>,
    /// Which shard directory the session's own file lives in.
    pub shard: usize,
    /// The user walks away without logging out; the answering service
    /// reaps the session, and the session's file is never deleted.
    pub abandon: bool,
}

/// Expands the script for session `idx` of a run seeded with `seed`.
pub fn session_script(seed: u64, idx: usize, shards: usize) -> SessionScript {
    let mut rng = SplitMix64::new(seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let nops = 4 + rng.range_usize(0, 9);
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        ops.push(match rng.range_u32(0, 20) {
            0..=6 => SessionOp::Grow(rng.range_u64(1, 1 << 30)),
            7..=10 => SessionOp::ReadBack(rng.range_u32(0, 1 << 16)),
            11..=13 => SessionOp::ReadShared(rng.range_u32(0, SHARED_PAGES)),
            14..=16 => SessionOp::Link(rng.range_usize(0, LIB_SYMBOLS)),
            _ => SessionOp::Resolve(rng.range_usize(0, 3)),
        });
    }
    SessionScript {
        ops,
        shard: idx % shards,
        abandon: rng.chance(1, 16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_pure_functions_of_the_seed() {
        for idx in 0..64 {
            assert_eq!(session_script(9, idx, 8), session_script(9, idx, 8));
        }
        assert_ne!(session_script(9, 0, 8), session_script(10, 0, 8));
        assert_ne!(session_script(9, 0, 8), session_script(9, 1, 8));
    }

    #[test]
    fn a_population_includes_growth_and_abandonment() {
        let scripts: Vec<_> = (0..256).map(|i| session_script(1, i, 8)).collect();
        assert!(scripts
            .iter()
            .any(|s| s.ops.iter().any(|o| matches!(o, SessionOp::Grow(_)))));
        let abandoned = scripts.iter().filter(|s| s.abandon).count();
        assert!(abandoned > 0, "some users walk away");
        assert!(abandoned < 64, "most log out properly");
    }
}
