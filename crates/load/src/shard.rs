//! The sharded load engine: one population, many machines, one stream.
//!
//! L1 proved the harness correct at N = 1024 and then hit the wall the
//! paper never had: the simulator itself is single-threaded, so scaling
//! the population scales wall-clock superlinearly (every directory scan,
//! quota walk, and admission sweep grows with the co-resident
//! population). The fix is structural, in the spirit of the paper's own
//! program: partition the user population into fixed shards, give each
//! shard its *own* simulated machine pair, and drive shards concurrently
//! on the threaded eventcount/sequencer substrate
//! (`mx_sync::threaded`).
//!
//! Determinism is the design constraint, so the partition is a **pure
//! function of seed and session index** — [`shard_of`] never looks at
//! the worker count. `--shards K` chooses only how many OS threads pull
//! shard jobs off a [`Sequencer`]; the shard *set* (and therefore every
//! shard machine's co-population, every latency sample, every label) is
//! identical at K = 1 and K = 8. Workers advance an [`EventCount`] as
//! shards complete; the merge waits at that epoch-style sync barrier and
//! then folds results **in shard order**, so the merged parity stream,
//! histogram, and per-user samples are byte-identical for any K.
//!
//! The oracle battery runs at both levels: per shard (meter + record
//! conservation and label parity via [`LoadRun::check_pair`] on that
//! shard's machine pair) and post-merge (partition coverage, sample
//! conservation, shard-order stability).

use crate::hist::Histogram;
use crate::run::{run_kernel_load_scripts, run_legacy_load_scripts, LoadRun, LoadSpec};
use crate::script::{session_script, SessionScript};
use mx_hw::meter::EdgeSet;
use mx_hw::rng::SplitMix64;
use mx_sync::{EventCount, Sequencer};
use std::sync::Mutex;
use std::time::Instant;

/// The same odd constant the script generator mixes indices with; the
/// shard hash must be a *different* pure function of (seed, idx) than
/// the script stream, so it folds the constant in once more.
const SHARD_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// What to shard: the global population, the seed, and the granule.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Total users across all shards.
    pub sessions: usize,
    /// Seed every script and the shard hash expand from.
    pub seed: u64,
    /// Target users per shard: the number of shards is
    /// `sessions.div_ceil(shard_users)`, a pure function of N — never of
    /// the worker count.
    pub shard_users: usize,
}

impl ShardSpec {
    /// The default granule: 1024 users per shard, the population L1
    /// certified a single machine pair at.
    pub fn new(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            seed,
            shard_users: 1024,
        }
    }

    /// How many shards this spec partitions into (≥ 1).
    pub fn n_shards(&self) -> usize {
        self.sessions.div_ceil(self.shard_users.max(1)).max(1)
    }

    /// The membership lists, shard by shard, each in ascending global
    /// session index — entirely determined by (seed, sessions,
    /// shard_users).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let n = self.n_shards();
        let mut out = vec![Vec::new(); n];
        for idx in 0..self.sessions {
            out[shard_of(self.seed, idx, n)].push(idx);
        }
        out
    }
}

/// Which shard session `idx` belongs to: a pure hash of (seed, idx)
/// reduced mod `n_shards`. Deliberately *not* the script-stream
/// generator (one extra mix of the same odd constant), so shard
/// membership and scripted behaviour stay statistically independent.
pub fn shard_of(seed: u64, idx: usize, n_shards: usize) -> usize {
    let mut rng = SplitMix64::new(
        seed ^ (idx as u64 + 1)
            .wrapping_mul(SHARD_MIX)
            .wrapping_add(SHARD_MIX),
    );
    (rng.next_u64() % n_shards.max(1) as u64) as usize
}

/// One shard's complete result: its member list, both designs' runs on
/// its private machine pair, and that pair's oracle verdict.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Global session indices this shard ran, ascending.
    pub members: Vec<usize>,
    /// The kernel design's run on this shard's machine.
    pub kernel: LoadRun,
    /// The 1974 supervisor's run on this shard's machine.
    pub legacy: LoadRun,
    /// `LoadRun::check_pair` for this shard — oracle battery plus label
    /// parity, on this shard alone. Empty = clean.
    pub violations: Vec<String>,
}

/// One design's results folded across all shards, in shard order.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMerge {
    /// `"kernel"` or `"legacy"`.
    pub design: &'static str,
    /// Operations retired, summed across shards.
    pub ops: u64,
    /// Simulated load-phase cycles, summed across shard machines.
    pub cycles: u64,
    /// Sessions driven to completion (the full global population).
    pub sessions: usize,
    /// Abandoned-and-reaped sessions, summed.
    pub abandoned: usize,
    /// The user-visible labels: shard 0's stream, then shard 1's, … —
    /// the canonical merged stream that must be identical for every
    /// worker count.
    pub parity: Vec<String>,
    /// All shards' latency histograms folded via [`Histogram::merge`].
    pub hist: Histogram,
    /// `(global session index, that session's latency samples)` in
    /// shard order then member order — sample-for-sample identical for
    /// every worker count.
    pub user_samples: Vec<(usize, Vec<u64>)>,
    /// All shards' observed edge ledgers folded via [`EdgeSet::merge`]
    /// — commutative, so identical for every worker count.
    pub edges: EdgeSet,
}

/// The whole sharded run: per-shard results, per-design merges, the
/// post-merge oracle verdict, and the wall clock the concurrent region
/// actually took.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The partition that was run.
    pub sessions: usize,
    /// Shards in the partition.
    pub n_shards: usize,
    /// OS worker threads that drove them.
    pub workers: usize,
    /// Per-shard results, in shard order.
    pub shards: Vec<ShardRun>,
    /// The kernel design, merged.
    pub kernel: DesignMerge,
    /// The legacy design, merged.
    pub legacy: DesignMerge,
    /// Per-shard violations (prefixed `shard i:`) plus post-merge
    /// partition/conservation checks. Empty = clean.
    pub violations: Vec<String>,
    /// Wall-clock nanoseconds of the concurrent region (shard execution
    /// through the merge barrier).
    pub wall_nanos: u128,
}

impl ShardedRun {
    /// Simulator throughput: operations retired across both designs per
    /// wall-clock second. Both machines of every shard run inside the
    /// measured region, so this is the honest "how fast does the
    /// simulator simulate" figure the bench reports next to simulated
    /// cycles.
    pub fn wall_ops_per_sec(&self) -> f64 {
        let ops = (self.kernel.ops + self.legacy.ops) as f64;
        ops * 1e9 / (self.wall_nanos.max(1) as f64)
    }
}

/// Runs one shard on a fresh machine pair: a private [`LoadSpec`] sized
/// to the member count, with each member's *global* script driven under
/// its local index.
fn run_shard(spec: &ShardSpec, members: &[usize]) -> ShardRun {
    let local = LoadSpec::new(members.len(), spec.seed);
    let scripts: Vec<SessionScript> = members
        .iter()
        .map(|&g| session_script(spec.seed, g, local.shard_count()))
        .collect();
    let kernel = run_kernel_load_scripts(&local, &scripts, None);
    let legacy = run_legacy_load_scripts(&local, &scripts);
    let violations = LoadRun::check_pair(&kernel, &legacy);
    ShardRun {
        members: members.to_vec(),
        kernel,
        legacy,
        violations,
    }
}

fn merge_design(
    shards: &[ShardRun],
    pick: fn(&ShardRun) -> &LoadRun,
    design: &'static str,
) -> DesignMerge {
    let mut m = DesignMerge {
        design,
        ops: 0,
        cycles: 0,
        sessions: 0,
        abandoned: 0,
        parity: Vec::new(),
        hist: Histogram::new(),
        user_samples: Vec::new(),
        edges: EdgeSet::new(),
    };
    for shard in shards {
        let r = pick(shard);
        m.edges.merge(&r.edges);
        m.ops += r.ops;
        m.cycles += r.cycles;
        m.sessions += r.sessions;
        m.abandoned += r.abandoned;
        m.parity.extend(r.parity.iter().cloned());
        m.hist
            .merge(&r.hist)
            .expect("every shard histogram shares the 64-bucket grid");
        for (local, samples) in r.user_samples.iter().enumerate() {
            m.user_samples.push((shard.members[local], samples.clone()));
        }
    }
    m
}

/// Drives the whole partition with `workers` OS threads and merges in
/// shard order.
///
/// Workers pull shard indices from a [`Sequencer`] (dynamic assignment
/// is order-free because results land in per-shard slots) and advance
/// an [`EventCount`] per completed shard; the merge waits at
/// `await_value(n_shards)` — the epoch-style sync barrier — before
/// folding anything, so no partial state is ever observed.
pub fn run_sharded(spec: &ShardSpec, workers: usize) -> ShardedRun {
    let members = spec.members();
    let n_shards = members.len();
    let workers = workers.clamp(1, n_shards);

    let tickets = Sequencer::new();
    let done = EventCount::new();
    let slots: Vec<Mutex<Option<ShardRun>>> = (0..n_shards).map(|_| Mutex::new(None)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = tickets.ticket() as usize;
                if t >= n_shards {
                    break;
                }
                let run = run_shard(spec, &members[t]);
                *slots[t].lock().expect("shard slot") = Some(run);
                done.advance();
            });
        }
        // The merge barrier: every shard accounted for before anything
        // is folded. Thread join below is the OS-level cleanup; this is
        // the logical synchronisation point.
        done.await_value(n_shards as u64);
    });
    let wall_nanos = started.elapsed().as_nanos();

    let shards: Vec<ShardRun> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("shard slot")
                .expect("barrier passed, every slot filled")
        })
        .collect();

    let mut violations = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        violations.extend(shard.violations.iter().map(|v| format!("shard {i}: {v}")));
    }

    let kernel = merge_design(&shards, |s| &s.kernel, "kernel");
    let legacy = merge_design(&shards, |s| &s.legacy, "legacy");

    // Post-merge oracle: the shard partition must cover every session
    // exactly once …
    let mut seen = vec![0usize; spec.sessions];
    for shard in &shards {
        for &g in &shard.members {
            seen[g] += 1;
        }
    }
    for (g, &count) in seen.iter().enumerate() {
        if count != 1 {
            violations.push(format!("merge: session {g} appears in {count} shards"));
        }
    }
    // … and each design's merged stream must conserve its samples.
    for m in [&kernel, &legacy] {
        if m.sessions != spec.sessions {
            violations.push(format!(
                "merge: {} completed {} sessions of {}",
                m.design, m.sessions, spec.sessions
            ));
        }
        if m.hist.samples() != m.ops {
            violations.push(format!(
                "merge: {} histogram holds {} samples for {} ops",
                m.design,
                m.hist.samples(),
                m.ops
            ));
        }
        let direct: u64 = m.user_samples.iter().map(|(_, s)| s.len() as u64).sum();
        if direct != m.ops {
            violations.push(format!(
                "merge: {} per-user samples hold {direct} entries for {} ops",
                m.design, m.ops
            ));
        }
    }

    ShardedRun {
        sessions: spec.sessions,
        n_shards,
        workers,
        shards,
        kernel,
        legacy,
        violations,
        wall_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_a_pure_function_of_seed_and_index() {
        let spec = ShardSpec {
            sessions: 500,
            seed: 1977,
            shard_users: 64,
        };
        let a = spec.members();
        let b = spec.members();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.n_shards());
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 500);
        // The hash actually spreads: no shard holds everyone.
        assert!(a.iter().all(|m| m.len() < 500));
    }

    #[test]
    fn shard_hash_differs_from_the_script_stream() {
        // If shard_of reused the script generator verbatim, membership
        // and behaviour would correlate; one extra mix decorrelates them.
        let by_hash: Vec<usize> = (0..32).map(|i| shard_of(7, i, 4)).collect();
        let by_script: Vec<usize> = (0..32)
            .map(|i| {
                let mut rng = SplitMix64::new(7 ^ (i as u64 + 1).wrapping_mul(SHARD_MIX));
                (rng.next_u64() % 4) as usize
            })
            .collect();
        assert_ne!(by_hash, by_script);
    }

    #[test]
    fn worker_count_never_changes_the_merged_stream() {
        // Small enough for a debug-build test, large enough for 3 shards.
        let spec = ShardSpec {
            sessions: 48,
            seed: 1977,
            shard_users: 16,
        };
        let base = run_sharded(&spec, 1);
        assert!(base.violations.is_empty(), "{:?}", base.violations);
        assert_eq!(base.n_shards, 3);
        for workers in [2, 3] {
            let run = run_sharded(&spec, workers);
            assert!(run.violations.is_empty(), "{:?}", run.violations);
            assert_eq!(run.kernel, base.kernel, "K={workers} kernel merge");
            assert_eq!(run.legacy, base.legacy, "K={workers} legacy merge");
        }
    }

    #[test]
    fn single_shard_matches_the_unsharded_engine() {
        // A population inside one granule must produce exactly the
        // classic run: same labels, same cycles, same samples.
        let spec = ShardSpec::new(12, 42);
        let run = run_sharded(&spec, 4);
        assert_eq!(run.n_shards, 1);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        let (k, l) = crate::run::run_both(&LoadSpec::new(12, 42));
        assert_eq!(run.kernel.parity, k.parity);
        assert_eq!(run.kernel.cycles, k.cycles);
        assert_eq!(run.legacy.parity, l.parity);
        assert_eq!(run.legacy.cycles, l.cycles);
        assert_eq!(
            run.kernel.user_samples,
            k.user_samples.into_iter().enumerate().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_population_runs_clean() {
        let run = run_sharded(&ShardSpec::new(0, 1), 2);
        assert_eq!(run.n_shards, 1);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.kernel.ops, 0);
    }
}
