//! mx-load: a deterministic multi-user load harness.
//!
//! The paper's kernel argument is structural, but its credibility is
//! empirical: the restructured system must carry a realistic multi-user
//! load — login storms, dynamic linking, name-space traffic, file
//! growth into quota and pack limits, page-fault-heavy sharing — and
//! produce the same user-visible outcomes as the 1974 supervisor while
//! the meters account for every cycle. This crate scripts that load as
//! a pure function of a seed ([`script`]), drives the identical logical
//! stream through both designs ([`run`]), and reports throughput and
//! latency percentiles from a deterministic histogram ([`hist`]).
//!
//! Everything here is seed-pure: same spec, same bytes, every run.

pub mod epoch;
pub mod fleet;
pub mod hist;
pub mod run;
pub mod script;
pub mod shard;

pub use epoch::{
    run_kernel_c1, run_kernel_s1, run_legacy_c1, run_legacy_s1, C1Policy, C1Run, C1SelfCheck,
    C1Spec, EpochReport, S1EpochReport, S1Run, S1SelfCheck, S1Spec,
};
pub use fleet::{run_kernel_fleet, run_legacy_fleet, FleetRun, FleetSpec};
pub use hist::{Histogram, HistogramError};
pub use run::{run_both, run_kernel_load, run_legacy_load, LoadRun, LoadSpec};
pub use script::{session_script, SessionOp, SessionScript, LIB_SYMBOLS, SHARED_PAGES};
pub use shard::{run_sharded, shard_of, DesignMerge, ShardRun, ShardSpec, ShardedRun};
