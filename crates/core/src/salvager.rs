//! The salvager: file-system consistency checking and repair.
//!
//! The paper's third verification prong puts the system into operational
//! use and traces failures to see whether they originate in the kernel.
//! Multics' operational tool for that was the *salvager*, which walked
//! the hierarchy rebuilding damaged structures. This module is its
//! Kernel/Multics counterpart: it cross-checks the four places the
//! file system records a fact — directory entries, the branch cache,
//! pack tables of contents, and quota cells — reports every
//! disagreement, and (optionally) repairs the recoverable ones.
//!
//! Invariants checked:
//!
//! 1. every directory entry's disk home names a live TOC entry whose
//!    recorded uid matches;
//! 2. every TOC entry is reachable from exactly one directory entry
//!    (or is the root's);
//! 3. every quota cell's `used` equals the records actually mapped by
//!    the objects statically bound to it;
//! 4. no file map names a record outside its pack;
//! 5. every allocated record is referenced by some file map (a crash
//!    between allocation and the file-map commit leaks the record).

use crate::directory::{DirectoryManager, FsCtx};
use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::types::{DiskHome, SegUid};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Problem {
    /// A TOC entry no directory entry names — storage leaked by a crash
    /// between allocation and cataloguing.
    OrphanTocEntry {
        /// Where the orphan lives.
        home: DiskHome,
        /// The uid it claims.
        uid: SegUid,
    },
    /// A directory entry whose disk home is missing or names a
    /// different uid.
    DanglingEntry {
        /// The directory holding the entry.
        dir: SegUid,
        /// The entry's name.
        name: String,
        /// The uid the entry claims.
        uid: SegUid,
    },
    /// Two live directory entries claim the same TOC entry — invariant
    /// 2's other half (a torn directory page can duplicate a branch).
    DoublyClaimedToc {
        /// The directory holding the *second* (duplicate) claim.
        dir: SegUid,
        /// The duplicate entry's name.
        name: String,
        /// The home claimed twice.
        home: DiskHome,
    },
    /// A quota cell whose used count disagrees with the mapped records
    /// of its bound objects.
    CellDrift {
        /// The cell (uid of its quota directory).
        cell: SegUid,
        /// What the cell says.
        recorded: u32,
        /// What the disk says.
        actual: u32,
    },
    /// A file map pointing at a record number beyond the pack.
    BadRecordPointer {
        /// The object whose map is damaged.
        home: DiskHome,
        /// The page with the bad pointer.
        pageno: u32,
    },
    /// An allocated record no file map references — storage leaked by a
    /// crash between record allocation and the file-map commit.
    LeakedRecord {
        /// The pack holding the record.
        pack: mx_hw::PackId,
        /// The leaked record.
        record: mx_hw::RecordNo,
    },
}

/// The salvager's findings (and actions, when repairing).
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Objects examined.
    pub objects_checked: u32,
    /// Quota cells examined.
    pub cells_checked: u32,
    /// Everything found wrong.
    pub problems: Vec<Problem>,
    /// Human-readable descriptions of repairs performed.
    pub repairs: Vec<String>,
}

impl SalvageReport {
    /// True if the file system was fully consistent.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl Kernel {
    /// Runs the salvager over the whole hierarchy.
    ///
    /// With `repair` set, cell drift is corrected to the disk's truth,
    /// orphan TOC entries are deleted, and dangling or doubly-claimed
    /// directory entries are cleared — everything needed for a second
    /// pass to come back clean from any crash state.
    ///
    /// # Errors
    ///
    /// Storage errors reading directories.
    pub fn salvage(&mut self, repair: bool) -> Result<SalvageReport, KernelError> {
        let meter = self.machine.clock.enter(mx_hw::meter::Subsystem::Salvager);
        let result = self.salvage_walk(repair);
        self.machine.clock.exit(meter);
        result
    }

    fn salvage_walk(&mut self, repair: bool) -> Result<SalvageReport, KernelError> {
        let mut report = SalvageReport::default();

        // Walk the hierarchy from the root, collecting every catalogued
        // object: uid -> (home, own_cell), and counting who claims each
        // TOC entry along the way.
        let root = self.dirm.root();
        let mut catalogued: HashMap<SegUid, (DiskHome, SegUid)> = HashMap::new();
        let mut claimed: HashSet<(u32, u32)> = HashSet::new();
        // The cell governing each directory's children, derived from the
        // walk (nearest superior quota directory) rather than from the
        // entries' cached `own_cell` words, which a torn page can leave
        // stale. Designation truth is the cell directory, which is
        // TOC-backed and survives crashes.
        let mut governs: HashMap<SegUid, SegUid> = HashMap::new();
        governs.insert(root, root);
        // The root itself.
        if let Some((home, _, _, _)) = self.dirm.activation_info(root) {
            catalogued.insert(root, (home, root));
            claimed.insert((home.pack.0, home.toc.0));
        }
        let mut stack = vec![root];
        let mut bad_entries = Vec::new(); // (dir, slot, uid, problem)
        while let Some(dir) = stack.pop() {
            let gcell = *governs.get(&dir).expect("walked dir");
            let entries = {
                let Kernel {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                    dirm,
                    ..
                } = self;
                let mut fs = FsCtx {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                };
                dirm.salvage_entries(&mut fs, dir)?
            };
            for (slot, name, uid, home, _own_cell, is_dir) in entries {
                report.objects_checked += 1;
                // Invariant 1: home must exist and agree on the uid.
                let toc_uid = self
                    .machine
                    .disks
                    .pack(home.pack)
                    .ok()
                    .and_then(|p| p.entry(home.toc).ok())
                    .map(|e| e.uid);
                if toc_uid != Some(uid.0) {
                    bad_entries.push((dir, slot, uid, Problem::DanglingEntry { dir, name, uid }));
                    continue;
                }
                // Invariant 2 (first half): no TOC entry is claimed by
                // more than one directory entry. The first claim wins;
                // later ones are duplicates.
                if !claimed.insert((home.pack.0, home.toc.0)) {
                    bad_entries.push((
                        dir,
                        slot,
                        uid,
                        Problem::DoublyClaimedToc { dir, name, home },
                    ));
                    continue;
                }
                catalogued.insert(uid, (home, gcell));
                if is_dir {
                    governs.insert(uid, if self.qcm.exists(uid) { uid } else { gcell });
                    stack.push(uid);
                }
            }
        }
        if repair {
            for (dir, slot, uid, problem) in &bad_entries {
                let Kernel {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                    dirm,
                    ..
                } = self;
                let mut fs = FsCtx {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                };
                dirm.salvage_clear_entry(&mut fs, *dir, *slot, *uid)?;
                report.repairs.push(match problem {
                    Problem::DoublyClaimedToc { .. } => {
                        format!("cleared duplicate claim on uid {} in dir {}", uid.0, dir.0)
                    }
                    _ => format!("cleared dangling entry for uid {} in dir {}", uid.0, dir.0),
                });
            }
        }
        report
            .problems
            .extend(bad_entries.into_iter().map(|(_, _, _, p)| p));

        // Invariant 4 + per-cell actual usage from the disk's view.
        let mut actual_by_cell: BTreeMap<SegUid, u32> = BTreeMap::new();
        for (uid, (home, cell)) in &catalogued {
            let _ = uid;
            if let Ok(pack) = self.machine.disks.pack(home.pack) {
                let capacity = pack.capacity();
                if let Ok(entry) = pack.entry(home.toc) {
                    let mut used = 0;
                    for (pageno, rec) in entry.file_map.iter().enumerate() {
                        if let Some(r) = rec {
                            if r.0 >= capacity {
                                report.problems.push(Problem::BadRecordPointer {
                                    home: *home,
                                    pageno: pageno as u32,
                                });
                            } else {
                                used += 1;
                            }
                        }
                    }
                    *actual_by_cell.entry(*cell).or_insert(0) += used;
                }
            }
        }

        // Invariant 2 (second half): orphan TOC entries.
        let mut orphans = Vec::new();
        for pack in self.machine.disks.packs() {
            for (toc, entry) in pack.entries() {
                if !claimed.contains(&(pack.id.0, toc.0)) {
                    orphans.push(Problem::OrphanTocEntry {
                        home: DiskHome { pack: pack.id, toc },
                        uid: SegUid(entry.uid),
                    });
                }
            }
        }
        if repair {
            for p in &orphans {
                if let Problem::OrphanTocEntry { home, uid } = p {
                    // Only reclaim storage for objects nothing names and
                    // nothing has active.
                    if self.segm.get(*uid).is_none() && !self.qcm.exists(*uid) {
                        self.drm.delete_entry(&mut self.machine, *home)?;
                        report.repairs.push(format!(
                            "reclaimed orphan TOC entry {:?} (uid {})",
                            home, uid.0
                        ));
                    }
                }
            }
        }
        report.problems.extend(orphans);

        // Invariant 5: every allocated record is referenced by some file
        // map. Runs after the orphan sweep so reclaimed entries' records
        // are already back in the free pool.
        let mut leaked = Vec::new();
        for pack in self.machine.disks.packs() {
            let mut referenced: HashSet<u32> = HashSet::new();
            for (_, entry) in pack.entries() {
                for rec in entry.file_map.iter().flatten() {
                    referenced.insert(rec.0);
                }
            }
            for rec in pack.allocated_record_nos() {
                if !referenced.contains(&rec.0) {
                    leaked.push((pack.id, rec));
                }
            }
        }
        for (pack, rec) in leaked {
            report
                .problems
                .push(Problem::LeakedRecord { pack, record: rec });
            if repair {
                if let Ok(p) = self.machine.disks.pack_mut(pack) {
                    let _ = p.free_record(rec);
                }
                report
                    .repairs
                    .push(format!("freed leaked record {} on pack {}", rec.0, pack.0));
            }
        }

        // Invariant 3: cell drift.
        let cells: Vec<SegUid> = catalogued
            .values()
            .map(|(_, c)| *c)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for cell in cells {
            report.cells_checked += 1;
            let actual = actual_by_cell.get(&cell).copied().unwrap_or(0);
            let recorded = match self.qcm.cell_state(cell) {
                Some((_, used)) => used,
                None => {
                    // Not resident: read the persistent copy.
                    match self.dirm.activation_info(cell) {
                        Some((home, _, _, _)) => self
                            .drm
                            .read_quota_cell(&self.machine, home)?
                            .map(|r| r.used_pages)
                            .unwrap_or(0),
                        None => continue,
                    }
                }
            };
            if recorded != actual {
                report.problems.push(Problem::CellDrift {
                    cell,
                    recorded,
                    actual,
                });
                if repair {
                    self.repair_cell(cell, recorded, actual)?;
                    report.repairs.push(format!(
                        "reset cell {} used count {} -> {}",
                        cell.0, recorded, actual
                    ));
                }
            }
        }
        Ok(report)
    }

    fn repair_cell(
        &mut self,
        cell: SegUid,
        _recorded: u32,
        actual: u32,
    ) -> Result<(), KernelError> {
        // Force both copies (core table if resident, TOC always) to the
        // disk's truth. No limit enforcement: the pages already exist.
        self.qcm
            .salvage_set_used(&mut self.machine, &mut self.drm, cell, actual)
    }
}

/// One live directory entry as the salvager sees it:
/// `(slot, name, uid, home, own_cell, is_dir)`.
type SalvageEntry = (u32, String, SegUid, DiskHome, SegUid, bool);

impl DirectoryManager {
    /// Salvager access: every live entry of `dir`, read from segment
    /// storage.
    pub(crate) fn salvage_entries(
        &mut self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
    ) -> Result<Vec<SalvageEntry>, KernelError> {
        self.ensure_active(ctx, dir)?;
        let count = self.entry_count(ctx, dir)?;
        let mut out = Vec::new();
        for slot in 0..count {
            if let Some(e) = self.read_entry(ctx, dir, slot)? {
                out.push((slot, e.name, e.uid, e.home, e.own_cell, e.is_dir));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::types::{Acl, UserId};
    use mx_aim::Label;
    use mx_hw::Word;

    fn boot() -> (Kernel, crate::types::ProcessId) {
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 300,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        (k, pid)
    }

    #[test]
    fn a_healthy_system_salvages_clean() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let dir = k
            .create_entry(pid, root, "d", Acl::owner(UserId(1)), Label::BOTTOM, true)
            .unwrap();
        let f = k
            .create_entry(pid, dir, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
        assert!(report.objects_checked >= 3, "d, f, and the state segment");
        assert!(report.cells_checked >= 1);
    }

    #[test]
    fn orphan_toc_entries_are_found_and_reclaimed() {
        let (mut k, _pid) = boot();
        // Inject: a TOC entry nothing catalogues.
        let orphan_toc = k
            .machine
            .disks
            .pack_mut(mx_hw::PackId(1))
            .unwrap()
            .create_entry(0xDEAD)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::OrphanTocEntry { uid, .. } if uid.0 == 0xDEAD)));
        // Repair reclaims it.
        let report = k.salvage(true).unwrap();
        assert!(!report.repairs.is_empty());
        assert!(k
            .machine
            .disks
            .pack(mx_hw::PackId(1))
            .unwrap()
            .entry(orphan_toc)
            .is_err());
        // And the system is clean afterwards.
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn leaked_records_are_found_and_freed() {
        let (mut k, _pid) = boot();
        // Inject: a record allocated but referenced by no file map, as a
        // crash between allocation and the file-map commit leaves it.
        let pack = mx_hw::PackId(1);
        let leaked = k
            .machine
            .disks
            .pack_mut(pack)
            .unwrap()
            .allocate_record()
            .unwrap();
        let free_before = k.machine.disks.pack(pack).unwrap().free_records();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::LeakedRecord { record, .. } if *record == leaked)));
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("leaked record")));
        assert_eq!(
            k.machine.disks.pack(pack).unwrap().free_records(),
            free_before + 1,
            "record returned to the free pool"
        );
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn cell_drift_is_detected_and_repaired() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(pid, root, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        // Inject drift: over-charge the root cell behind the system's back.
        let mut flows = mx_aim::FlowTracker::new();
        k.qcm
            .charge(&mut k.machine, SegUid(1), 3, Label::BOTTOM, &mut flows)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report.problems.iter().any(|p| matches!(
            p,
            Problem::CellDrift {
                cell: SegUid(1),
                ..
            }
        )));
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("reset cell 1")));
        let report = k.salvage(false).unwrap();
        assert!(
            report.clean(),
            "problems after repair: {:?}",
            report.problems
        );
    }

    /// Pokes a raw word of the root directory segment — fault injection
    /// for catalogue damage.
    fn poke_root_dir(k: &mut Kernel, wordno: u32, value: u64) {
        k.segm
            .write_word(
                &mut k.machine,
                &mut k.drm,
                &mut k.qcm,
                &mut k.pfm,
                &mut k.vpm,
                &mut k.flows,
                SegUid(1),
                wordno,
                Word::new(value),
                Label::BOTTOM,
            )
            .unwrap();
    }

    #[test]
    fn doubly_claimed_toc_entries_are_found_and_cleared() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f1 = k
            .create_entry(pid, root, "f1", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let _f2 = k
            .create_entry(pid, root, "f2", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let u1 = k.uid_of_token(f1).unwrap();
        let h1 = k.dirm.home_of(u1).unwrap();
        // Root slots: 0 = "processes", 1 = "f1", 2 = "f2". Duplicate
        // f1's claim into f2's entry, as a torn directory page would.
        let base2 = 1 + 2 * crate::directory::ENTRY_WORDS;
        poke_root_dir(&mut k, base2, u1.0);
        poke_root_dir(&mut k, base2 + 2, u64::from(h1.pack.0));
        poke_root_dir(&mut k, base2 + 3, u64::from(h1.toc.0));
        let report = k.salvage(false).unwrap();
        assert!(
            report
                .problems
                .iter()
                .any(|p| matches!(p, Problem::DoublyClaimedToc { name, .. } if name == "f2")),
            "problems: {:?}",
            report.problems
        );
        // Repair clears the duplicate (and reclaims f2's orphaned TOC
        // entry); a second pass is clean.
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("duplicate claim")));
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
        // The surviving claim still works.
        let segno = k.initiate(pid, f1).unwrap();
        k.write_word(pid, segno, 0, Word::new(3)).unwrap();
    }

    #[test]
    fn dangling_entry_repair_converges() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(
                pid,
                root,
                "victim",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        let uid = k.uid_of_token(f).unwrap();
        let home = k.dirm.home_of(uid).unwrap();
        k.machine
            .disks
            .pack_mut(home.pack)
            .unwrap()
            .delete_entry(home.toc)
            .unwrap();
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("dangling entry")));
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn dangling_entries_are_reported() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(
                pid,
                root,
                "victim",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        // Inject: delete the TOC entry out from under the catalogue.
        let uid = k.uid_of_token(f).unwrap();
        let home = k.dirm.home_of(uid).unwrap();
        k.machine
            .disks
            .pack_mut(home.pack)
            .unwrap()
            .delete_entry(home.toc)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::DanglingEntry { name, .. } if name == "victim")));
    }
}
