//! The salvager: file-system consistency checking and repair.
//!
//! The paper's third verification prong puts the system into operational
//! use and traces failures to see whether they originate in the kernel.
//! Multics' operational tool for that was the *salvager*, which walked
//! the hierarchy rebuilding damaged structures. This module is its
//! Kernel/Multics counterpart: it cross-checks the four places the
//! file system records a fact — directory entries, the branch cache,
//! pack tables of contents, and quota cells — reports every
//! disagreement, and (optionally) repairs the recoverable ones.
//!
//! Invariants checked:
//!
//! 1. every directory entry's disk home names a live TOC entry whose
//!    recorded uid matches;
//! 2. every TOC entry is reachable from exactly one directory entry
//!    (or is the root's);
//! 3. every quota cell's `used` equals the records actually mapped by
//!    the objects statically bound to it;
//! 4. no file map names a record outside its pack.

use crate::directory::{DirectoryManager, FsCtx};
use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::types::{DiskHome, SegUid};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Problem {
    /// A TOC entry no directory entry names — storage leaked by a crash
    /// between allocation and cataloguing.
    OrphanTocEntry {
        /// Where the orphan lives.
        home: DiskHome,
        /// The uid it claims.
        uid: SegUid,
    },
    /// A directory entry whose disk home is missing or names a
    /// different uid.
    DanglingEntry {
        /// The directory holding the entry.
        dir: SegUid,
        /// The entry's name.
        name: String,
        /// The uid the entry claims.
        uid: SegUid,
    },
    /// A quota cell whose used count disagrees with the mapped records
    /// of its bound objects.
    CellDrift {
        /// The cell (uid of its quota directory).
        cell: SegUid,
        /// What the cell says.
        recorded: u32,
        /// What the disk says.
        actual: u32,
    },
    /// A file map pointing at a record number beyond the pack.
    BadRecordPointer {
        /// The object whose map is damaged.
        home: DiskHome,
        /// The page with the bad pointer.
        pageno: u32,
    },
}

/// The salvager's findings (and actions, when repairing).
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Objects examined.
    pub objects_checked: u32,
    /// Quota cells examined.
    pub cells_checked: u32,
    /// Everything found wrong.
    pub problems: Vec<Problem>,
    /// Human-readable descriptions of repairs performed.
    pub repairs: Vec<String>,
}

impl SalvageReport {
    /// True if the file system was fully consistent.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl Kernel {
    /// Runs the salvager over the whole hierarchy.
    ///
    /// With `repair` set, cell drift is corrected to the disk's truth
    /// and orphan TOC entries are deleted; dangling directory entries
    /// are reported only (removing a name is a policy decision the
    /// operator makes).
    ///
    /// # Errors
    ///
    /// Storage errors reading directories.
    pub fn salvage(&mut self, repair: bool) -> Result<SalvageReport, KernelError> {
        let meter = self.machine.clock.enter(mx_hw::meter::Subsystem::Salvager);
        let result = self.salvage_walk(repair);
        self.machine.clock.exit(meter);
        result
    }

    fn salvage_walk(&mut self, repair: bool) -> Result<SalvageReport, KernelError> {
        let mut report = SalvageReport::default();

        // Walk the hierarchy from the root, collecting every catalogued
        // object: uid -> (home, own_cell).
        let root = self.dirm.root();
        let mut catalogued: HashMap<SegUid, (DiskHome, SegUid)> = HashMap::new();
        // The root itself.
        if let Some((home, cell, _, _)) = self.dirm.activation_info(root) {
            catalogued.insert(root, (home, cell));
        }
        let mut stack = vec![root];
        let mut dangling = Vec::new();
        while let Some(dir) = stack.pop() {
            let entries = {
                let Kernel {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                    dirm,
                    ..
                } = self;
                let mut fs = FsCtx {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                };
                dirm.salvage_entries(&mut fs, dir)?
            };
            for (name, uid, home, own_cell, is_dir) in entries {
                report.objects_checked += 1;
                // Invariant 1: home must exist and agree on the uid.
                let toc_uid = self
                    .machine
                    .disks
                    .pack(home.pack)
                    .ok()
                    .and_then(|p| p.entry(home.toc).ok())
                    .map(|e| e.uid);
                if toc_uid != Some(uid.0) {
                    dangling.push(Problem::DanglingEntry { dir, name, uid });
                    continue;
                }
                catalogued.insert(uid, (home, own_cell));
                if is_dir {
                    stack.push(uid);
                }
            }
        }
        report.problems.extend(dangling);

        // Invariant 4 + per-cell actual usage from the disk's view.
        let mut actual_by_cell: BTreeMap<SegUid, u32> = BTreeMap::new();
        for (uid, (home, cell)) in &catalogued {
            let _ = uid;
            if let Ok(pack) = self.machine.disks.pack(home.pack) {
                let capacity = pack.capacity();
                if let Ok(entry) = pack.entry(home.toc) {
                    let mut used = 0;
                    for (pageno, rec) in entry.file_map.iter().enumerate() {
                        if let Some(r) = rec {
                            if r.0 >= capacity {
                                report.problems.push(Problem::BadRecordPointer {
                                    home: *home,
                                    pageno: pageno as u32,
                                });
                            } else {
                                used += 1;
                            }
                        }
                    }
                    *actual_by_cell.entry(*cell).or_insert(0) += used;
                }
            }
        }

        // Invariant 2: orphan TOC entries.
        let known_homes: HashSet<(u32, u32)> = catalogued
            .values()
            .map(|(h, _)| (h.pack.0, h.toc.0))
            .collect();
        let mut orphans = Vec::new();
        for pack in self.machine.disks.packs() {
            for (toc, entry) in pack.entries() {
                if !known_homes.contains(&(pack.id.0, toc.0)) {
                    orphans.push(Problem::OrphanTocEntry {
                        home: DiskHome { pack: pack.id, toc },
                        uid: SegUid(entry.uid),
                    });
                }
            }
        }
        if repair {
            for p in &orphans {
                if let Problem::OrphanTocEntry { home, uid } = p {
                    // Only reclaim storage for objects nothing names and
                    // nothing has active.
                    if self.segm.get(*uid).is_none() && !self.qcm.exists(*uid) {
                        self.drm.delete_entry(&mut self.machine, *home)?;
                        report.repairs.push(format!(
                            "reclaimed orphan TOC entry {:?} (uid {})",
                            home, uid.0
                        ));
                    }
                }
            }
        }
        report.problems.extend(orphans);

        // Invariant 3: cell drift.
        let cells: Vec<SegUid> = catalogued
            .values()
            .map(|(_, c)| *c)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for cell in cells {
            report.cells_checked += 1;
            let actual = actual_by_cell.get(&cell).copied().unwrap_or(0);
            let recorded = match self.qcm.cell_state(cell) {
                Some((_, used)) => used,
                None => {
                    // Not resident: read the persistent copy.
                    match self.dirm.activation_info(cell) {
                        Some((home, _, _, _)) => self
                            .drm
                            .read_quota_cell(&self.machine, home)?
                            .map(|r| r.used_pages)
                            .unwrap_or(0),
                        None => continue,
                    }
                }
            };
            if recorded != actual {
                report.problems.push(Problem::CellDrift {
                    cell,
                    recorded,
                    actual,
                });
                if repair {
                    self.repair_cell(cell, recorded, actual)?;
                    report.repairs.push(format!(
                        "reset cell {} used count {} -> {}",
                        cell.0, recorded, actual
                    ));
                }
            }
        }
        Ok(report)
    }

    fn repair_cell(&mut self, cell: SegUid, recorded: u32, actual: u32) -> Result<(), KernelError> {
        if recorded > actual {
            self.qcm
                .uncharge(&mut self.machine, cell, recorded - actual)?;
        } else {
            // Charge without limit enforcement: the pages already exist.
            // Use repeated uncharge of a negative delta via the direct
            // route: load-modify through the public API.
            let mut flows = mx_aim::FlowTracker::new();
            for _ in 0..(actual - recorded) {
                // A repair charge that must not fail on the limit: lift
                // it by force through uncharge(0)+charge pattern; if the
                // limit blocks it, record the overrun by raising the
                // recorded count via the persistent copy.
                if self
                    .qcm
                    .charge(
                        &mut self.machine,
                        cell,
                        1,
                        mx_aim::Label::BOTTOM,
                        &mut flows,
                    )
                    .is_err()
                {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// One live directory entry as the salvager sees it:
/// `(name, uid, home, own_cell, is_dir)`.
type SalvageEntry = (String, SegUid, DiskHome, SegUid, bool);

impl DirectoryManager {
    /// Salvager access: every live entry of `dir`, read from segment
    /// storage.
    pub(crate) fn salvage_entries(
        &mut self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
    ) -> Result<Vec<SalvageEntry>, KernelError> {
        self.ensure_active(ctx, dir)?;
        let count = self.entry_count(ctx, dir)?;
        let mut out = Vec::new();
        for slot in 0..count {
            if let Some(e) = self.read_entry(ctx, dir, slot)? {
                out.push((e.name, e.uid, e.home, e.own_cell, e.is_dir));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::types::{Acl, UserId};
    use mx_aim::Label;
    use mx_hw::Word;

    fn boot() -> (Kernel, crate::types::ProcessId) {
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 300,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        (k, pid)
    }

    #[test]
    fn a_healthy_system_salvages_clean() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let dir = k
            .create_entry(pid, root, "d", Acl::owner(UserId(1)), Label::BOTTOM, true)
            .unwrap();
        let f = k
            .create_entry(pid, dir, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
        assert!(report.objects_checked >= 3, "d, f, and the state segment");
        assert!(report.cells_checked >= 1);
    }

    #[test]
    fn orphan_toc_entries_are_found_and_reclaimed() {
        let (mut k, _pid) = boot();
        // Inject: a TOC entry nothing catalogues.
        let orphan_toc = k
            .machine
            .disks
            .pack_mut(mx_hw::PackId(1))
            .unwrap()
            .create_entry(0xDEAD)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::OrphanTocEntry { uid, .. } if uid.0 == 0xDEAD)));
        // Repair reclaims it.
        let report = k.salvage(true).unwrap();
        assert!(!report.repairs.is_empty());
        assert!(k
            .machine
            .disks
            .pack(mx_hw::PackId(1))
            .unwrap()
            .entry(orphan_toc)
            .is_err());
        // And the system is clean afterwards.
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn cell_drift_is_detected_and_repaired() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(pid, root, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        // Inject drift: over-charge the root cell behind the system's back.
        let mut flows = mx_aim::FlowTracker::new();
        k.qcm
            .charge(&mut k.machine, SegUid(1), 3, Label::BOTTOM, &mut flows)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report.problems.iter().any(|p| matches!(
            p,
            Problem::CellDrift {
                cell: SegUid(1),
                ..
            }
        )));
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("reset cell 1")));
        let report = k.salvage(false).unwrap();
        assert!(
            report.clean(),
            "problems after repair: {:?}",
            report.problems
        );
    }

    #[test]
    fn dangling_entries_are_reported() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(
                pid,
                root,
                "victim",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        // Inject: delete the TOC entry out from under the catalogue.
        let uid = k.uid_of_token(f).unwrap();
        let home = k.dirm.home_of(uid).unwrap();
        k.machine
            .disks
            .pack_mut(home.pack)
            .unwrap()
            .delete_entry(home.toc)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::DanglingEntry { name, .. } if name == "victim")));
    }
}
