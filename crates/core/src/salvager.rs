//! The salvager: file-system consistency checking and repair.
//!
//! The paper's third verification prong puts the system into operational
//! use and traces failures to see whether they originate in the kernel.
//! Multics' operational tool for that was the *salvager*, which walked
//! the hierarchy rebuilding damaged structures. This module is its
//! Kernel/Multics counterpart: it cross-checks the four places the
//! file system records a fact — directory entries, the branch cache,
//! pack tables of contents, and quota cells — reports every
//! disagreement, and (optionally) repairs the recoverable ones.
//!
//! Invariants checked:
//!
//! 1. every directory entry's disk home names a live TOC entry whose
//!    recorded uid matches;
//! 2. every TOC entry is reachable from exactly one directory entry
//!    (or is the root's);
//! 3. every quota cell's `used` equals the records actually mapped by
//!    the objects statically bound to it;
//! 4. no file map names a record outside its pack;
//! 5. every allocated record is referenced by some file map (a crash
//!    between allocation and the file-map commit leaks the record).

use crate::directory::{DirectoryManager, FsCtx};
use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::types::{DiskHome, ObjToken, SegUid};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Problem {
    /// A TOC entry no directory entry names — storage leaked by a crash
    /// between allocation and cataloguing.
    OrphanTocEntry {
        /// Where the orphan lives.
        home: DiskHome,
        /// The uid it claims.
        uid: SegUid,
    },
    /// A directory entry whose disk home is missing or names a
    /// different uid.
    DanglingEntry {
        /// The directory holding the entry.
        dir: SegUid,
        /// The entry's name.
        name: String,
        /// The uid the entry claims.
        uid: SegUid,
    },
    /// Two live directory entries claim the same TOC entry — invariant
    /// 2's other half (a torn directory page can duplicate a branch).
    DoublyClaimedToc {
        /// The directory holding the *second* (duplicate) claim.
        dir: SegUid,
        /// The duplicate entry's name.
        name: String,
        /// The home claimed twice.
        home: DiskHome,
    },
    /// A quota cell whose used count disagrees with the mapped records
    /// of its bound objects.
    CellDrift {
        /// The cell (uid of its quota directory).
        cell: SegUid,
        /// What the cell says.
        recorded: u32,
        /// What the disk says.
        actual: u32,
    },
    /// A file map pointing at a record number beyond the pack.
    BadRecordPointer {
        /// The object whose map is damaged.
        home: DiskHome,
        /// The page with the bad pointer.
        pageno: u32,
    },
    /// An allocated record no file map references — storage leaked by a
    /// crash between record allocation and the file-map commit.
    LeakedRecord {
        /// The pack holding the record.
        pack: mx_hw::PackId,
        /// The leaked record.
        record: mx_hw::RecordNo,
    },
}

/// The salvager's findings (and actions, when repairing).
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Objects examined.
    pub objects_checked: u32,
    /// Quota cells examined.
    pub cells_checked: u32,
    /// Everything found wrong.
    pub problems: Vec<Problem>,
    /// Human-readable descriptions of repairs performed.
    pub repairs: Vec<String>,
}

impl SalvageReport {
    /// True if the file system was fully consistent.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl Kernel {
    /// Runs the salvager over the whole hierarchy.
    ///
    /// With `repair` set, cell drift is corrected to the disk's truth,
    /// orphan TOC entries are deleted, and dangling or doubly-claimed
    /// directory entries are cleared — everything needed for a second
    /// pass to come back clean from any crash state.
    ///
    /// # Errors
    ///
    /// Storage errors reading directories.
    pub fn salvage(&mut self, repair: bool) -> Result<SalvageReport, KernelError> {
        let meter = self.machine.clock.enter(mx_hw::meter::Subsystem::Salvager);
        let result = self.salvage_walk(repair);
        self.machine.clock.exit(meter);
        result
    }

    fn salvage_walk(&mut self, repair: bool) -> Result<SalvageReport, KernelError> {
        let mut report = SalvageReport::default();

        // Walk the hierarchy from the root, collecting every catalogued
        // object: uid -> (home, own_cell), and counting who claims each
        // TOC entry along the way.
        let root = self.dirm.root();
        let mut catalogued: HashMap<SegUid, (DiskHome, SegUid)> = HashMap::new();
        let mut claimed: HashSet<(u32, u32)> = HashSet::new();
        // The cell governing each directory's children, derived from the
        // walk (nearest superior quota directory) rather than from the
        // entries' cached `own_cell` words, which a torn page can leave
        // stale. Designation truth is the cell directory, which is
        // TOC-backed and survives crashes.
        let mut governs: HashMap<SegUid, SegUid> = HashMap::new();
        governs.insert(root, root);
        // The root itself.
        if let Some((home, _, _, _)) = self.dirm.activation_info(root) {
            catalogued.insert(root, (home, root));
            claimed.insert((home.pack.0, home.toc.0));
        }
        let mut stack = vec![root];
        let mut bad_entries = Vec::new(); // (dir, slot, uid, problem)
        while let Some(dir) = stack.pop() {
            let gcell = *governs.get(&dir).ok_or(KernelError::Salvage(
                "governing cell missing for walked dir",
            ))?;
            let entries = self.salvage_dir_entries(dir)?;
            for (slot, name, uid, home, _own_cell, is_dir) in entries {
                report.objects_checked += 1;
                // Invariant 1: home must exist and agree on the uid.
                let toc_uid = self
                    .machine
                    .disks
                    .pack(home.pack)
                    .ok()
                    .and_then(|p| p.entry(home.toc).ok())
                    .map(|e| e.uid);
                if toc_uid != Some(uid.0) {
                    bad_entries.push((dir, slot, uid, Problem::DanglingEntry { dir, name, uid }));
                    continue;
                }
                // Invariant 2 (first half): no TOC entry is claimed by
                // more than one directory entry. The first claim wins;
                // later ones are duplicates.
                if !claimed.insert((home.pack.0, home.toc.0)) {
                    bad_entries.push((
                        dir,
                        slot,
                        uid,
                        Problem::DoublyClaimedToc { dir, name, home },
                    ));
                    continue;
                }
                catalogued.insert(uid, (home, gcell));
                if is_dir {
                    governs.insert(uid, if self.qcm.exists(uid) { uid } else { gcell });
                    stack.push(uid);
                }
            }
        }
        if repair {
            for (dir, slot, uid, problem) in &bad_entries {
                self.salvage_clear(*dir, *slot, *uid)?;
                report.repairs.push(match problem {
                    Problem::DoublyClaimedToc { .. } => {
                        format!("cleared duplicate claim on uid {} in dir {}", uid.0, dir.0)
                    }
                    _ => format!("cleared dangling entry for uid {} in dir {}", uid.0, dir.0),
                });
            }
        }
        report
            .problems
            .extend(bad_entries.into_iter().map(|(_, _, _, p)| p));

        // Invariant 4 + per-cell actual usage from the disk's view.
        let mut actual_by_cell: BTreeMap<SegUid, u32> = BTreeMap::new();
        for (uid, (home, cell)) in &catalogued {
            let _ = uid;
            if let Ok(pack) = self.machine.disks.pack(home.pack) {
                let capacity = pack.capacity();
                if let Ok(entry) = pack.entry(home.toc) {
                    let mut used = 0;
                    for (pageno, rec) in entry.file_map.iter().enumerate() {
                        if let Some(r) = rec {
                            if r.0 >= capacity {
                                report.problems.push(Problem::BadRecordPointer {
                                    home: *home,
                                    pageno: pageno as u32,
                                });
                            } else {
                                used += 1;
                            }
                        }
                    }
                    *actual_by_cell.entry(*cell).or_insert(0) += used;
                }
            }
        }

        // Invariant 2 (second half): orphan TOC entries.
        let mut orphans = Vec::new();
        for pack in self.machine.disks.packs() {
            for (toc, entry) in pack.entries() {
                if !claimed.contains(&(pack.id.0, toc.0)) {
                    orphans.push(Problem::OrphanTocEntry {
                        home: DiskHome { pack: pack.id, toc },
                        uid: SegUid(entry.uid),
                    });
                }
            }
        }
        if repair {
            for p in &orphans {
                if let Problem::OrphanTocEntry { home, uid } = p {
                    // Only reclaim storage for objects nothing names and
                    // nothing has active.
                    if self.segm.get(*uid).is_none() && !self.qcm.exists(*uid) {
                        self.drm.delete_entry(&mut self.machine, *home)?;
                        report.repairs.push(format!(
                            "reclaimed orphan TOC entry {:?} (uid {})",
                            home, uid.0
                        ));
                    }
                }
            }
        }
        report.problems.extend(orphans);

        // Invariant 5: every allocated record is referenced by some file
        // map. Runs after the orphan sweep so reclaimed entries' records
        // are already back in the free pool.
        let mut leaked = Vec::new();
        for pack in self.machine.disks.packs() {
            let mut referenced: HashSet<u32> = HashSet::new();
            for (_, entry) in pack.entries() {
                for rec in entry.file_map.iter().flatten() {
                    referenced.insert(rec.0);
                }
            }
            for rec in pack.allocated_record_nos() {
                if !referenced.contains(&rec.0) {
                    leaked.push((pack.id, rec));
                }
            }
        }
        for (pack, rec) in leaked {
            report
                .problems
                .push(Problem::LeakedRecord { pack, record: rec });
            if repair {
                if let Ok(p) = self.machine.disks.pack_mut(pack) {
                    let _ = p.free_record(rec);
                }
                report
                    .repairs
                    .push(format!("freed leaked record {} on pack {}", rec.0, pack.0));
            }
        }

        // Invariant 3: cell drift.
        let cells: Vec<SegUid> = catalogued
            .values()
            .map(|(_, c)| *c)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for cell in cells {
            report.cells_checked += 1;
            let actual = actual_by_cell.get(&cell).copied().unwrap_or(0);
            let recorded = match self.qcm.cell_state(cell) {
                Some((_, used)) => used,
                None => {
                    // Not resident: read the persistent copy.
                    match self.dirm.activation_info(cell) {
                        Some((home, _, _, _)) => self
                            .drm
                            .read_quota_cell(&self.machine, home)?
                            .map(|r| r.used_pages)
                            .unwrap_or(0),
                        None => continue,
                    }
                }
            };
            if recorded != actual {
                report.problems.push(Problem::CellDrift {
                    cell,
                    recorded,
                    actual,
                });
                if repair {
                    self.repair_cell(cell, recorded, actual)?;
                    report.repairs.push(format!(
                        "reset cell {} used count {} -> {}",
                        cell.0, recorded, actual
                    ));
                }
            }
        }
        Ok(report)
    }

    fn repair_cell(
        &mut self,
        cell: SegUid,
        _recorded: u32,
        actual: u32,
    ) -> Result<(), KernelError> {
        // Force both copies (core table if resident, TOC always) to the
        // disk's truth. No limit enforcement: the pages already exist.
        self.qcm
            .salvage_set_used(&mut self.machine, &mut self.drm, cell, actual)
    }

    /// Every live entry of `dir`, from segment storage (the borrow-split
    /// shared by the offline walk and the online claims).
    fn salvage_dir_entries(&mut self, dir: SegUid) -> Result<Vec<SalvageEntry>, KernelError> {
        let Kernel {
            machine,
            drm,
            qcm,
            pfm,
            vpm,
            segm,
            flows,
            monitor,
            dirm,
            ..
        } = self;
        let mut fs = FsCtx {
            machine,
            drm,
            qcm,
            pfm,
            vpm,
            segm,
            flows,
            monitor,
        };
        dirm.salvage_entries(&mut fs, dir)
    }

    fn salvage_clear(&mut self, dir: SegUid, slot: u32, uid: SegUid) -> Result<(), KernelError> {
        let Kernel {
            machine,
            drm,
            qcm,
            pfm,
            vpm,
            segm,
            flows,
            monitor,
            dirm,
            ..
        } = self;
        let mut fs = FsCtx {
            machine,
            drm,
            qcm,
            pfm,
            vpm,
            segm,
            flows,
            monitor,
        };
        dirm.salvage_clear_entry(&mut fs, dir, slot, uid)
    }

    // ---- online (incremental) salvage ------------------------------------

    /// Starts an incremental salvage: everything is quarantined, the
    /// claim frontier holds the root, and service resumes immediately —
    /// gates into not-yet-released directories surface
    /// [`KernelError::SalvageBusy`] until the salvager proves them clean.
    pub fn begin_online_salvage(&mut self) {
        self.begin_online_salvage_with_cheat(None);
    }

    /// Test-only entry point: a deliberately misbehaving salvager for
    /// the S1 planted-cheat self-check.
    #[doc(hidden)]
    pub fn begin_online_salvage_with_cheat(&mut self, cheat: Option<OnlineCheat>) {
        let root = self.dirm.root();
        let mut claimed = HashSet::new();
        if let Some((home, _, _, _)) = self.dirm.activation_info(root) {
            claimed.insert((home.pack.0, home.toc.0));
        }
        let mut frontier = VecDeque::new();
        frontier.push_back(root);
        self.online = Some(OnlineSalvage {
            released: HashSet::new(),
            frontier,
            claimed,
            finalize: VecDeque::new(),
            finalize_built: false,
            report: SalvageReport::default(),
            cheat,
            dirs_released: 0,
        });
    }

    /// True while an incremental salvage is in progress.
    pub fn online_salvage_active(&self) -> bool {
        self.online.is_some()
    }

    /// Directories the online salvager has released so far (figures).
    pub fn online_salvage_dirs_released(&self) -> u32 {
        self.online.as_ref().map_or(0, |o| o.dirs_released)
    }

    /// Performs one unit of online salvage: claims, repairs, rechecks
    /// and releases one directory, or runs one per-pack finalize sweep
    /// once the frontier has drained. After [`OnlineProgress::Done`] the
    /// quarantine barrier lifts entirely.
    ///
    /// # Errors
    ///
    /// Storage errors reading directories; [`KernelError::Salvage`] on
    /// internal inconsistencies. The salvage state survives an error and
    /// the step may be retried.
    pub fn online_salvage_step(&mut self) -> Result<OnlineProgress, KernelError> {
        let Some(mut st) = self.online.take() else {
            return Ok(OnlineProgress::Idle);
        };
        let meter = self.machine.clock.enter(mx_hw::meter::Subsystem::Salvager);
        let result = self.online_step_inner(&mut st);
        self.machine.clock.exit(meter);
        if !matches!(result, Ok(OnlineProgress::Done { .. })) {
            self.online = Some(st);
        }
        result
    }

    fn online_step_inner(&mut self, st: &mut OnlineSalvage) -> Result<OnlineProgress, KernelError> {
        if let Some(dir) = st.frontier.pop_front() {
            return self.online_claim_dir(st, dir);
        }
        if !st.finalize_built {
            // The frontier drained: every directory has been claimed, so
            // the claim set is complete and the global sweeps are sound.
            st.finalize_built = true;
            let packs: Vec<mx_hw::PackId> = self.machine.disks.packs().map(|p| p.id).collect();
            for p in &packs {
                st.finalize.push_back(FinalizeStep::Orphans(*p));
            }
            for p in &packs {
                st.finalize.push_back(FinalizeStep::Leaks(*p));
            }
        }
        match st.finalize.pop_front() {
            Some(FinalizeStep::Orphans(pack)) => {
                self.online_orphan_sweep(st, pack)?;
                Ok(OnlineProgress::Finalized { pack, leaks: false })
            }
            Some(FinalizeStep::Leaks(pack)) => {
                self.online_leak_sweep(st, pack);
                Ok(OnlineProgress::Finalized { pack, leaks: true })
            }
            None => Ok(OnlineProgress::Done {
                report: std::mem::take(&mut st.report),
            }),
        }
    }

    /// Claim → check/repair → recheck → release, for one directory.
    fn online_claim_dir(
        &mut self,
        st: &mut OnlineSalvage,
        dir: SegUid,
    ) -> Result<OnlineProgress, KernelError> {
        let problems_before = st.report.problems.len();
        let repairs_before = st.report.repairs.len();
        // The cell preview must run before this directory's entries join
        // the global claim set: its duplicate filter is "already claimed
        // by a processed directory", and the whole subtree below `dir`
        // is still quarantined (frozen), so the preview is exact.
        let is_cell = self.qcm.exists(dir) || dir == self.dirm.root();
        let preview = if is_cell {
            Some(self.online_cell_usage(st, dir)?)
        } else {
            None
        };

        let entries = self.salvage_dir_entries(dir)?;
        st.report.objects_checked += entries.len() as u32;
        let mut bad = Vec::new();
        for (slot, name, uid, home, _own_cell, is_dir) in entries {
            // Invariant 1: home must exist and agree on the uid.
            let toc_uid = self
                .machine
                .disks
                .pack(home.pack)
                .ok()
                .and_then(|p| p.entry(home.toc).ok())
                .map(|e| e.uid);
            if toc_uid != Some(uid.0) {
                bad.push((slot, uid, Problem::DanglingEntry { dir, name, uid }));
                continue;
            }
            // Invariant 2 (first half): first claim wins, globally.
            if !st.claimed.insert((home.pack.0, home.toc.0)) {
                bad.push((slot, uid, Problem::DoublyClaimedToc { dir, name, home }));
                continue;
            }
            // Invariant 4 for this entry's object.
            self.online_check_record_pointers(st, home);
            if is_dir {
                st.frontier.push_back(uid);
            }
        }
        for (slot, uid, problem) in bad {
            self.salvage_clear(dir, slot, uid)?;
            st.report.repairs.push(match &problem {
                Problem::DoublyClaimedToc { .. } => {
                    format!("cleared duplicate claim on uid {} in dir {}", uid.0, dir.0)
                }
                _ => format!("cleared dangling entry for uid {} in dir {}", uid.0, dir.0),
            });
            st.report.problems.push(problem);
        }
        // Invariant 3, before release (the planted cheat skips exactly
        // this repair and lets the recheck below expose it).
        if let Some(actual) = preview {
            st.report.cells_checked += 1;
            let recorded = self.online_cell_recorded(dir)?;
            if recorded != actual && st.cheat != Some(OnlineCheat::ReleaseBeforeCellRepair) {
                st.report.problems.push(Problem::CellDrift {
                    cell: dir,
                    recorded,
                    actual,
                });
                self.repair_cell(dir, recorded, actual)?;
                st.report.repairs.push(format!(
                    "reset cell {} used count {} -> {}",
                    dir.0, recorded, actual
                ));
            }
        }
        let recheck_clean = self.online_recheck(st, dir, preview)?;
        st.released.insert(dir);
        st.dirs_released += 1;
        Ok(OnlineProgress::Released {
            dir,
            recheck_clean,
            problems_found: (st.report.problems.len() - problems_before) as u32,
            repairs_made: (st.report.repairs.len() - repairs_before) as u32,
        })
    }

    /// Per-directory release proof: every entry satisfies invariants 1
    /// and 2 (within the directory) and, for quota directories, the cell
    /// matches the usage computed at claim time. Any finding is recorded
    /// as a problem and fails the recheck.
    fn online_recheck(
        &mut self,
        st: &mut OnlineSalvage,
        dir: SegUid,
        preview: Option<u32>,
    ) -> Result<bool, KernelError> {
        let mut clean = true;
        let entries = self.salvage_dir_entries(dir)?;
        let mut local: HashSet<(u32, u32)> = HashSet::new();
        for (_slot, name, uid, home, _own_cell, _is_dir) in entries {
            let toc_uid = self
                .machine
                .disks
                .pack(home.pack)
                .ok()
                .and_then(|p| p.entry(home.toc).ok())
                .map(|e| e.uid);
            if toc_uid != Some(uid.0) {
                clean = false;
                st.report
                    .problems
                    .push(Problem::DanglingEntry { dir, name, uid });
                continue;
            }
            if !local.insert((home.pack.0, home.toc.0)) {
                clean = false;
                st.report
                    .problems
                    .push(Problem::DoublyClaimedToc { dir, name, home });
            }
        }
        if let Some(actual) = preview {
            let recorded = self.online_cell_recorded(dir)?;
            if recorded != actual {
                clean = false;
                st.report.problems.push(Problem::CellDrift {
                    cell: dir,
                    recorded,
                    actual,
                });
            }
        }
        Ok(clean)
    }

    /// Mapped records governed by `dir`'s quota cell, computed from its
    /// frozen quarantined subtree: every object below `dir` pruned at
    /// deeper quota directories (whose own pages still charge `dir`),
    /// plus the root's own pages when `dir` is the root. Dangling
    /// entries and duplicates of already-claimed TOC entries contribute
    /// nothing — exactly what the later per-directory repairs leave.
    fn online_cell_usage(&mut self, st: &OnlineSalvage, dir: SegUid) -> Result<u32, KernelError> {
        let mut seen = st.claimed.clone();
        let mut used = 0;
        if dir == self.dirm.root() {
            if let Some((home, _, _, _)) = self.dirm.activation_info(dir) {
                used += self.online_records_of(home);
            }
        }
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let entries = self.salvage_dir_entries(d)?;
            for (_slot, _name, uid, home, _own_cell, is_dir) in entries {
                let toc_uid = self
                    .machine
                    .disks
                    .pack(home.pack)
                    .ok()
                    .and_then(|p| p.entry(home.toc).ok())
                    .map(|e| e.uid);
                if toc_uid != Some(uid.0) {
                    continue;
                }
                if !seen.insert((home.pack.0, home.toc.0)) {
                    continue;
                }
                used += self.online_records_of(home);
                if is_dir && !self.qcm.exists(uid) {
                    stack.push(uid);
                }
            }
        }
        Ok(used)
    }

    /// Valid (in-pack) mapped records of one TOC entry.
    fn online_records_of(&self, home: DiskHome) -> u32 {
        match self.machine.disks.pack(home.pack) {
            Ok(pack) => {
                let capacity = pack.capacity();
                match pack.entry(home.toc) {
                    Ok(e) => e
                        .file_map
                        .iter()
                        .flatten()
                        .filter(|r| r.0 < capacity)
                        .count() as u32,
                    Err(_) => 0,
                }
            }
            Err(_) => 0,
        }
    }

    fn online_check_record_pointers(&self, st: &mut OnlineSalvage, home: DiskHome) {
        if let Ok(pack) = self.machine.disks.pack(home.pack) {
            let capacity = pack.capacity();
            if let Ok(entry) = pack.entry(home.toc) {
                for (pageno, rec) in entry.file_map.iter().enumerate() {
                    if let Some(r) = rec {
                        if r.0 >= capacity {
                            st.report.problems.push(Problem::BadRecordPointer {
                                home,
                                pageno: pageno as u32,
                            });
                        }
                    }
                }
            }
        }
    }

    /// What the cell currently records: the core table if resident, the
    /// persistent TOC copy otherwise.
    fn online_cell_recorded(&mut self, cell: SegUid) -> Result<u32, KernelError> {
        match self.qcm.cell_state(cell) {
            Some((_, used)) => Ok(used),
            None => match self.dirm.activation_info(cell) {
                Some((home, _, _, _)) => Ok(self
                    .drm
                    .read_quota_cell(&self.machine, home)?
                    .map(|r| r.used_pages)
                    .unwrap_or(0)),
                None => Err(KernelError::Salvage("quota cell has no recorded home")),
            },
        }
    }

    /// Invariant 2 (second half) for one pack, against the completed
    /// claim set (which includes every TOC entry the service created
    /// while salvage ran — see [`Kernel::salvage_note_created`]).
    fn online_orphan_sweep(
        &mut self,
        st: &mut OnlineSalvage,
        pack_id: mx_hw::PackId,
    ) -> Result<(), KernelError> {
        let mut orphans = Vec::new();
        if let Ok(pack) = self.machine.disks.pack(pack_id) {
            for (toc, entry) in pack.entries() {
                if !st.claimed.contains(&(pack_id.0, toc.0)) {
                    orphans.push((DiskHome { pack: pack_id, toc }, SegUid(entry.uid)));
                }
            }
        }
        for (home, uid) in orphans {
            st.report
                .problems
                .push(Problem::OrphanTocEntry { home, uid });
            // Only reclaim storage for objects nothing names and nothing
            // has active.
            if self.segm.get(uid).is_none() && !self.qcm.exists(uid) {
                self.drm.delete_entry(&mut self.machine, home)?;
                st.report.repairs.push(format!(
                    "reclaimed orphan TOC entry {:?} (uid {})",
                    home, uid.0
                ));
            }
        }
        Ok(())
    }

    /// Invariant 5 for one pack. Runs after that pack's orphan sweep, so
    /// reclaimed entries' records are already back in the free pool;
    /// service operations between steps are atomic, so the pack is
    /// consistent at every sweep.
    fn online_leak_sweep(&mut self, st: &mut OnlineSalvage, pack_id: mx_hw::PackId) {
        let mut leaked = Vec::new();
        if let Ok(pack) = self.machine.disks.pack(pack_id) {
            let mut referenced: HashSet<u32> = HashSet::new();
            for (_, entry) in pack.entries() {
                for rec in entry.file_map.iter().flatten() {
                    referenced.insert(rec.0);
                }
            }
            for rec in pack.allocated_record_nos() {
                if !referenced.contains(&rec.0) {
                    leaked.push(rec);
                }
            }
        }
        for rec in leaked {
            st.report.problems.push(Problem::LeakedRecord {
                pack: pack_id,
                record: rec,
            });
            if let Ok(p) = self.machine.disks.pack_mut(pack_id) {
                let _ = p.free_record(rec);
            }
            st.report.repairs.push(format!(
                "freed leaked record {} on pack {}",
                rec.0, pack_id.0
            ));
        }
    }

    // ---- the quarantine barrier and service hooks ------------------------

    /// Gate barrier: a reference to a directory the online salvager has
    /// not yet proven clean surfaces as [`KernelError::SalvageBusy`].
    /// Files pass — they are servable the moment their parent directory
    /// (the only path to a token for them) is released.
    pub(crate) fn salvage_barrier(&self, token: ObjToken) -> Result<(), KernelError> {
        if self.online.is_some() {
            if let Some(uid) = self.dirm.resolve_token(token) {
                self.salvage_barrier_uid(uid)?;
            }
        }
        Ok(())
    }

    pub(crate) fn salvage_barrier_uid(&self, uid: SegUid) -> Result<(), KernelError> {
        if let Some(o) = &self.online {
            let is_dir = self
                .dirm
                .activation_info(uid)
                .map(|(_, _, d, _)| d)
                .unwrap_or(false);
            if is_dir && !o.released.contains(&uid) {
                return Err(KernelError::SalvageBusy);
            }
        }
        Ok(())
    }

    /// Records a TOC entry the *service* created while the salvager is
    /// running, so the finalize orphan sweep does not reclaim it. A
    /// freshly created directory is trivially clean and born released.
    pub(crate) fn salvage_note_created(&mut self, uid: SegUid, is_dir: bool) {
        if self.online.is_some() {
            let home = self.dirm.home_of(uid);
            if let Some(o) = &mut self.online {
                if let Some(h) = home {
                    o.claimed.insert((h.pack.0, h.toc.0));
                }
                if is_dir {
                    o.released.insert(uid);
                }
            }
        }
    }

    /// Records a segment's relocation target (a fresh TOC entry) while
    /// the salvager is running.
    pub(crate) fn salvage_note_relocated(&mut self, new_home: DiskHome) {
        if let Some(o) = &mut self.online {
            o.claimed.insert((new_home.pack.0, new_home.toc.0));
        }
    }
}

/// Why the test-only cheating salvager misbehaves (the S1 planted-cheat
/// self-check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineCheat {
    /// Release a quota directory without repairing its drifted cell.
    ReleaseBeforeCellRepair,
}

/// Progress from one [`Kernel::online_salvage_step`].
#[derive(Debug, Clone)]
pub enum OnlineProgress {
    /// A directory was claimed, repaired, rechecked and released into
    /// service.
    Released {
        /// The directory now servable.
        dir: SegUid,
        /// The post-repair recheck found nothing left wrong.
        recheck_clean: bool,
        /// Problems recorded while claiming this directory.
        problems_found: u32,
        /// Repairs performed on this directory.
        repairs_made: u32,
    },
    /// A per-pack finalize sweep ran.
    Finalized {
        /// The pack swept.
        pack: mx_hw::PackId,
        /// False: orphan reclaim; true: leaked-record sweep.
        leaks: bool,
    },
    /// The hierarchy is fully salvaged; the barrier has lifted.
    Done {
        /// The accumulated findings and repairs.
        report: SalvageReport,
    },
    /// No online salvage is in progress.
    Idle,
}

#[derive(Debug)]
enum FinalizeStep {
    Orphans(mx_hw::PackId),
    Leaks(mx_hw::PackId),
}

/// State of an in-progress incremental salvage: the released (servable)
/// directories, the claim frontier, the global claim set, and the
/// accumulated findings.
#[derive(Debug)]
pub(crate) struct OnlineSalvage {
    pub(crate) released: HashSet<SegUid>,
    frontier: VecDeque<SegUid>,
    claimed: HashSet<(u32, u32)>,
    finalize: VecDeque<FinalizeStep>,
    finalize_built: bool,
    report: SalvageReport,
    cheat: Option<OnlineCheat>,
    dirs_released: u32,
}

/// One live directory entry as the salvager sees it:
/// `(slot, name, uid, home, own_cell, is_dir)`.
type SalvageEntry = (u32, String, SegUid, DiskHome, SegUid, bool);

impl DirectoryManager {
    /// Salvager access: every live entry of `dir`, read from segment
    /// storage.
    pub(crate) fn salvage_entries(
        &mut self,
        ctx: &mut FsCtx<'_>,
        dir: SegUid,
    ) -> Result<Vec<SalvageEntry>, KernelError> {
        self.ensure_active(ctx, dir)?;
        let count = self.entry_count(ctx, dir)?;
        let mut out = Vec::new();
        for slot in 0..count {
            if let Some(e) = self.read_entry(ctx, dir, slot)? {
                out.push((slot, e.name, e.uid, e.home, e.own_cell, e.is_dir));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::types::{Acl, UserId};
    use mx_aim::Label;
    use mx_hw::Word;

    fn boot() -> (Kernel, crate::types::ProcessId) {
        let mut k = Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 300,
            ..KernelConfig::default()
        });
        k.register_account("u", UserId(1), 1, Label::BOTTOM);
        let pid = k.login_residue("u", 1, Label::BOTTOM).unwrap();
        (k, pid)
    }

    #[test]
    fn a_healthy_system_salvages_clean() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let dir = k
            .create_entry(pid, root, "d", Acl::owner(UserId(1)), Label::BOTTOM, true)
            .unwrap();
        let f = k
            .create_entry(pid, dir, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
        assert!(report.objects_checked >= 3, "d, f, and the state segment");
        assert!(report.cells_checked >= 1);
    }

    #[test]
    fn orphan_toc_entries_are_found_and_reclaimed() {
        let (mut k, _pid) = boot();
        // Inject: a TOC entry nothing catalogues.
        let orphan_toc = k
            .machine
            .disks
            .pack_mut(mx_hw::PackId(1))
            .unwrap()
            .create_entry(0xDEAD)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::OrphanTocEntry { uid, .. } if uid.0 == 0xDEAD)));
        // Repair reclaims it.
        let report = k.salvage(true).unwrap();
        assert!(!report.repairs.is_empty());
        assert!(k
            .machine
            .disks
            .pack(mx_hw::PackId(1))
            .unwrap()
            .entry(orphan_toc)
            .is_err());
        // And the system is clean afterwards.
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn leaked_records_are_found_and_freed() {
        let (mut k, _pid) = boot();
        // Inject: a record allocated but referenced by no file map, as a
        // crash between allocation and the file-map commit leaves it.
        let pack = mx_hw::PackId(1);
        let leaked = k
            .machine
            .disks
            .pack_mut(pack)
            .unwrap()
            .allocate_record()
            .unwrap();
        let free_before = k.machine.disks.pack(pack).unwrap().free_records();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::LeakedRecord { record, .. } if *record == leaked)));
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("leaked record")));
        assert_eq!(
            k.machine.disks.pack(pack).unwrap().free_records(),
            free_before + 1,
            "record returned to the free pool"
        );
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn cell_drift_is_detected_and_repaired() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(pid, root, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        // Inject drift: over-charge the root cell behind the system's back.
        let mut flows = mx_aim::FlowTracker::new();
        k.qcm
            .charge(&mut k.machine, SegUid(1), 3, Label::BOTTOM, &mut flows)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report.problems.iter().any(|p| matches!(
            p,
            Problem::CellDrift {
                cell: SegUid(1),
                ..
            }
        )));
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("reset cell 1")));
        let report = k.salvage(false).unwrap();
        assert!(
            report.clean(),
            "problems after repair: {:?}",
            report.problems
        );
    }

    /// Pokes a raw word of the root directory segment — fault injection
    /// for catalogue damage.
    fn poke_root_dir(k: &mut Kernel, wordno: u32, value: u64) {
        k.segm
            .write_word(
                &mut k.machine,
                &mut k.drm,
                &mut k.qcm,
                &mut k.pfm,
                &mut k.vpm,
                &mut k.flows,
                SegUid(1),
                wordno,
                Word::new(value),
                Label::BOTTOM,
            )
            .unwrap();
    }

    #[test]
    fn doubly_claimed_toc_entries_are_found_and_cleared() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f1 = k
            .create_entry(pid, root, "f1", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let _f2 = k
            .create_entry(pid, root, "f2", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let u1 = k.uid_of_token(f1).unwrap();
        let h1 = k.dirm.home_of(u1).unwrap();
        // Root slots: 0 = "processes", 1 = "f1", 2 = "f2". Duplicate
        // f1's claim into f2's entry, as a torn directory page would.
        let base2 = 1 + 2 * crate::directory::ENTRY_WORDS;
        poke_root_dir(&mut k, base2, u1.0);
        poke_root_dir(&mut k, base2 + 2, u64::from(h1.pack.0));
        poke_root_dir(&mut k, base2 + 3, u64::from(h1.toc.0));
        let report = k.salvage(false).unwrap();
        assert!(
            report
                .problems
                .iter()
                .any(|p| matches!(p, Problem::DoublyClaimedToc { name, .. } if name == "f2")),
            "problems: {:?}",
            report.problems
        );
        // Repair clears the duplicate (and reclaims f2's orphaned TOC
        // entry); a second pass is clean.
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("duplicate claim")));
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
        // The surviving claim still works.
        let segno = k.initiate(pid, f1).unwrap();
        k.write_word(pid, segno, 0, Word::new(3)).unwrap();
    }

    #[test]
    fn dangling_entry_repair_converges() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(
                pid,
                root,
                "victim",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        let uid = k.uid_of_token(f).unwrap();
        let home = k.dirm.home_of(uid).unwrap();
        k.machine
            .disks
            .pack_mut(home.pack)
            .unwrap()
            .delete_entry(home.toc)
            .unwrap();
        let report = k.salvage(true).unwrap();
        assert!(report.repairs.iter().any(|r| r.contains("dangling entry")));
        let report = k.salvage(false).unwrap();
        assert!(report.clean(), "problems: {:?}", report.problems);
    }

    fn config() -> KernelConfig {
        KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 4,
            root_quota: 300,
            ..KernelConfig::default()
        }
    }

    #[test]
    fn online_salvage_releases_incrementally_and_serves_behind_barrier() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let dir = k
            .create_entry(pid, root, "d", Acl::owner(UserId(1)), Label::BOTTOM, true)
            .unwrap();
        let f = k
            .create_entry(pid, dir, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        k.sync_to_disk().unwrap();
        let image = k.machine.disks.clone();

        let mut rk = Kernel::boot_from_image(config(), image).unwrap();
        rk.register_account("u", UserId(1), 1, Label::BOTTOM);
        rk.begin_online_salvage();
        assert!(rk.online_salvage_active());
        // Everything is quarantined: even login is barred (the process
        // state segment lives under `>processes`).
        assert_eq!(
            rk.login_residue("u", 1, Label::BOTTOM),
            Err(KernelError::SalvageBusy)
        );
        // Root releases first; `>processes` is root slot 0, then "d".
        match rk.online_salvage_step().unwrap() {
            OnlineProgress::Released { recheck_clean, .. } => assert!(recheck_clean),
            other => panic!("expected root release, got {other:?}"),
        }
        assert_eq!(
            rk.login_residue("u", 1, Label::BOTTOM),
            Err(KernelError::SalvageBusy),
            "processes dir still quarantined"
        );
        rk.online_salvage_step().unwrap();
        let pid = rk.login_residue("u", 1, Label::BOTTOM).unwrap();
        // "d" is still quarantined: searching the (released) root for it
        // works, but entering it does not.
        let root2 = rk.root_token();
        let dtok = rk.dir_search(pid, root2, "d").unwrap();
        assert_eq!(rk.list_dir(pid, dtok), Err(KernelError::SalvageBusy));
        assert_eq!(rk.initiate(pid, dtok), Err(KernelError::SalvageBusy));
        match rk.online_salvage_step().unwrap() {
            OnlineProgress::Released {
                dir, recheck_clean, ..
            } => {
                assert!(recheck_clean);
                assert_eq!(rk.dirm.resolve_token(dtok), Some(dir));
            }
            other => panic!("expected d release, got {other:?}"),
        }
        // Released: serving works, including creates (noted so the
        // orphan sweep below does not reclaim them).
        let ftok = rk.dir_search(pid, dtok, "f").unwrap();
        let segno = rk.initiate(pid, ftok).unwrap();
        assert_eq!(rk.read_word(pid, segno, 0).unwrap(), Word::new(5));
        let g = rk
            .create_entry(pid, dtok, "g", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let gseg = rk.initiate(pid, g).unwrap();
        rk.write_word(pid, gseg, 0, Word::new(7)).unwrap();
        // Drain to completion: the barrier lifts, the service-created
        // entry survived, and a full offline pass agrees nothing is
        // left wrong.
        let report = loop {
            match rk.online_salvage_step().unwrap() {
                OnlineProgress::Done { report } => break report,
                OnlineProgress::Idle => panic!("went idle before done"),
                _ => {}
            }
        };
        assert!(!rk.online_salvage_active());
        assert!(
            report.clean(),
            "crash-free image online-salvages clean: {:?}",
            report.problems
        );
        assert_eq!(rk.read_word(pid, gseg, 0).unwrap(), Word::new(7));
        let offline = rk.salvage(false).unwrap();
        assert!(offline.clean(), "offline recheck: {:?}", offline.problems);
    }

    #[test]
    fn online_cheat_release_before_cell_repair_fails_recheck() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(pid, root, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        k.write_word(pid, segno, 0, Word::new(5)).unwrap();
        k.sync_to_disk().unwrap();
        let image = k.machine.disks.clone();

        let run = |cheat: Option<OnlineCheat>| {
            let mut rk = Kernel::boot_from_image(config(), image.clone()).unwrap();
            // Torn quota cell: the root cell over-charged behind the
            // system's back.
            let mut flows = mx_aim::FlowTracker::new();
            rk.qcm
                .charge(&mut rk.machine, SegUid(1), 3, Label::BOTTOM, &mut flows)
                .unwrap();
            rk.begin_online_salvage_with_cheat(cheat);
            match rk.online_salvage_step().unwrap() {
                OnlineProgress::Released {
                    recheck_clean,
                    repairs_made,
                    ..
                } => (recheck_clean, repairs_made),
                other => panic!("expected root release, got {other:?}"),
            }
        };
        let (honest_clean, honest_repairs) = run(None);
        assert!(honest_clean, "honest salvager repairs the cell");
        assert!(honest_repairs > 0);
        let (cheat_clean, _) = run(Some(OnlineCheat::ReleaseBeforeCellRepair));
        assert!(
            !cheat_clean,
            "releasing before the cell repair must fail the recheck"
        );
    }

    #[test]
    fn dangling_entries_are_reported() {
        let (mut k, pid) = boot();
        let root = k.root_token();
        let f = k
            .create_entry(
                pid,
                root,
                "victim",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        // Inject: delete the TOC entry out from under the catalogue.
        let uid = k.uid_of_token(f).unwrap();
        let home = k.dirm.home_of(uid).unwrap();
        k.machine
            .disks
            .pack_mut(home.pack)
            .unwrap()
            .delete_entry(home.toc)
            .unwrap();
        let report = k.salvage(false).unwrap();
        assert!(report
            .problems
            .iter()
            .any(|p| matches!(p, Problem::DanglingEntry { name, .. } if name == "victim")));
    }
}
