//! Kernel/Multics: the loop-free, type-extended security kernel.
//!
//! This crate is the paper's primary contribution rendered as running
//! code: the file system, memory management and processor management of
//! Multics reorganized as a lattice of *object managers* (Figure 4), on
//! the hardware base with the paper's proposed additions
//! ([`mx_hw::HwFeatures::KERNEL_PROPOSED`]).
//!
//! Where the old supervisor (`mx-legacy`) is one struct whose modules
//! share writable data freely, every manager here is a separate type and
//! every dependency is explicit in a function signature: a manager
//! receives mutable references *only* to the managers below it in the
//! lattice. The registry in [`registry`] declares the same structure for
//! analysis, and a test proves it loop-free.
//!
//! Bottom-up:
//!
//! * [`core_segment`] — fixed core segments, allocated at initialization,
//!   readable and writable and nothing else; every module's maps and
//!   programs live here without creating dependency loops.
//! * [`vproc`] — a *fixed* number of virtual processors whose states are
//!   always in core segments; eventcount/sequencer primitives; some VPs
//!   permanently bound to kernel modules (the page-purifier and core
//!   manager daemons, the user-process scheduler).
//! * [`disk_record`] — disk records and tables of contents.
//! * [`quota_cell`] — quota cells as explicit objects with their own
//!   manager, cached in a core-segment table, stored in pack TOCs.
//! * [`page_frame`] — page frames and page tables; missing-page service
//!   using the hardware lock bit (no interpretive retranslation);
//!   zero-page reversion; the write-behind purifier daemon.
//! * [`segment`] — active segments: activation *without* reference to
//!   the directory hierarchy, growth under a statically bound quota
//!   cell, relocation on full packs reported by **upward signal**.
//! * [`known_segment`] — per-process segment numbering and the quota
//!   exception service.
//! * [`directory`] — directories, ACLs, the single-directory search
//!   primitive with Bratt's mythical identifiers, childless-only quota
//!   designation, and the receiving end of the moved-segment signal.
//! * [`user_process`] — an arbitrary number of user processes multiplexed
//!   over the fixed virtual processors, with upward event delivery
//!   through the real-memory message queue.
//! * [`demux`] — the network-independent demultiplexer residue.
//! * [`kernel`] — the gatekeeper: the (small) user-callable gate set,
//!   AIM checks, fault dispatch, and the upward-signal trampoline.

pub mod core_segment;
pub mod demux;
pub mod directory;
pub mod disk_record;
pub mod error;
pub mod kernel;
pub mod known_segment;
pub mod page_frame;
pub mod quota_cell;
pub mod registry;
pub mod salvager;
pub mod segment;
pub mod user_process;
pub mod vproc;

pub use error::{KernelError, Signal};
pub use kernel::{Kernel, KernelConfig, KernelStats, ProgramOutcome, ProgramRun};
pub use registry::{kernel_runtime_lattice, kernel_structure};
pub use salvager::{OnlineCheat, OnlineProgress, Problem, SalvageReport};
pub use types::*;

/// Charges `n` abstract instructions of kernel code to the machine's
/// clock. The new kernel is written uniformly in the high-level language
/// (the paper's EUCLID plan; PL/I cost model), so every charge uses the
/// PL/I expansion factor — the "factor of two in the speed of the code"
/// that recoding costs.
pub(crate) fn charge_pli(machine: &mut mx_hw::Machine, n: u64) {
    let cost = machine.cost;
    machine
        .clock
        .charge_instructions(&cost, n, mx_hw::Language::Pli);
}

/// Common identifier types shared by the managers.
pub mod types {
    /// A segment's unique identifier.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct SegUid(pub u64);

    /// A user principal.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct UserId(pub u32);

    /// A user process (unbounded supply).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct ProcessId(pub u32);

    /// An opaque identifier returned by the directory-search primitive —
    /// real or mythical, deliberately indistinguishable.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct ObjToken(pub u64);

    /// Where a segment lives on disk.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct DiskHome {
        /// Containing pack.
        pub pack: mx_hw::PackId,
        /// Index into the pack's table of contents.
        pub toc: mx_hw::TocIndex,
    }

    /// A discretionary access right.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum AccessRight {
        /// Read / search.
        Read,
        /// Write / modify.
        Write,
        /// Execute.
        Execute,
    }

    /// An access control list (same structure as the old system's; the
    /// user-visible ACL semantics were deliberately kept).
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct Acl {
        terms: Vec<(UserId, [bool; 3])>,
    }

    impl Acl {
        /// An empty ACL.
        pub fn new() -> Self {
            Self::default()
        }

        /// An ACL granting one user everything.
        pub fn owner(user: UserId) -> Self {
            let mut a = Self::new();
            a.grant(
                user,
                &[AccessRight::Read, AccessRight::Write, AccessRight::Execute],
            );
            a
        }

        /// Grants rights to a user.
        pub fn grant(&mut self, user: UserId, rights: &[AccessRight]) {
            let slot = |r: &AccessRight| match r {
                AccessRight::Read => 0,
                AccessRight::Write => 1,
                AccessRight::Execute => 2,
            };
            if let Some(term) = self.terms.iter_mut().find(|(u, _)| *u == user) {
                for r in rights {
                    term.1[slot(r)] = true;
                }
            } else {
                let mut bits = [false; 3];
                for r in rights {
                    bits[slot(r)] = true;
                }
                self.terms.push((user, bits));
            }
        }

        /// Revokes all of a user's rights.
        pub fn revoke(&mut self, user: UserId) {
            self.terms.retain(|(u, _)| *u != user);
        }

        /// True if the user holds the right.
        pub fn permits(&self, user: UserId, right: AccessRight) -> bool {
            let i = match right {
                AccessRight::Read => 0,
                AccessRight::Write => 1,
                AccessRight::Execute => 2,
            };
            self.terms
                .iter()
                .find(|(u, _)| *u == user)
                .map(|(_, b)| b[i])
                .unwrap_or(false)
        }

        /// Packs up to four terms into two 36-bit words.
        pub fn pack(&self) -> (u64, u64) {
            let mut users = 0u64;
            let mut rights = 0u64;
            for (i, (u, r)) in self.terms.iter().take(4).enumerate() {
                users |= (u.0 as u64 & 0xFF) << (i * 9);
                let bits = (r[0] as u64) | (r[1] as u64) << 1 | (r[2] as u64) << 2 | 0b1000;
                rights |= bits << (i * 4);
            }
            (users & ((1 << 36) - 1), rights & ((1 << 36) - 1))
        }

        /// Unpacks an ACL packed by [`Acl::pack`].
        pub fn unpack(users: u64, rights: u64) -> Self {
            let mut acl = Self::new();
            for i in 0..4 {
                let bits = (rights >> (i * 4)) & 0xF;
                if bits & 0b1000 == 0 {
                    continue;
                }
                let user = UserId(((users >> (i * 9)) & 0xFF) as u32);
                let mut list = Vec::new();
                if bits & 1 != 0 {
                    list.push(AccessRight::Read);
                }
                if bits & 2 != 0 {
                    list.push(AccessRight::Write);
                }
                if bits & 4 != 0 {
                    list.push(AccessRight::Execute);
                }
                acl.grant(user, &list);
            }
            acl
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn acl_round_trip() {
            let mut a = Acl::new();
            a.grant(UserId(3), &[AccessRight::Read, AccessRight::Write]);
            a.grant(UserId(0), &[AccessRight::Execute]);
            let (u, r) = a.pack();
            let b = Acl::unpack(u, r);
            assert!(b.permits(UserId(3), AccessRight::Write));
            assert!(b.permits(UserId(0), AccessRight::Execute));
            assert!(!b.permits(UserId(3), AccessRight::Execute));
            assert!(!b.permits(UserId(1), AccessRight::Read));
        }

        #[test]
        fn revoke_removes_term() {
            let mut a = Acl::owner(UserId(5));
            a.revoke(UserId(5));
            assert!(!a.permits(UserId(5), AccessRight::Read));
        }
    }
}
