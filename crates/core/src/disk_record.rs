//! The Disk Record Manager.
//!
//! The manager of disk-record objects and table-of-contents entries: the
//! component layer under both the page-frame manager (records hold
//! pages) and the quota-cell manager (cells persist in TOC entries).
//! It wraps the raw pack hardware with kernel error reporting and clock
//! charges; it knows nothing about segments, directories, or quota.

use crate::error::KernelError;
use crate::types::DiskHome;
use mx_hw::{DiskPack, Machine, PackId, RecordNo, TocIndex};

/// The disk-record object manager.
#[derive(Debug, Default, Clone)]
pub struct DiskRecordManager {
    /// Records allocated (experiment counter).
    pub allocations: u64,
    /// Full-pack conditions surfaced.
    pub pack_full_events: u64,
}

impl DiskRecordManager {
    /// A fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a TOC entry for a new segment on `pack`.
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] when the TOC is full.
    pub fn create_entry(
        &mut self,
        machine: &mut Machine,
        pack: PackId,
        uid: u64,
    ) -> Result<TocIndex, KernelError> {
        machine
            .disks
            .pack_mut(pack)
            .map_err(|_| KernelError::TableFull("pack"))?
            .create_entry(uid)
            .map_err(|_| KernelError::TableFull("table of contents"))
    }

    /// Creates a TOC entry on `preferred` if it has room, otherwise on
    /// any pack with a free slot (fullest-free-records first).
    ///
    /// # Errors
    ///
    /// [`KernelError::TableFull`] when every TOC in the system is full.
    pub fn create_entry_anywhere(
        &mut self,
        machine: &mut Machine,
        preferred: PackId,
        uid: u64,
    ) -> Result<DiskHome, KernelError> {
        if let Ok(toc) = self.create_entry(machine, preferred, uid) {
            return Ok(DiskHome {
                pack: preferred,
                toc,
            });
        }
        let mut candidates: Vec<(u32, PackId)> = machine
            .disks
            .packs()
            .filter(|p| p.id != preferred)
            .map(|p| (p.free_records(), p.id))
            .collect();
        candidates.sort_by(|a, b| b.cmp(a));
        for (_, pack) in candidates {
            if let Ok(toc) = self.create_entry(machine, pack, uid) {
                return Ok(DiskHome { pack, toc });
            }
        }
        Err(KernelError::TableFull("table of contents"))
    }

    /// Deletes a TOC entry, freeing its records.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn delete_entry(
        &mut self,
        machine: &mut Machine,
        home: DiskHome,
    ) -> Result<(), KernelError> {
        machine
            .disks
            .pack_mut(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .delete_entry(home.toc)
            .map_err(|_| KernelError::NotActive)
    }

    /// Allocates a record on `pack`.
    ///
    /// # Errors
    ///
    /// [`KernelError::AllPacksFull`] on the full-pack condition — the
    /// caller (the segment manager) decides whether to relocate.
    pub fn allocate(
        &mut self,
        machine: &mut Machine,
        pack: PackId,
    ) -> Result<RecordNo, KernelError> {
        match machine
            .disks
            .pack_mut(pack)
            .map_err(|_| KernelError::NotActive)?
            .allocate_record()
        {
            Ok(r) => {
                self.allocations += 1;
                Ok(r)
            }
            Err(_) => {
                self.pack_full_events += 1;
                Err(KernelError::AllPacksFull)
            }
        }
    }

    /// Frees a record.
    ///
    /// # Panics
    ///
    /// Panics if the record was not allocated — only the kernel hands
    /// out record names, so this is an invariant violation.
    pub fn free(&self, machine: &mut Machine, pack: PackId, record: RecordNo) {
        machine
            .disks
            .pack_mut(pack)
            .expect("known pack")
            .free_record(record)
            .expect("record was allocated");
    }

    /// Shared access to a pack (read-only operations).
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown pack.
    pub fn pack<'m>(
        &self,
        machine: &'m Machine,
        pack: PackId,
    ) -> Result<&'m DiskPack, KernelError> {
        machine.disks.pack(pack).map_err(|_| KernelError::NotActive)
    }

    /// The pack with the most free space, excluding `exclude` — the
    /// relocation target chooser.
    pub fn emptiest_other(&self, machine: &Machine, exclude: PackId) -> Option<PackId> {
        machine.disks.emptiest_pack(exclude)
    }

    /// The file map entry for page `pageno` of the segment at `home`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn record_of(
        &self,
        machine: &Machine,
        home: DiskHome,
        pageno: u32,
    ) -> Result<Option<RecordNo>, KernelError> {
        let entry = machine
            .disks
            .pack(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry(home.toc)
            .map_err(|_| KernelError::NotActive)?;
        Ok(entry.file_map.get(pageno as usize).copied().flatten())
    }

    /// Current length (pages) of the segment at `home`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn len_pages(&self, machine: &Machine, home: DiskHome) -> Result<u32, KernelError> {
        Ok(machine
            .disks
            .pack(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry(home.toc)
            .map_err(|_| KernelError::NotActive)?
            .len_pages())
    }

    /// Records currently charged to the segment at `home`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn records_used(&self, machine: &Machine, home: DiskHome) -> Result<u32, KernelError> {
        Ok(machine
            .disks
            .pack(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry(home.toc)
            .map_err(|_| KernelError::NotActive)?
            .records_used())
    }

    /// Points page `pageno` of the file map at `record` (growing the map
    /// as needed).
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn set_record(
        &mut self,
        machine: &mut Machine,
        home: DiskHome,
        pageno: u32,
        record: Option<RecordNo>,
    ) -> Result<(), KernelError> {
        let entry = machine
            .disks
            .pack_mut(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry_mut(home.toc)
            .map_err(|_| KernelError::NotActive)?;
        if entry.file_map.len() <= pageno as usize {
            entry.file_map.resize(pageno as usize + 1, None);
        }
        entry.file_map[pageno as usize] = record;
        Ok(())
    }

    /// Reads the on-disk quota cell of the entry at `home`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn read_quota_cell(
        &self,
        machine: &Machine,
        home: DiskHome,
    ) -> Result<Option<mx_hw::disk::QuotaCellRecord>, KernelError> {
        Ok(machine
            .disks
            .pack(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry(home.toc)
            .map_err(|_| KernelError::NotActive)?
            .quota_cell)
    }

    /// Writes the on-disk quota cell of the entry at `home`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotActive`] for an unknown entry.
    pub fn write_quota_cell(
        &mut self,
        machine: &mut Machine,
        home: DiskHome,
        cell: Option<mx_hw::disk::QuotaCellRecord>,
    ) -> Result<(), KernelError> {
        machine
            .disks
            .pack_mut(home.pack)
            .map_err(|_| KernelError::NotActive)?
            .entry_mut(home.toc)
            .map_err(|_| KernelError::NotActive)?
            .quota_cell = cell;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_hw::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            packs: 2,
            records_per_pack: 4,
            toc_slots_per_pack: 4,
            ..MachineConfig::kernel_proposed()
        })
    }

    #[test]
    fn entry_and_record_lifecycle() {
        let mut m = machine();
        let mut drm = DiskRecordManager::new();
        let toc = drm.create_entry(&mut m, PackId(0), 42).unwrap();
        let home = DiskHome {
            pack: PackId(0),
            toc,
        };
        assert_eq!(drm.len_pages(&m, home).unwrap(), 0);
        let rec = drm.allocate(&mut m, PackId(0)).unwrap();
        drm.set_record(&mut m, home, 2, Some(rec)).unwrap();
        assert_eq!(drm.len_pages(&m, home).unwrap(), 3);
        assert_eq!(drm.records_used(&m, home).unwrap(), 1);
        assert_eq!(drm.record_of(&m, home, 2).unwrap(), Some(rec));
        assert_eq!(
            drm.record_of(&m, home, 0).unwrap(),
            None,
            "hole is a zero flag"
        );
        drm.delete_entry(&mut m, home).unwrap();
        assert!(drm.len_pages(&m, home).is_err());
    }

    #[test]
    fn pack_full_is_surfaced_and_counted() {
        let mut m = machine();
        let mut drm = DiskRecordManager::new();
        for _ in 0..4 {
            drm.allocate(&mut m, PackId(0)).unwrap();
        }
        assert_eq!(
            drm.allocate(&mut m, PackId(0)),
            Err(KernelError::AllPacksFull)
        );
        assert_eq!(drm.pack_full_events, 1);
        assert_eq!(drm.emptiest_other(&m, PackId(0)), Some(PackId(1)));
    }

    #[test]
    fn quota_cell_persists_in_toc() {
        let mut m = machine();
        let mut drm = DiskRecordManager::new();
        let toc = drm.create_entry(&mut m, PackId(1), 7).unwrap();
        let home = DiskHome {
            pack: PackId(1),
            toc,
        };
        assert_eq!(drm.read_quota_cell(&m, home).unwrap(), None);
        drm.write_quota_cell(
            &mut m,
            home,
            Some(mx_hw::disk::QuotaCellRecord {
                limit_pages: 9,
                used_pages: 2,
            }),
        )
        .unwrap();
        assert_eq!(
            drm.read_quota_cell(&m, home).unwrap().unwrap().limit_pages,
            9
        );
    }
}
