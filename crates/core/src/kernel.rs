//! The gatekeeper: kernel assembly, the user-callable gates, fault
//! dispatch, and the upward-signal trampoline.
//!
//! [`Kernel`] owns the machine and every object manager, and exposes the
//! deliberately small set of user-callable **gates**
//! ([`Kernel::USER_GATES`]) — the paper's point that extracting the
//! linker, name space, answering service and network code "had a very
//! strong effect in reducing the complexity of the interface that the
//! user sees to the kernel". Pathname expansion, linking, login policy
//! and network protocol all live in `mx-user`, composed from these
//! gates.
//!
//! The gatekeeper also hosts the two fault paths the new hardware
//! enables — the descriptor-lock missing-page path and the quota-trap
//! path — and the trampoline that consumes [`Signal`]s: when a gate call
//! or fault service returns `Err(Upward(sig))`, every kernel frame below
//! has already finished its work; the trampoline invokes the directory
//! manager to record the move, then re-executes the original request.

use crate::core_segment::CoreSegmentManager;
use crate::demux::{DemuxManager, FramingSpec, StreamId};
use crate::directory::{DirectoryManager, FsCtx};
use crate::disk_record::DiskRecordManager;
use crate::error::{KernelError, Signal};
use crate::known_segment::{KnownSegmentManager, MAX_SEGNO};
use crate::page_frame::PageFrameManager;
use crate::quota_cell::QuotaCellManager;
use crate::segment::SegmentManager;
use crate::types::{Acl, ObjToken, ProcessId, SegUid, UserId};
use crate::user_process::{Dispatch, KernelEvent, UserProcessManager};
use crate::vproc::{VirtualProcessorManager, VpId, VP_SWITCH_CYCLES};
use mx_aim::{FlowTracker, Label, ReferenceMonitor};
use mx_hw::cpu::{DescBase, Ptw, Sdw};
use mx_hw::meter::{CounterSet, Subsystem};
use mx_hw::{Fault, HwFeatures, Machine, MachineConfig, ProcessorId, VirtAddr, Word};
use std::collections::HashMap;

/// Bootload configuration for Kernel/Multics.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Core frames.
    pub frames: usize,
    /// Disk packs.
    pub packs: u32,
    /// Records per pack.
    pub records_per_pack: u32,
    /// TOC slots per pack.
    pub toc_slots_per_pack: u32,
    /// Fixed virtual processor count (first three are kernel-bound).
    pub vps: u32,
    /// Page-table pool slots (max simultaneously active segments).
    pub pt_slots: u32,
    /// Process slots (wired descriptor-segment frames).
    pub max_processes: u32,
    /// Real-memory event queue capacity.
    pub event_queue: usize,
    /// Root quota cell limit, pages.
    pub root_quota: u32,
    /// Seed for the identifier secret (deterministic experiments).
    pub seed: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            frames: 256,
            packs: 2,
            records_per_pack: 1024,
            toc_slots_per_pack: 256,
            vps: 6,
            pt_slots: 64,
            max_processes: 16,
            event_queue: 64,
            root_quota: 1500,
            seed: 0x6b65_726e_656c,
        }
    }
}

/// Gatekeeper counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Missing-segment faults dispatched.
    pub segment_faults: u64,
    /// Missing-page faults dispatched (lock-bit protocol).
    pub page_faults: u64,
    /// Locked-descriptor exceptions (waited on the page eventcount).
    pub locked_waits: u64,
    /// Hardware quota exceptions dispatched.
    pub quota_faults: u64,
    /// Upward signals consumed by the trampoline.
    pub trampolines: u64,
}

impl KernelStats {
    /// Renders the counters into the shared registry form, so kernel and
    /// legacy statistics report through one interface.
    pub fn counters(&self) -> CounterSet {
        let mut cs = CounterSet::new();
        cs.set("segment_faults", self.segment_faults);
        cs.set("page_faults", self.page_faults);
        cs.set("locked_waits", self.locked_waits);
        cs.set("quota_faults", self.quota_faults);
        cs.set("trampolines", self.trampolines);
        cs
    }
}

#[derive(Debug, Clone)]
struct Account {
    user: UserId,
    password_hash: u64,
    clearance: Label,
    charge_units: u64,
}

/// How a program run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramOutcome {
    /// The program executed HLT.
    Halted,
    /// An undecodable instruction word was fetched.
    Illegal,
    /// The step budget ran out.
    StepLimit,
}

/// The result of [`Kernel::run_program`].
#[derive(Debug, Clone, Copy)]
pub struct ProgramRun {
    /// Instructions completed.
    pub steps: u64,
    /// Why execution stopped.
    pub outcome: ProgramOutcome,
    /// Final register file.
    pub regs: mx_hw::interp::Registers,
}

/// Kernel/Multics, assembled.
#[derive(Debug)]
pub struct Kernel {
    /// The machine (with the paper's proposed hardware additions).
    pub machine: Machine,
    /// Core segment manager (sealed after boot).
    pub csm: CoreSegmentManager,
    /// Virtual processor manager.
    pub vpm: VirtualProcessorManager,
    /// Disk record manager.
    pub drm: DiskRecordManager,
    /// Quota cell manager.
    pub qcm: QuotaCellManager,
    /// Page frame manager.
    pub pfm: PageFrameManager,
    /// Segment manager.
    pub segm: SegmentManager,
    /// Known segment manager.
    pub ksm: KnownSegmentManager,
    /// Directory manager.
    pub dirm: DirectoryManager,
    /// User process manager.
    pub upm: UserProcessManager,
    /// Network-independent demultiplexer.
    pub demux: DemuxManager,
    /// AIM reference monitor.
    pub monitor: ReferenceMonitor,
    /// Observed information flows.
    pub flows: FlowTracker,
    /// Gatekeeper counters.
    pub stats: KernelStats,
    accounts: HashMap<String, Account>,
    processes_dir: ObjToken,
    state_counter: u64,
    /// In-progress incremental salvage, if any (see
    /// [`Kernel::begin_online_salvage`]). While set, gates into
    /// unreleased directories surface [`KernelError::SalvageBusy`].
    pub(crate) online: Option<crate::salvager::OnlineSalvage>,
}

macro_rules! ctx {
    ($k:expr) => {
        FsCtx {
            machine: &mut $k.machine,
            drm: &mut $k.drm,
            qcm: &mut $k.qcm,
            pfm: &mut $k.pfm,
            vpm: &mut $k.vpm,
            segm: &mut $k.segm,
            flows: &mut $k.flows,
            monitor: &mut $k.monitor,
        }
    };
}

impl Kernel {
    /// The user-callable gates — the whole protected interface.
    ///
    /// Eighteen names, against the old supervisor's 157 user gates: the
    /// interface-shrinking effect the paper attributes to moving the
    /// linker, name space, answering service and network code out.
    pub const USER_GATES: &'static [&'static str] = &[
        "login_residue",
        "logout_residue",
        "dir_search",
        "initiate",
        "terminate",
        "create_entry",
        "delete_entry",
        "list_dir",
        "set_quota",
        "clear_quota",
        "read_word",
        "write_word",
        "segment_meta",
        "ec_create",
        "ec_advance",
        "ec_read",
        "demux_claim",
        "demux_read",
    ];

    /// Everything below the file system: the machine, core segments,
    /// virtual processors, the cell table, and the page-frame manager —
    /// shared by the cold bootload and the recovery bootload.
    fn assemble(
        config: &KernelConfig,
    ) -> (
        Machine,
        CoreSegmentManager,
        VirtualProcessorManager,
        QuotaCellManager,
        PageFrameManager,
    ) {
        let mut machine = Machine::new(MachineConfig {
            frames: config.frames,
            cpus: 2,
            packs: config.packs,
            records_per_pack: config.records_per_pack,
            toc_slots_per_pack: config.toc_slots_per_pack,
            features: HwFeatures::KERNEL_PROPOSED,
            cost: Default::default(),
        });
        // Core segments live just above frame 0 (scratch); cap the
        // region at half of core so a pageable pool always remains.
        let mut csm = CoreSegmentManager::new(1, (config.frames / 2) as u32);
        let mut vpm =
            VirtualProcessorManager::new(&mut csm, config.vps).expect("core for VP states");
        vpm.bind_kernel(VpId(0), "user-scheduler");
        vpm.bind_kernel(VpId(1), "page-purifier");
        vpm.bind_kernel(VpId(2), "core-manager");
        let mut qcm = QuotaCellManager::new(&mut csm).expect("core for the cell table");
        qcm.bind_table_base(&csm);
        let mut pfm = PageFrameManager::new(&mut csm, &mut vpm, config.pt_slots)
            .expect("core for the page-table pool");

        // The per-processor system address space (second descriptor base
        // register): segment 0 of every processor maps the kernel
        // communication core segment.
        let sys_comm = csm.allocate(1).expect("core for the comm segment");
        let sys_tables = csm.allocate(1).expect("core for the system tables");
        let comm_frame = csm.addr(sys_comm, 0).frame();
        let pt_addr = csm.addr(sys_tables, 0);
        machine.mem.write(
            pt_addr,
            Ptw {
                frame: comm_frame,
                present: true,
                wired: true,
                used: true,
                ..Ptw::default()
            }
            .encode(),
        );
        let dt_addr = csm.addr(sys_tables, 512);
        machine.mem.write(
            dt_addr,
            Sdw {
                page_table: pt_addr,
                bound_pages: 1,
                read: true,
                write: true,
                execute: true,
                present: true,
                software: false,
            }
            .encode(),
        );
        for cpu in &mut machine.cpus {
            cpu.dbr_system = Some(DescBase {
                base: dt_addr,
                len: 1,
            });
            cpu.system_segno_limit = 1;
        }

        csm.seal();
        let dseg_base = csm.end_frame();
        let wired_end = dseg_base + config.max_processes;
        assert!(
            (wired_end as usize) + 8 <= config.frames,
            "configuration leaves fewer than 8 pageable frames"
        );
        pfm.set_pageable_region(wired_end, config.frames as u32);
        (machine, csm, vpm, qcm, pfm)
    }

    /// Bootloads Kernel/Multics.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves fewer than eight pageable
    /// frames.
    pub fn boot(config: KernelConfig) -> Self {
        let (mut machine, csm, mut vpm, mut qcm, mut pfm) = Self::assemble(&config);
        let dseg_base = csm.end_frame();
        let mut drm = DiskRecordManager::new();
        let mut segm = SegmentManager::new();
        let mut flows = FlowTracker::new();
        let mut monitor = ReferenceMonitor::new();
        let dirm = {
            let mut fs = FsCtx {
                machine: &mut machine,
                drm: &mut drm,
                qcm: &mut qcm,
                pfm: &mut pfm,
                vpm: &mut vpm,
                segm: &mut segm,
                flows: &mut flows,
                monitor: &mut monitor,
            };
            DirectoryManager::new(&mut fs, config.seed, config.root_quota).expect("root directory")
        };
        let upm = UserProcessManager::new(
            &mut vpm,
            dseg_base,
            config.max_processes,
            config.event_queue,
        );

        let mut kernel = Self {
            machine,
            csm,
            vpm,
            drm,
            qcm,
            pfm,
            segm,
            ksm: KnownSegmentManager::new(),
            dirm,
            upm,
            demux: DemuxManager::new(),
            monitor,
            flows,
            stats: KernelStats::default(),
            accounts: HashMap::new(),
            processes_dir: ObjToken(0),
            state_counter: 0,
            online: None,
        };
        let root = kernel.dirm.root_token();
        let processes_dir = kernel
            .with_retries(|k| {
                k.dirm.create(
                    &mut ctx!(k),
                    UserId(0),
                    Label::BOTTOM,
                    root,
                    "processes",
                    Acl::owner(UserId(0)),
                    Label::BOTTOM,
                    true,
                )
            })
            .expect("processes directory");
        kernel.processes_dir = processes_dir;
        kernel
    }

    /// Bootloads with the default configuration.
    pub fn boot_default() -> Self {
        Self::boot(KernelConfig::default())
    }

    /// Bootloads Kernel/Multics from a surviving disk image — the crash
    /// recovery path. No root directory is created; the hierarchy is
    /// rebuilt by walking the image's own directory segments (the root
    /// is the pack-0 TOC entry recording uid 1). Entries the crash tore
    /// are left for [`Kernel::salvage`] to report and repair.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoEntry`] if pack 0 records no root directory;
    /// storage errors walking the image.
    pub fn boot_from_image(
        config: KernelConfig,
        image: mx_hw::DiskSystem,
    ) -> Result<Self, KernelError> {
        let (mut machine, csm, mut vpm, mut qcm, mut pfm) = Self::assemble(&config);
        machine.disks = image;
        let dseg_base = csm.end_frame();
        let root_home = machine
            .disks
            .pack(mx_hw::PackId(0))
            .ok()
            .and_then(|p| {
                p.entries()
                    .find(|(_, e)| e.uid == 1)
                    .map(|(toc, _)| crate::types::DiskHome {
                        pack: mx_hw::PackId(0),
                        toc,
                    })
            })
            .ok_or(KernelError::NoEntry)?;
        let mut drm = DiskRecordManager::new();
        let mut segm = SegmentManager::new();
        let mut flows = FlowTracker::new();
        let mut monitor = ReferenceMonitor::new();
        let dirm = {
            let mut fs = FsCtx {
                machine: &mut machine,
                drm: &mut drm,
                qcm: &mut qcm,
                pfm: &mut pfm,
                vpm: &mut vpm,
                segm: &mut segm,
                flows: &mut flows,
                monitor: &mut monitor,
            };
            DirectoryManager::recover(&mut fs, config.seed, root_home)?
        };
        let upm = UserProcessManager::new(
            &mut vpm,
            dseg_base,
            config.max_processes,
            config.event_queue,
        );
        let mut kernel = Self {
            machine,
            csm,
            vpm,
            drm,
            qcm,
            pfm,
            segm,
            ksm: KnownSegmentManager::new(),
            dirm,
            upm,
            demux: DemuxManager::new(),
            monitor,
            flows,
            stats: KernelStats::default(),
            accounts: HashMap::new(),
            processes_dir: ObjToken(0),
            state_counter: 0,
            online: None,
        };
        // Refind the well-known `>processes` directory (recreate it if
        // the crash predated it).
        let root_uid = kernel.dirm.root();
        let existing = kernel.with_retries(|k| {
            let Kernel {
                machine,
                drm,
                qcm,
                pfm,
                vpm,
                segm,
                flows,
                monitor,
                dirm,
                ..
            } = k;
            let mut fs = FsCtx {
                machine,
                drm,
                qcm,
                pfm,
                vpm,
                segm,
                flows,
                monitor,
            };
            dirm.lookup_in(&mut fs, root_uid, "processes")
        })?;
        if let Some(puid) = existing {
            // Surviving state segments hold names `proc-N`; resume the
            // counter past them so new processes never collide.
            let entries = kernel.with_retries(|k| {
                let Kernel {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                    dirm,
                    ..
                } = k;
                let mut fs = FsCtx {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                };
                dirm.salvage_entries(&mut fs, puid)
            })?;
            for (_, name, ..) in entries {
                if let Some(n) = name
                    .strip_prefix("proc-")
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    kernel.state_counter = kernel.state_counter.max(n);
                }
            }
        }
        kernel.processes_dir = match existing {
            Some(uid) => kernel.dirm.token_for(uid),
            None => {
                let root = kernel.dirm.root_token();
                kernel.with_retries(|k| {
                    k.dirm.create(
                        &mut ctx!(k),
                        UserId(0),
                        Label::BOTTOM,
                        root,
                        "processes",
                        Acl::owner(UserId(0)),
                        Label::BOTTOM,
                        true,
                    )
                })?
            }
        };
        // The recovery walk itself dispatched VPs and queued events; a
        // recovered system's load probes must start the new epoch clean
        // rather than inherit the boot traffic (let alone look like the
        // pre-crash instance's figures to a harness that re-reads them).
        kernel.reset_load_probes();
        Ok(kernel)
    }

    /// Restarts the load-observability probes — run-queue delay and the
    /// real-memory event-queue high watermark — at the current instant.
    ///
    /// [`Kernel::boot_from_image`] calls this so post-recovery epochs
    /// report their own figures; measurement harnesses call it at any
    /// epoch boundary of their choosing (after salvage, say, whose
    /// paging traffic is not user load).
    pub fn reset_load_probes(&mut self) {
        self.vpm.reset_queue_delay();
        self.upm.reset_queue_high_watermark();
    }

    /// The root directory token (the starting point user name-space
    /// code composes searches from).
    pub fn root_token(&mut self) -> ObjToken {
        self.dirm.root_token()
    }

    fn charge_gate(&mut self) {
        let cost = self.machine.cost;
        let g = self.machine.clock.enter(Subsystem::Gatekeeper);
        self.machine.clock.charge_gate(&cost);
        self.machine.clock.exit(g);
    }

    /// Runs `f` with all its cycle charges attributed to `subsystem` —
    /// the metering discipline every gate body and fault path follows.
    fn scoped<T>(&mut self, subsystem: Subsystem, f: impl FnOnce(&mut Self) -> T) -> T {
        let g = self.machine.clock.enter(subsystem);
        let result = f(self);
        self.machine.clock.exit(g);
        result
    }

    /// A deliberate layering violation for the lattice gate's planted
    /// self-check: page control invoking the answering service — the
    /// upward edge the lattice forbids. No real path calls this; it
    /// exists so G1 can prove the gate catches a cheat it knows about.
    #[doc(hidden)]
    pub fn plant_lattice_cheat_for_test(&mut self) {
        self.scoped(Subsystem::PageControl, |k| {
            k.scoped(Subsystem::AnsweringService, |k| {
                k.machine.clock.charge(1);
            });
        });
    }

    // ---- the upward-signal trampoline ------------------------------------

    /// Runs a kernel operation, consuming any upward signals it raises
    /// and re-executing it — the gatekeeper trampoline.
    pub(crate) fn with_retries<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, KernelError>,
    ) -> Result<T, KernelError> {
        for _ in 0..6 {
            match f(self) {
                Err(KernelError::Upward(sig)) => self.consume_signal(sig)?,
                other => return other,
            }
        }
        Err(KernelError::NotActive)
    }

    /// Consumes one upward signal: the directory manager records the
    /// move; the KSTs refresh their cached homes.
    fn consume_signal(&mut self, sig: Signal) -> Result<(), KernelError> {
        self.scoped(Subsystem::DirectoryControl, |k| {
            k.stats.trampolines += 1;
            match sig {
                Signal::SegmentMoved { uid, new_home } => {
                    // Recording the move writes the parent directory, which
                    // can itself grow and move: consume nested signals.
                    for _ in 0..6 {
                        match k.dirm.record_move(&mut ctx!(k), uid, new_home) {
                            Ok(()) => {
                                k.ksm.refresh_home(uid, new_home);
                                k.salvage_note_relocated(new_home);
                                return Ok(());
                            }
                            Err(KernelError::Upward(inner)) => k.consume_signal(inner)?,
                            Err(e) => return Err(e),
                        }
                    }
                    Err(KernelError::NotActive)
                }
            }
        })
    }

    // ---- accounts and processes (the answering-service residue) ----------

    /// Registers an account (system administration, not a user gate).
    pub fn register_account(
        &mut self,
        name: &str,
        user: UserId,
        password_hash: u64,
        clearance: Label,
    ) {
        self.accounts.insert(
            name.to_string(),
            Account {
                user,
                password_hash,
                clearance,
                charge_units: 0,
            },
        );
    }

    /// The login residue gate: verifies the (already hashed) password
    /// and the requested label against the clearance, then creates the
    /// process. All policy, parsing, and accounting presentation live in
    /// the user-domain answering service.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadCredentials`] or [`KernelError::AimViolation`].
    pub fn login_residue(
        &mut self,
        name: &str,
        password_hash: u64,
        label: Label,
    ) -> Result<ProcessId, KernelError> {
        self.charge_gate();
        self.scoped(Subsystem::AnsweringService, |k| {
            // The sub-1000-line protected residue: authentication and the
            // clearance check.
            crate::charge_pli(&mut k.machine, 60);
            let account = k.accounts.get(name).ok_or(KernelError::BadCredentials)?;
            if account.password_hash != password_hash {
                return Err(KernelError::BadCredentials);
            }
            if !account.clearance.dominates(label) {
                return Err(KernelError::AimViolation);
            }
            let user = account.user;
            k.create_process(user, label)
        })
    }

    /// The logout residue gate: destroys the process and returns its
    /// final charge, billing the account.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn logout_residue(&mut self, name: &str, pid: ProcessId) -> Result<u64, KernelError> {
        self.charge_gate();
        self.scoped(Subsystem::AnsweringService, |k| {
            crate::charge_pli(&mut k.machine, 15);
            let charge = k.destroy_process(pid)?;
            if let Some(account) = k.accounts.get_mut(name) {
                account.charge_units += charge;
            }
            Ok(charge)
        })
    }

    /// Accumulated billing for an account.
    pub fn account_charge(&self, name: &str) -> Option<u64> {
        self.accounts.get(name).map(|a| a.charge_units)
    }

    /// Creates a process with a KST and a swappable state segment under
    /// `>processes`.
    ///
    /// # Errors
    ///
    /// Table exhaustion from below.
    pub fn create_process(&mut self, user: UserId, label: Label) -> Result<ProcessId, KernelError> {
        self.scoped(Subsystem::ProcessControl, |k| {
            // The state segment lives under `>processes`; a quarantined
            // processes directory must fail typed *before* any process
            // state is built.
            let processes_dir = k.processes_dir;
            k.salvage_barrier(processes_dir)?;
            crate::charge_pli(&mut k.machine, 240);
            let pid = k.upm.create(&mut k.machine, user, label)?;
            k.ksm.create_kst(pid);
            k.state_counter += 1;
            let name = format!("proc-{}", k.state_counter);
            let processes_dir = k.processes_dir;
            let token = k.with_retries(|k| {
                k.dirm.create(
                    &mut ctx!(k),
                    UserId(0),
                    Label::BOTTOM,
                    processes_dir,
                    &name,
                    Acl::owner(user),
                    label,
                    false,
                )
            })?;
            let uid = k
                .dirm
                .resolve_token(token)
                .ok_or(KernelError::Salvage("fresh token did not resolve"))?;
            k.salvage_note_created(uid, false);
            k.upm.set_state_seg(pid, uid)?;
            Ok(pid)
        })
    }

    /// Destroys a process, returning its final accounting charge.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn destroy_process(&mut self, pid: ProcessId) -> Result<u64, KernelError> {
        self.scoped(Subsystem::ProcessControl, |k| {
            k.ksm.destroy_kst(pid);
            k.upm.destroy(pid)
        })
    }

    // ---- directory gates ---------------------------------------------------

    /// The single-directory search gate.
    ///
    /// # Errors
    ///
    /// Per [`DirectoryManager::search`].
    pub fn dir_search(
        &mut self,
        pid: ProcessId,
        dir: ObjToken,
        name: &str,
    ) -> Result<ObjToken, KernelError> {
        self.charge_gate();
        self.salvage_barrier(dir)?;
        self.scoped(Subsystem::DirectoryControl, |k| {
            let user = k.upm.user_of(pid)?;
            let label = k.upm.label_of(pid)?;
            k.with_retries(|k| k.dirm.search(&mut ctx!(k), user, label, dir, name))
        })
    }

    /// The initiate gate: makes the object behind a token known.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`], uniformly, for mythical or forbidden
    /// tokens.
    pub fn initiate(&mut self, pid: ProcessId, token: ObjToken) -> Result<u32, KernelError> {
        self.charge_gate();
        // Only bars tokens naming a quarantined *directory*: plain
        // segments serve as soon as their parent (the only path to a
        // token for them) is released.
        self.salvage_barrier(token)?;
        self.scoped(Subsystem::SegmentControl, |k| {
            let user = k.upm.user_of(pid)?;
            let label = k.upm.label_of(pid)?;
            k.with_retries(|k| {
                let Kernel {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                    dirm,
                    ksm,
                    ..
                } = k;
                let mut fs = FsCtx {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                };
                dirm.initiate(&mut fs, ksm, pid, user, label, token)
            })
        })
    }

    /// The terminate gate: unbinds a segment number.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] if the segno is unknown.
    pub fn terminate(&mut self, pid: ProcessId, segno: u32) -> Result<(), KernelError> {
        self.charge_gate();
        self.scoped(Subsystem::SegmentControl, |k| {
            let entry = k.ksm.unbind(pid, segno)?;
            // Cut this process's SDW.
            if let Ok(frame) = k.upm.dseg_frame(pid) {
                let sdw_addr = frame.base().add(u64::from(segno));
                k.machine.clock.note_shared_data(Subsystem::SegmentControl);
                k.machine.mem.write(sdw_addr, Sdw::default().encode());
                k.machine.tlb_invalidate_sdw(sdw_addr);
            }
            let _ = entry;
            Ok(())
        })
    }

    /// The create gate.
    ///
    /// # Errors
    ///
    /// Per [`DirectoryManager::create`].
    #[allow(clippy::too_many_arguments)]
    pub fn create_entry(
        &mut self,
        pid: ProcessId,
        dir: ObjToken,
        name: &str,
        acl: Acl,
        label: Label,
        is_dir: bool,
    ) -> Result<ObjToken, KernelError> {
        self.charge_gate();
        self.salvage_barrier(dir)?;
        self.scoped(Subsystem::DirectoryControl, |k| {
            let user = k.upm.user_of(pid)?;
            let plabel = k.upm.label_of(pid)?;
            let token = k.with_retries(|k| {
                let acl = acl.clone();
                k.dirm
                    .create(&mut ctx!(k), user, plabel, dir, name, acl, label, is_dir)
            })?;
            if let Some(uid) = k.dirm.resolve_token(token) {
                k.salvage_note_created(uid, is_dir);
            }
            Ok(token)
        })
    }

    /// The delete gate.
    ///
    /// # Errors
    ///
    /// Per [`DirectoryManager::delete`].
    pub fn delete_entry(
        &mut self,
        pid: ProcessId,
        dir: ObjToken,
        name: &str,
    ) -> Result<(), KernelError> {
        self.charge_gate();
        self.salvage_barrier(dir)?;
        self.scoped(Subsystem::DirectoryControl, |k| {
            let user = k.upm.user_of(pid)?;
            let plabel = k.upm.label_of(pid)?;
            k.with_retries(|k| {
                let Kernel {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                    dirm,
                    ksm,
                    online,
                    ..
                } = k;
                let mut fs = FsCtx {
                    machine,
                    drm,
                    qcm,
                    pfm,
                    vpm,
                    segm,
                    flows,
                    monitor,
                };
                // Structural modification of a quarantined subtree is
                // barred: deleting a not-yet-salvaged child directory
                // through its (released) parent would pull the frontier
                // out from under the salvager.
                if let Some(o) = online.as_ref() {
                    if let Some(duid) = dirm.resolve_token(dir) {
                        if let Some(cuid) = dirm.lookup_in(&mut fs, duid, name)? {
                            let child_is_dir = dirm
                                .activation_info(cuid)
                                .map(|(_, _, d, _)| d)
                                .unwrap_or(false);
                            if child_is_dir && !o.released.contains(&cuid) {
                                return Err(KernelError::SalvageBusy);
                            }
                        }
                    }
                }
                dirm.delete(&mut fs, ksm, user, plabel, dir, name)
            })
        })
    }

    /// The list gate.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] for unreadable directories.
    pub fn list_dir(&mut self, pid: ProcessId, dir: ObjToken) -> Result<Vec<String>, KernelError> {
        self.charge_gate();
        self.salvage_barrier(dir)?;
        self.scoped(Subsystem::DirectoryControl, |k| {
            let user = k.upm.user_of(pid)?;
            let label = k.upm.label_of(pid)?;
            k.with_retries(|k| k.dirm.list(&mut ctx!(k), user, label, dir))
        })
    }

    /// The quota-designation gate (childless directories only).
    ///
    /// # Errors
    ///
    /// Per [`DirectoryManager::set_quota_directory`].
    pub fn set_quota(
        &mut self,
        pid: ProcessId,
        dir: ObjToken,
        limit: u32,
    ) -> Result<(), KernelError> {
        self.charge_gate();
        self.salvage_barrier(dir)?;
        self.scoped(Subsystem::DirectoryControl, |k| {
            let user = k.upm.user_of(pid)?;
            let plabel = k.upm.label_of(pid)?;
            k.with_retries(|k| {
                k.dirm
                    .set_quota_directory(&mut ctx!(k), user, plabel, dir, limit)
            })
        })
    }

    /// The quota-removal gate (childless, uncharged only).
    ///
    /// # Errors
    ///
    /// Per [`DirectoryManager::clear_quota_directory`].
    pub fn clear_quota(&mut self, pid: ProcessId, dir: ObjToken) -> Result<(), KernelError> {
        self.charge_gate();
        self.salvage_barrier(dir)?;
        self.scoped(Subsystem::DirectoryControl, |k| {
            let user = k.upm.user_of(pid)?;
            let plabel = k.upm.label_of(pid)?;
            k.with_retries(|k| {
                k.dirm
                    .clear_quota_directory(&mut ctx!(k), user, plabel, dir)
            })
        })
    }

    // ---- memory reference gates (the ordinary data path) -------------------

    /// Reads one word as a process, through real address translation,
    /// with the gatekeeper servicing any faults.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] on protection violations; quota and
    /// storage errors otherwise.
    pub fn read_word(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
    ) -> Result<Word, KernelError> {
        self.user_access(pid, segno, wordno, false, Word::ZERO)
            .map(|w| w.expect("read value"))
    }

    /// Writes one word as a process.
    ///
    /// # Errors
    ///
    /// As [`Kernel::read_word`].
    pub fn write_word(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
        value: Word,
    ) -> Result<(), KernelError> {
        self.user_access(pid, segno, wordno, true, value)
            .map(|_| ())
    }

    /// The real processor a process's memory references translate
    /// through. A process bound to the *k*-th user VP runs on CPU
    /// `k mod cpus`; an unbound process defaults to `pid mod cpus`. A
    /// lone process always binds the first user VP, so single-session
    /// workloads never leave CPU 0 — but a loaded system spreads its
    /// processes across every configured processor.
    pub fn cpu_for(&self, pid: ProcessId) -> ProcessorId {
        let n = self.machine.cpu_count() as u32;
        if let Some(vp) = self.upm.vp_of(pid) {
            if let Some(ix) = self.vpm.user_vps().iter().position(|v| *v == vp) {
                return ProcessorId(ix as u32 % n);
            }
        }
        ProcessorId(pid.0 % n)
    }

    fn user_access(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
        write: bool,
        value: Word,
    ) -> Result<Option<Word>, KernelError> {
        let frame = self.upm.dseg_frame(pid)?;
        let cpu = self.cpu_for(pid);
        self.machine.cpus[cpu.0 as usize].dbr_user = Some(DescBase {
            base: frame.base(),
            len: MAX_SEGNO,
        });
        let va = VirtAddr::new(segno, wordno);
        for _ in 0..12 {
            let attempt = if write {
                self.machine.write(cpu, va, value).map(|()| None)
            } else {
                self.machine.read(cpu, va).map(Some)
            };
            match attempt {
                Ok(w) => {
                    self.machine.cpus[cpu.0 as usize].retire_op();
                    return Ok(w);
                }
                Err(fault) => match self.dispatch_fault(pid, fault) {
                    Ok(()) => {}
                    Err(KernelError::Upward(sig)) => self.consume_signal(sig)?,
                    Err(e) => return Err(e),
                },
            }
        }
        Err(KernelError::UnhandledFault(Fault::BadDescriptor { va }))
    }

    /// The gatekeeper fault dispatcher.
    fn dispatch_fault(&mut self, pid: ProcessId, fault: Fault) -> Result<(), KernelError> {
        match fault {
            Fault::MissingSegment { va } => self.scoped(Subsystem::SegmentControl, |k| {
                k.stats.segment_faults += 1;
                k.segment_fault(pid, va.segno)
            }),
            Fault::MissingPage { descriptor, .. } => self.scoped(Subsystem::PageControl, |k| {
                k.stats.page_faults += 1;
                let (handle, pageno) = k
                    .pfm
                    .identify(descriptor)
                    .ok_or(KernelError::UnhandledFault(fault))?;
                k.pfm.service_missing(
                    &mut k.machine,
                    &mut k.drm,
                    &mut k.qcm,
                    &mut k.vpm,
                    handle,
                    pageno,
                )?;
                // The service completion flows upward through the
                // real-memory queue; the faulting process gave up its
                // virtual processor while the transfer ran — two cheap
                // VP-level switches, not the old full process switches.
                k.machine.clock.charge(2 * VP_SWITCH_CYCLES);
                k.upm.deliver(&mut k.vpm, KernelEvent::PageServiced { pid });
                k.upm.bill(pid);
                Ok(())
            }),
            Fault::LockedDescriptor { .. } => self.scoped(Subsystem::PageControl, |k| {
                // Another processor's service is in flight. Consult the
                // wakeup-waiting switch, then wait on the page
                // eventcount (already advanced in this serial
                // simulation, so the wait never blocks — but the cheap
                // VP switch is charged).
                k.stats.locked_waits += 1;
                // The switch consulted is the *faulting process's own*
                // processor — a wakeup posted for another CPU's process
                // must never be consumed here.
                let cpu = k.cpu_for(pid);
                let woken = k.machine.cpus[cpu.0 as usize].take_wakeup_waiting();
                if !woken {
                    k.machine.clock.charge(VP_SWITCH_CYCLES);
                }
                Ok(())
            }),
            Fault::QuotaTrap { va, .. } => self.scoped(Subsystem::PageControl, |k| {
                k.stats.quota_faults += 1;
                let subject = k.upm.label_of(pid)?;
                k.ksm.quota_exception(
                    &mut k.machine,
                    &mut k.drm,
                    &mut k.qcm,
                    &mut k.pfm,
                    &mut k.segm,
                    &mut k.flows,
                    pid,
                    va.segno,
                    va.pageno(),
                    subject,
                )
            }),
            Fault::AccessViolation { .. } => Err(KernelError::NoAccess),
            Fault::BoundsViolation { .. } => Err(KernelError::SegmentTooBig),
            other => Err(KernelError::UnhandledFault(other)),
        }
    }

    /// Missing segment: activate from the KST entry (no directory
    /// involved) and connect the SDW.
    fn segment_fault(&mut self, pid: ProcessId, segno: u32) -> Result<(), KernelError> {
        crate::charge_pli(&mut self.machine, 30);
        let entry = self.ksm.lookup(pid, segno)?.clone();
        let handle = self.segm.activate(
            &mut self.machine,
            &mut self.drm,
            &mut self.qcm,
            &mut self.pfm,
            entry.uid,
            entry.home,
            entry.cell,
            entry.is_dir,
            entry.label,
        )?;
        let sdw = Sdw {
            page_table: self.pfm.pt_addr(handle),
            bound_pages: crate::page_frame::PT_WORDS,
            read: entry.read,
            write: entry.write,
            execute: entry.execute,
            present: true,
            software: entry.is_dir,
        };
        let frame = self.upm.dseg_frame(pid)?;
        let sdw_addr = frame.base().add(u64::from(segno));
        self.machine
            .clock
            .note_shared_data(Subsystem::SegmentControl);
        self.machine.mem.write(sdw_addr, sdw.encode());
        self.machine.tlb_invalidate_sdw(sdw_addr);
        self.segm.register_connection(entry.uid, sdw_addr)?;
        Ok(())
    }

    /// Metadata gate: (length in pages, records charged) of an initiated
    /// segment.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] if the segno is unknown.
    pub fn segment_meta(&mut self, pid: ProcessId, segno: u32) -> Result<(u32, u32), KernelError> {
        self.charge_gate();
        self.scoped(Subsystem::SegmentControl, |k| {
            let entry = k.ksm.lookup(pid, segno)?.clone();
            let home = k.dirm.home_of(entry.uid).unwrap_or(entry.home);
            Ok((
                k.drm.len_pages(&k.machine, home)?,
                k.drm.records_used(&k.machine, home)?,
            ))
        })
    }

    // ---- scheduling and daemons ----------------------------------------------

    /// One pass of the two-level scheduler: drain upward events, pick
    /// the next process, dispatch its VP (cheap) or load it (touching
    /// its state segment in the virtual memory).
    ///
    /// Returns the dispatch decision, if any process is ready.
    pub fn schedule(&mut self) -> Option<Dispatch> {
        self.scoped(Subsystem::Scheduler, |k| {
            let _events = k.upm.drain_events();
            let d = k.upm.dispatch(&mut k.vpm)?;
            // The VP-level switch is always charged (cheap, core-resident).
            k.vpm
                .dispatch(&k.csm, &mut k.machine.mem, &mut k.machine.clock);
            if !d.already_loaded {
                // A true process switch: bring the state segment in.
                if let Ok(Some(state_uid)) = k.upm.state_seg(d.pid) {
                    if let Some((home, cell, is_dir, label)) = k.dirm.activation_info(state_uid) {
                        let _ = k.segm.activate(
                            &mut k.machine,
                            &mut k.drm,
                            &mut k.qcm,
                            &mut k.pfm,
                            state_uid,
                            home,
                            cell,
                            is_dir,
                            label,
                        );
                        let _ = k.segm.read_word(
                            &mut k.machine,
                            &mut k.drm,
                            &mut k.qcm,
                            &mut k.pfm,
                            &mut k.vpm,
                            &mut k.flows,
                            state_uid,
                            0,
                            label,
                        );
                    }
                }
                let cost = k.machine.cost;
                k.machine.clock.charge_process_switch(&cost);
            }
            Some(d)
        })
    }

    /// Deactivates every active segment, flushing all dirty pages and
    /// persisting every quota cell to its TOC entry — the clean-shutdown
    /// sweep. After it returns, the disk image alone reconstructs the
    /// system (see [`Kernel::boot_from_image`]).
    ///
    /// # Errors
    ///
    /// Disk errors from the write-back path.
    pub fn sync_to_disk(&mut self) -> Result<(), KernelError> {
        self.scoped(Subsystem::SegmentControl, |k| {
            for uid in k.segm.active_uids() {
                k.segm
                    .deactivate(&mut k.machine, &mut k.drm, &mut k.qcm, &mut k.pfm, uid)?;
            }
            Ok(())
        })
    }

    /// Runs up to `steps` units of the page-purifier daemon (the
    /// low-priority write-behind). Returns how many units did work.
    ///
    /// # Errors
    ///
    /// Disk errors from the write-back path.
    pub fn run_purifier(&mut self, steps: usize) -> Result<usize, KernelError> {
        self.scoped(Subsystem::Purifier, |k| {
            let mut done = 0;
            for _ in 0..steps {
                if !k
                    .pfm
                    .purifier_step(&mut k.machine, &mut k.drm, &mut k.qcm)?
                {
                    break;
                }
                done += 1;
            }
            Ok(done)
        })
    }

    /// Installs a schedule policy on the virtual-processor manager's two
    /// choice points (dispatch order and wakeup-drain order).
    ///
    /// The default [`mx_sync::FifoPolicy`] reproduces the historical
    /// order byte-for-byte; the `mx-explore` harness installs seeded or
    /// enumerating policies here to explore alternative interleavings.
    pub fn set_schedule_policy(&mut self, policy: Box<dyn mx_sync::SchedulePolicy>) {
        self.vpm.set_policy(policy);
    }

    // ---- eventcount gates -----------------------------------------------------

    /// Creates a user-visible eventcount.
    pub fn ec_create(&mut self) -> mx_sync::sim::EcId {
        self.charge_gate();
        self.scoped(Subsystem::Scheduler, |k| k.vpm.create_eventcount())
    }

    /// Advances an eventcount (the broadcast, receiver-blind notify).
    pub fn ec_advance(&mut self, ec: mx_sync::sim::EcId) -> usize {
        self.charge_gate();
        self.scoped(Subsystem::Scheduler, |k| k.vpm.advance(ec))
    }

    /// Reads an eventcount.
    pub fn ec_read(&mut self, ec: mx_sync::sim::EcId) -> u64 {
        self.charge_gate();
        self.scoped(Subsystem::Scheduler, |k| k.vpm.read_eventcount(ec))
    }

    // ---- demultiplexer gates ----------------------------------------------------

    /// Attaches a multiplexed stream (privileged, driver-level).
    pub fn demux_attach(&mut self, spec: FramingSpec) -> StreamId {
        self.scoped(Subsystem::Network, |k| k.demux.attach(spec))
    }

    /// Injects a raw frame from the wire (driver-level).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`].
    pub fn demux_receive(&mut self, stream: StreamId, frame: &[u8]) -> Result<(), KernelError> {
        self.scoped(Subsystem::Network, |k| {
            k.demux.receive(&mut k.upm, &mut k.vpm, stream, frame)
        })
    }

    /// Claims a channel for a process (user gate).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`].
    pub fn demux_claim(
        &mut self,
        pid: ProcessId,
        stream: StreamId,
        channel: u16,
    ) -> Result<(), KernelError> {
        self.charge_gate();
        self.scoped(Subsystem::Network, |k| {
            k.demux.claim_channel(stream, channel, pid)
        })
    }

    /// Reads a claimed channel's buffered input (user gate).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`].
    pub fn demux_read(
        &mut self,
        _pid: ProcessId,
        stream: StreamId,
        channel: u16,
    ) -> Result<Vec<u8>, KernelError> {
        self.charge_gate();
        self.scoped(Subsystem::Network, |k| {
            k.demux.read_channel(stream, channel)
        })
    }

    /// Reads a channel's buffered input from *inside* the kernel — the
    /// specialized file-store machine's service path, where the network
    /// daemon is kernel-resident and no gate crossing is paid. The
    /// general-purpose configuration uses [`Kernel::demux_read`]
    /// instead; the cycle difference between the two paths is exactly
    /// what the T3 estimate prices.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchChannel`].
    pub fn demux_read_resident(
        &mut self,
        stream: StreamId,
        channel: u16,
    ) -> Result<Vec<u8>, KernelError> {
        self.scoped(Subsystem::Network, |k| {
            k.demux.read_channel(stream, channel)
        })
    }

    /// Reads one word on behalf of a remote machine, from the resident
    /// network service (no gate crossing; faults still serviced through
    /// the ordinary dispatchers, so segment/page activity is attributed
    /// to the network subsystem as the invoking scope).
    ///
    /// # Errors
    ///
    /// As [`Kernel::read_word`].
    pub fn resident_read_word(
        &mut self,
        pid: ProcessId,
        segno: u32,
        wordno: u32,
    ) -> Result<Word, KernelError> {
        self.scoped(Subsystem::Network, |k| {
            k.user_access(pid, segno, wordno, false, Word::ZERO)
                .map(|w| w.expect("read value"))
        })
    }

    // ---- program execution ------------------------------------------------

    /// Runs a user program: repeatedly steps the interpreter on the
    /// process's address space, servicing every fault through the
    /// gatekeeper (including quota exceptions raised by stores into
    /// fresh pages and any upward signals they provoke).
    ///
    /// Returns when the program halts, hits an undecodable word, or
    /// exhausts `max_steps`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoAccess`] and storage errors exactly as data
    /// references raise them.
    pub fn run_program(
        &mut self,
        pid: ProcessId,
        segno: u32,
        start: u32,
        max_steps: u64,
    ) -> Result<ProgramRun, KernelError> {
        use mx_hw::interp::{step, Registers, StepOutcome};
        let frame = self.upm.dseg_frame(pid)?;
        let cpu = self.cpu_for(pid);
        self.machine.cpus[cpu.0 as usize].dbr_user = Some(DescBase {
            base: frame.base(),
            len: MAX_SEGNO,
        });
        self.machine.cpus[cpu.0 as usize].retire_op();
        let mut regs = Registers::at(VirtAddr::new(segno, start));
        let mut steps = 0;
        while steps < max_steps {
            let cost = self.machine.cost;
            let r = {
                let Machine {
                    mem, clock, cpus, ..
                } = &mut self.machine;
                step(&mut cpus[cpu.0 as usize], mem, clock, &cost, &mut regs)
            };
            match r {
                Ok(StepOutcome::Ran) => steps += 1,
                Ok(StepOutcome::Halted) => {
                    return Ok(ProgramRun {
                        steps,
                        outcome: ProgramOutcome::Halted,
                        regs,
                    });
                }
                Ok(StepOutcome::IllegalInstruction) => {
                    return Ok(ProgramRun {
                        steps,
                        outcome: ProgramOutcome::Illegal,
                        regs,
                    });
                }
                Err(fault) => match self.dispatch_fault(pid, fault) {
                    Ok(()) => {}
                    Err(KernelError::Upward(sig)) => self.consume_signal(sig)?,
                    Err(e) => return Err(e),
                },
            }
        }
        Ok(ProgramRun {
            steps,
            outcome: ProgramOutcome::StepLimit,
            regs,
        })
    }

    /// Marker type used by the uid-bearing test helpers.
    pub fn uid_of_token(&self, token: ObjToken) -> Option<SegUid> {
        self.dirm.resolve_token(token)
    }

    /// Charges abstract instructions executed by *user-domain* code —
    /// the simulation accounting hook `mx-user` components use so their
    /// (unprivileged) work shows up on the same clock as the kernel's.
    pub fn charge_user_instructions(&mut self, n: u64, lang: mx_hw::Language) {
        let cost = self.machine.cost;
        self.machine.clock.charge_instructions(&cost, n, lang);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessRight;

    fn boot_small() -> Kernel {
        Kernel::boot(KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 6,
            root_quota: 200,
            ..KernelConfig::default()
        })
    }

    fn login(k: &mut Kernel, name: &str, user: UserId) -> ProcessId {
        k.register_account(name, user, 42, Label::BOTTOM);
        k.login_residue(name, 42, Label::BOTTOM).unwrap()
    }

    #[test]
    fn boot_and_login_and_touch_a_segment() {
        let mut k = boot_small();
        let pid = login(&mut k, "saltzer", UserId(1));
        let root = k.root_token();
        let token = k
            .create_entry(
                pid,
                root,
                "data",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        let segno = k.initiate(pid, token).unwrap();
        k.write_word(pid, segno, 5, Word::new(0o123)).unwrap();
        assert_eq!(k.read_word(pid, segno, 5).unwrap(), Word::new(0o123));
        // The path exercised: segment fault, quota trap, page creation.
        assert!(k.stats.segment_faults >= 1);
        assert!(k.stats.quota_faults >= 1);
    }

    #[test]
    fn gate_list_is_small() {
        assert!(
            Kernel::USER_GATES.len() < 25,
            "the kernel interface stays small"
        );
    }

    #[test]
    fn data_survives_flush_through_real_page_faults() {
        let mut k = boot_small();
        let pid = login(&mut k, "clark", UserId(1));
        let root = k.root_token();
        let token = k
            .create_entry(
                pid,
                root,
                "data",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        let segno = k.initiate(pid, token).unwrap();
        for p in 0..4u32 {
            k.write_word(pid, segno, p * 1024, Word::new(u64::from(p) + 1))
                .unwrap();
        }
        // Force everything out, then fault it back.
        let uid = k.uid_of_token(token).unwrap();
        let handle = k.segm.get(uid).unwrap().handle;
        k.pfm
            .flush(&mut k.machine, &mut k.drm, &mut k.qcm, handle)
            .unwrap();
        let faults_before = k.stats.page_faults;
        for p in 0..4u32 {
            assert_eq!(
                k.read_word(pid, segno, p * 1024).unwrap(),
                Word::new(u64::from(p) + 1)
            );
        }
        assert!(
            k.stats.page_faults > faults_before,
            "reads took real page faults"
        );
    }

    #[test]
    fn acl_and_aim_enforced_through_the_gates() {
        let mut k = boot_small();
        let alice = login(&mut k, "alice", UserId(1));
        let bob = login(&mut k, "bob", UserId(2));
        let root = k.root_token();
        let token = k
            .create_entry(
                alice,
                root,
                "private",
                Acl::owner(UserId(1)),
                Label::BOTTOM,
                false,
            )
            .unwrap();
        // Bob can search the (public) root and obtain the identifier…
        let bob_token = k.dir_search(bob, root, "private").unwrap();
        assert_eq!(bob_token, token, "root is readable: the identifier is real");
        // …but initiation is uniformly refused.
        assert_eq!(
            k.initiate(bob, bob_token).unwrap_err(),
            KernelError::NoAccess
        );
        // A read-only grant lets Bob read but not write.
        let mut acl = Acl::owner(UserId(1));
        acl.grant(UserId(2), &[AccessRight::Read]);
        let t2 = k
            .create_entry(alice, root, "shared", acl, Label::BOTTOM, false)
            .unwrap();
        let alice_segno = k.initiate(alice, t2).unwrap();
        k.write_word(alice, alice_segno, 0, Word::new(7)).unwrap();
        let bob_segno = k.initiate(bob, t2).unwrap();
        assert_eq!(k.read_word(bob, bob_segno, 0).unwrap(), Word::new(7));
        assert_eq!(
            k.write_word(bob, bob_segno, 0, Word::new(9)).unwrap_err(),
            KernelError::NoAccess
        );
    }

    #[test]
    fn recovery_bootload_rebuilds_the_hierarchy_from_disk() {
        let config = KernelConfig {
            frames: 128,
            records_per_pack: 256,
            toc_slots_per_pack: 64,
            pt_slots: 24,
            max_processes: 6,
            root_quota: 200,
            ..KernelConfig::default()
        };
        let mut k = Kernel::boot(config.clone());
        let pid = login(&mut k, "writer", UserId(1));
        let root = k.root_token();
        let dir = k
            .create_entry(pid, root, "d", Acl::owner(UserId(1)), Label::BOTTOM, true)
            .unwrap();
        let f = k
            .create_entry(pid, dir, "f", Acl::owner(UserId(1)), Label::BOTTOM, false)
            .unwrap();
        let segno = k.initiate(pid, f).unwrap();
        for p in 0..3u32 {
            k.write_word(pid, segno, p * 1024, Word::new(u64::from(p) + 0o100))
                .unwrap();
        }
        k.sync_to_disk().unwrap();
        let image = k.machine.disks.clone();

        let mut k2 = Kernel::boot_from_image(config, image).unwrap();
        let report = k2.salvage(false).unwrap();
        assert!(
            report.clean(),
            "clean shutdown recovers clean: {:?}",
            report.problems
        );
        let pid2 = login(&mut k2, "reader", UserId(1));
        let root2 = k2.root_token();
        let d2 = k2.dir_search(pid2, root2, "d").unwrap();
        let f2 = k2.dir_search(pid2, d2, "f").unwrap();
        let segno2 = k2.initiate(pid2, f2).unwrap();
        for p in 0..3u32 {
            assert_eq!(
                k2.read_word(pid2, segno2, p * 1024).unwrap(),
                Word::new(u64::from(p) + 0o100)
            );
        }
    }

    #[test]
    fn two_level_scheduler_runs() {
        let mut k = boot_small();
        let a = login(&mut k, "a", UserId(1));
        let b = login(&mut k, "b", UserId(2));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let d = k.schedule().unwrap();
            seen.insert(d.pid);
        }
        assert!(seen.contains(&a) && seen.contains(&b));
        assert!(k.vpm.switches >= 6, "every pass made a cheap VP switch");
    }

    #[test]
    fn processes_spread_across_both_real_processors() {
        let mut k = boot_small();
        let a = login(&mut k, "a", UserId(1));
        let b = login(&mut k, "b", UserId(2));
        // Before any dispatch, the home defaults to pid order.
        assert_eq!(k.cpu_for(a), ProcessorId(0));
        // Bind both: a takes the first user VP (CPU 0), b the second
        // (CPU 1 of the two-processor machine).
        k.schedule();
        k.schedule();
        assert_eq!(k.cpu_for(a), ProcessorId(0));
        assert_eq!(k.cpu_for(b), ProcessorId(1));
        // Memory references land on each process's own processor.
        let root = k.root_token();
        for (pid, user, name) in [(a, UserId(1), "fa"), (b, UserId(2), "fb")] {
            let tok = k
                .create_entry(pid, root, name, Acl::owner(user), Label::BOTTOM, false)
                .unwrap();
            let segno = k.initiate(pid, tok).unwrap();
            k.write_word(pid, segno, 0, Word::new(7)).unwrap();
        }
        let ops = k.machine.ops_retired();
        assert!(
            ops[0] > 0 && ops[1] > 0,
            "both processors retire user work: {ops:?}"
        );
    }

    #[test]
    fn wakeup_for_cpu1_is_never_consumed_by_cpu0() {
        let mut k = boot_small();
        let a = login(&mut k, "a", UserId(1));
        let b = login(&mut k, "b", UserId(2));
        k.schedule();
        k.schedule();
        assert_eq!(k.cpu_for(b), ProcessorId(1), "b is homed on CPU 1");
        // A notification for b arrives between its locked-descriptor
        // exception and the wait primitive: post it on b's processor.
        assert!(k.machine.post_wakeup(k.cpu_for(b)));
        let fault = Fault::LockedDescriptor {
            va: VirtAddr::new(1, 0),
            descriptor: mx_hw::AbsAddr(0),
        };
        // a (CPU 0) hits its own locked descriptor: it must charge the
        // VP switch and leave b's wakeup alone.
        let before = k.machine.clock.now();
        k.dispatch_fault(a, fault).unwrap();
        assert_eq!(
            k.machine.clock.now() - before,
            VP_SWITCH_CYCLES,
            "a was not woken by b's notification"
        );
        assert!(
            k.machine.cpus[1].wakeup_waiting,
            "the wakeup destined for CPU 1 survived CPU 0's wait"
        );
        // b's own wait consumes it without blocking (no switch charge).
        let before = k.machine.clock.now();
        k.dispatch_fault(b, fault).unwrap();
        assert_eq!(k.machine.clock.now(), before, "wakeup-waiting: no block");
        assert!(!k.machine.cpus[1].wakeup_waiting, "consumed exactly once");
    }

    #[test]
    fn logout_bills_the_account() {
        let mut k = boot_small();
        let pid = login(&mut k, "billable", UserId(3));
        k.schedule();
        let charge = k.logout_residue("billable", pid).unwrap();
        assert_eq!(k.account_charge("billable"), Some(charge));
        assert!(k.upm.user_of(pid).is_err());
    }
}
